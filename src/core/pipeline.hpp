// RegHDPipeline — the library's main user-facing entry point.
//
// Wraps the full RegHD stack behind the uniform Regressor interface:
// feature standardization → target standardization → similarity-preserving
// encoding → multi-model hyperdimensional regression, with predictions
// mapped back to original target units. Examples, benches, and grid search
// all drive RegHD through this class.
//
//   core::PipelineConfig cfg;
//   cfg.reghd.models = 8;
//   core::RegHDPipeline reghd(cfg);
//   reghd.fit(train);
//   double y = reghd.predict(features);
#pragma once

#include <memory>
#include <optional>

#include "core/config.hpp"
#include "core/multi_model.hpp"
#include "core/sharded_training.hpp"
#include "core/training.hpp"
#include "data/scaler.hpp"
#include "hdc/encoding.hpp"
#include "model/regressor.hpp"

namespace reghd::core {

struct PipelineConfig {
  /// Encoder settings. input_dim may be left 0 — it is inferred from the
  /// training data; dim is forced to reghd.dim.
  hdc::EncoderConfig encoder;

  RegHDConfig reghd;

  bool standardize_features = true;
  bool standardize_target = true;

  /// Fraction of the training data held out for early stopping.
  double validation_fraction = 0.15;
};

class RegHDPipeline final : public model::Regressor {
 public:
  explicit RegHDPipeline(PipelineConfig config);

  RegHDPipeline(RegHDPipeline&&) = default;
  RegHDPipeline& operator=(RegHDPipeline&&) = default;

  /// "RegHD-<k>", optionally suffixed by quantization mode.
  [[nodiscard]] std::string name() const override;

  /// Fits scalers, builds the encoder, encodes, and trains the multi-model
  /// regressor with an internal train/validation split. With
  /// config.reghd.batch_size ≥ 1 the regressor trains in deterministic
  /// batch-frozen mini-batches (parallel across config.reghd.threads
  /// workers; results depend only on the batch size, never on threads).
  void fit(const data::Dataset& train) override;

  /// fit() with periodic-checkpoint and per-mini-batch hooks threaded into
  /// the epoch loop (TrainingHooks). The pipeline is observable (fitted,
  /// serializable) from inside the callbacks.
  void fit(const data::Dataset& train, const TrainingHooks& hooks);

  /// Sharded data-parallel fit (see core/sharded_training.hpp): same
  /// scaler/encoder/split preamble as fit(), then cfg.shards independent
  /// replicas trained in parallel, merged by HD bundling, optionally refined
  /// for cfg.refine_epochs sequential epochs. cfg.shards = 1 (with no
  /// refine) is bit-identical to fit(). The detailed per-shard telemetry is
  /// in sharded_report(); report() is synthesized for interface parity.
  ShardedTrainReport fit_sharded(const data::Dataset& train,
                                 const ShardedTrainConfig& cfg);

  /// Telemetry of the last fit_sharded(). Throws if fit_sharded was not the
  /// last fit.
  [[nodiscard]] const ShardedTrainReport& sharded_report() const;

  [[nodiscard]] double predict(std::span<const double> features) const override;

  /// Batched prediction: scales all rows, encodes them in parallel
  /// (encode_batch), and predicts in parallel — far cheaper than per-row
  /// predict() calls. Uses config.reghd.threads workers (0 = REGHD_THREADS /
  /// hardware concurrency); result i equals predict(row i) exactly.
  [[nodiscard]] std::vector<double> predict_batch(
      const data::Dataset& dataset) const override;

  /// Per-model introspection for one input (original feature units).
  [[nodiscard]] PredictionDetail predict_detail(std::span<const double> features) const;

  /// MSE over a dataset in original target units.
  [[nodiscard]] double evaluate_mse(const data::Dataset& dataset) const;

  [[nodiscard]] bool fitted() const noexcept { return regressor_ != nullptr; }

  /// Training telemetry of the last fit(). Throws if not fitted.
  [[nodiscard]] const TrainingReport& report() const;

  [[nodiscard]] const PipelineConfig& config() const noexcept { return config_; }

  /// Runtime override of the batch encode/predict worker count
  /// (config.reghd.threads; 0 = REGHD_THREADS / hardware concurrency).
  /// Never affects results, only wall-clock.
  void set_threads(std::size_t threads) noexcept { config_.reghd.threads = threads; }

  /// Trained components (for tests, serialization, and power users).
  [[nodiscard]] const MultiModelRegressor& regressor() const;
  [[nodiscard]] const hdc::Encoder& encoder() const;
  [[nodiscard]] const data::StandardScaler& feature_scaler() const noexcept {
    return feature_scaler_;
  }
  [[nodiscard]] const data::TargetScaler& target_scaler() const noexcept {
    return target_scaler_;
  }

  /// Serialization hooks used by model_io.
  [[nodiscard]] data::StandardScaler& mutable_feature_scaler() noexcept {
    return feature_scaler_;
  }
  [[nodiscard]] data::TargetScaler& mutable_target_scaler() noexcept { return target_scaler_; }
  void restore(hdc::EncoderConfig encoder_config,
               std::unique_ptr<MultiModelRegressor> regressor);
  [[nodiscard]] MultiModelRegressor& mutable_regressor();

 private:
  [[nodiscard]] hdc::EncodedSample encode_row(std::span<const double> features) const;

  PipelineConfig config_;
  data::StandardScaler feature_scaler_;
  data::TargetScaler target_scaler_;
  std::unique_ptr<hdc::Encoder> encoder_;
  std::unique_ptr<MultiModelRegressor> regressor_;
  std::optional<TrainingReport> report_;
  std::optional<ShardedTrainReport> sharded_report_;
};

}  // namespace reghd::core
