#include "core/config.hpp"

#include "util/check.hpp"

namespace reghd::core {

std::string to_string(ClusterMode mode) {
  switch (mode) {
    case ClusterMode::kFullPrecision:
      return "full-precision";
    case ClusterMode::kQuantized:
      return "quantized";
    case ClusterMode::kNaiveBinary:
      return "naive-binary";
  }
  REGHD_INTERNAL_CHECK(false, "unhandled ClusterMode " << static_cast<int>(mode));
}

std::string to_string(QueryPrecision precision) {
  switch (precision) {
    case QueryPrecision::kReal:
      return "integer-query";
    case QueryPrecision::kBinary:
      return "binary-query";
  }
  REGHD_INTERNAL_CHECK(false, "unhandled QueryPrecision " << static_cast<int>(precision));
}

std::string to_string(ModelPrecision precision) {
  switch (precision) {
    case ModelPrecision::kReal:
      return "integer-model";
    case ModelPrecision::kBinary:
      return "binary-model";
    case ModelPrecision::kTernary:
      return "ternary-model";
  }
  REGHD_INTERNAL_CHECK(false, "unhandled ModelPrecision " << static_cast<int>(precision));
}

std::string to_string(UpdateRule rule) {
  switch (rule) {
    case UpdateRule::kConfidenceWeighted:
      return "confidence-weighted";
    case UpdateRule::kWinnerOnly:
      return "winner-only";
  }
  REGHD_INTERNAL_CHECK(false, "unhandled UpdateRule " << static_cast<int>(rule));
}

std::string to_string(ClusterInit init) {
  switch (init) {
    case ClusterInit::kRandom:
      return "random";
    case ClusterInit::kFarthestPoint:
      return "farthest-point";
  }
  REGHD_INTERNAL_CHECK(false, "unhandled ClusterInit " << static_cast<int>(init));
}

std::string PredictionMode::to_string() const {
  return core::to_string(query) + "/" + core::to_string(model);
}

void RegHDConfig::validate() const {
  REGHD_CHECK(dim >= 64, "RegHD dimensionality must be at least 64, got " << dim);
  REGHD_CHECK(models >= 1, "RegHD requires at least one model");
  REGHD_CHECK(learning_rate > 0.0, "learning rate must be positive, got " << learning_rate);
  REGHD_CHECK(max_epochs >= 1, "max_epochs must be at least 1");
  REGHD_CHECK(patience >= 1, "patience must be at least 1");
  REGHD_CHECK(tolerance >= 0.0, "tolerance must be non-negative");
  REGHD_CHECK(softmax_temperature > 0.0, "softmax temperature must be positive");
  REGHD_CHECK(error_clip >= 0.0, "error_clip must be non-negative (0 disables)");
  // requantize_interval: any value is valid (0 = per-epoch).
  // batch_size: any value is valid (0 = online, B ≥ 1 = batch-frozen).
}

}  // namespace reghd::core
