// The uniform regressor interface implemented by RegHD and by every baseline
// (MLP, linear, decision tree, SVR, Baseline-HD). The benchmark harness and
// grid search drive all learners through this interface.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "data/dataset.hpp"

namespace reghd::model {

class Regressor {
 public:
  virtual ~Regressor() = default;

  Regressor(const Regressor&) = delete;
  Regressor& operator=(const Regressor&) = delete;

  /// Human-readable learner name ("RegHD-8", "DNN", "DecisionTree", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Trains on the dataset (raw feature units; learners own any scaling).
  virtual void fit(const data::Dataset& train) = 0;

  /// Predicts the target for one feature row. Requires a prior fit().
  [[nodiscard]] virtual double predict(std::span<const double> features) const = 0;

  /// Predicts every row of a dataset. The default loops over predict();
  /// learners with a cheaper batch path may override.
  [[nodiscard]] virtual std::vector<double> predict_batch(const data::Dataset& dataset) const {
    std::vector<double> out;
    out.reserve(dataset.size());
    for (std::size_t i = 0; i < dataset.size(); ++i) {
      out.push_back(predict(dataset.row(i)));
    }
    return out;
  }

 protected:
  Regressor() = default;
  // Concrete learners may be movable (e.g. returned from loaders).
  Regressor(Regressor&&) = default;
  Regressor& operator=(Regressor&&) = default;
};

}  // namespace reghd::model
