// Analytic operation tallies for every RegHD and baseline kernel.
//
// Each function returns the exact primitive-op count of one kernel
// invocation as implemented in this repository (the unit tests pin the
// formulas against hand counts and scaling laws). Composite helpers assemble
// per-sample, per-epoch, and end-to-end training/inference tallies that the
// Fig. 8 / Fig. 9 / Table 2 benches convert to time and energy through a
// DeviceProfile.
//
// Notation: D = hypervector dimensionality, W = ⌈D/64⌉ packed words,
// n = input features, k = number of cluster/regression models.
#pragma once

#include <cstddef>

#include "perf/op_count.hpp"

namespace reghd::perf {

/// Precision of the query vector entering a similarity/dot kernel.
enum class Precision { kReal, kBinary };

// ---------------------------------------------------------------------------
// Primitive kernels
// ---------------------------------------------------------------------------

/// RFF encoder (cos(w·F + b)·sin(w·F)): D·(n mul + n add) projection plus
/// 2 trig + 1 mul per dimension, plus the sign binarization.
[[nodiscard]] OpCount cost_encode_rff(std::size_t features, std::size_t dim);

/// Factored Eq. 1 encoder: 2 trig per feature, one ±1 projection (n·D
/// conditional adds), one fused axpy per dimension.
[[nodiscard]] OpCount cost_encode_nonlinear(std::size_t features, std::size_t dim);

/// Cosine similarity of a real query against one real cluster center, with
/// the query norm amortized across the k clusters and cluster norms cached
/// (both true in the implementation).
[[nodiscard]] OpCount cost_cosine_real(std::size_t dim);

/// Hamming similarity of packed vectors: W xor + W popcount + accumulate.
[[nodiscard]] OpCount cost_hamming(std::size_t dim);

/// Full-precision dot product (real · real).
[[nodiscard]] OpCount cost_dot_real_real(std::size_t dim);

/// Multiply-free dot of a real vector against a packed ±1 vector.
[[nodiscard]] OpCount cost_dot_real_binary(std::size_t dim);

/// Popcount dot of two packed vectors plus the calibration scale.
[[nodiscard]] OpCount cost_dot_binary_binary(std::size_t dim);

/// Softmax over k confidences.
[[nodiscard]] OpCount cost_softmax(std::size_t models);

/// One model/cluster accumulator update M += c·S with the sample at the
/// given precision (real: fused multiply-add per dim; binary: ±c add).
[[nodiscard]] OpCount cost_accumulator_update(std::size_t dim, Precision sample);

/// Re-binarization of one accumulator (sign compare + packed write).
[[nodiscard]] OpCount cost_binarize(std::size_t dim);

// ---------------------------------------------------------------------------
// RegHD composites
// ---------------------------------------------------------------------------

/// Static shape of a RegHD configuration for cost purposes.
struct RegHDKernelShape {
  std::size_t dim = 4096;
  std::size_t models = 8;    ///< k
  std::size_t features = 10; ///< n
  bool quantized_cluster = false;  ///< Hamming search instead of cosine.
  Precision query = Precision::kReal;
  Precision model = Precision::kReal;
  bool rff_encoder = true;  ///< false → factored Eq. 1 encoder.
};

/// Cost of encoding one input (both the real and packed forms are produced).
[[nodiscard]] OpCount reghd_encode_sample(const RegHDKernelShape& shape);

/// One inference: encode + k similarities + softmax + k prediction dots +
/// weighted accumulation.
[[nodiscard]] OpCount reghd_infer_sample(const RegHDKernelShape& shape);

/// One training step: inference + error + k confidence-weighted model
/// updates + argmax cluster update.
[[nodiscard]] OpCount reghd_train_sample(const RegHDKernelShape& shape);

/// One epoch over `samples` points, including the end-of-epoch
/// re-binarization of quantized clusters/models when enabled.
[[nodiscard]] OpCount reghd_train_epoch(const RegHDKernelShape& shape, std::size_t samples);

/// Full training: `epochs` epochs over `samples` points.
[[nodiscard]] OpCount reghd_train_total(const RegHDKernelShape& shape, std::size_t samples,
                                        std::size_t epochs);

// ---------------------------------------------------------------------------
// Baseline composites
// ---------------------------------------------------------------------------

/// MLP shape: input → hidden… → 1 output, ReLU activations.
struct MlpKernelShape {
  std::size_t inputs = 10;
  std::size_t hidden1 = 128;
  std::size_t hidden2 = 64;
};

/// Forward pass of one sample.
[[nodiscard]] OpCount mlp_infer_sample(const MlpKernelShape& shape);

/// Forward + backward + SGD weight update for one sample (the standard
/// ~3× forward-pass cost plus the parameter update traffic).
[[nodiscard]] OpCount mlp_train_sample(const MlpKernelShape& shape);

[[nodiscard]] OpCount mlp_train_total(const MlpKernelShape& shape, std::size_t samples,
                                      std::size_t epochs);

/// Baseline-HD (discretized HD classification regression, paper ref. [18]):
/// encode + `bins` full-precision similarity searches.
[[nodiscard]] OpCount baseline_hd_infer_sample(std::size_t features, std::size_t dim,
                                               std::size_t bins);

/// Baseline-HD training step: inference + two class-hypervector updates
/// (subtract from wrong bin, add to right bin).
[[nodiscard]] OpCount baseline_hd_train_sample(std::size_t features, std::size_t dim,
                                               std::size_t bins);

}  // namespace reghd::perf
