#include "perf/device_profile.hpp"

#include "hdc/kernel_backend.hpp"

namespace reghd::perf {

double DeviceProfile::energy_uj(const OpCount& ops) const noexcept {
  const double pj =
      pj_float_mul * static_cast<double>(ops.float_mul) +
      pj_float_add * static_cast<double>(ops.float_add) +
      pj_float_div * static_cast<double>(ops.float_div) +
      pj_float_trig * static_cast<double>(ops.float_trig) +
      pj_float_exp * static_cast<double>(ops.float_exp) +
      pj_float_sqrt * static_cast<double>(ops.float_sqrt) +
      pj_int_mul * static_cast<double>(ops.int_mul) +
      pj_int_add * static_cast<double>(ops.int_add) +
      pj_int_cmp * static_cast<double>(ops.int_cmp) +
      pj_xor_word * static_cast<double>(ops.xor_word) +
      pj_popcount_word * static_cast<double>(ops.popcount_word) +
      pj_mem_read_word * static_cast<double>(ops.mem_read_word) +
      pj_mem_write_word * static_cast<double>(ops.mem_write_word);
  return pj * 1e-6;
}

double DeviceProfile::time_ms(const OpCount& ops) const noexcept {
  const double ns =
      ns_float_mul * static_cast<double>(ops.float_mul) +
      ns_float_add * static_cast<double>(ops.float_add) +
      ns_float_div * static_cast<double>(ops.float_div) +
      ns_float_trig * static_cast<double>(ops.float_trig) +
      ns_float_exp * static_cast<double>(ops.float_exp) +
      ns_float_sqrt * static_cast<double>(ops.float_sqrt) +
      ns_int_mul * static_cast<double>(ops.int_mul) +
      ns_int_add * static_cast<double>(ops.int_add) +
      ns_int_cmp * static_cast<double>(ops.int_cmp) +
      ns_xor_word * static_cast<double>(ops.xor_word) +
      ns_popcount_word * static_cast<double>(ops.popcount_word) +
      ns_mem_read_word * static_cast<double>(ops.mem_read_word) +
      ns_mem_write_word * static_cast<double>(ops.mem_write_word);
  return ns * 1e-6;
}

double DeviceProfile::energy_delay(const OpCount& ops) const noexcept {
  return energy_uj(ops) * time_ms(ops);
}

const DeviceProfile& fpga_kintex7() {
  static const DeviceProfile profile = [] {
    DeviceProfile p;
    p.name = "kintex7-fpga";
    // Defaults above are already FPGA-flavoured (DSP-bound multiplies, wide
    // LUT adders, wide BRAM); nothing to override.
    return p;
  }();
  return profile;
}

const DeviceProfile& embedded_cpu() {
  static const DeviceProfile profile = [] {
    DeviceProfile p;
    p.name = "cortex-a53";
    // A 1.4 GHz in-order quad core with NEON: per-f64-op cost is one issue
    // slot amortized over the NEON table's reported double lanes (2×64-bit
    // per 128-bit vector — hdc::kNeonF64Lanes, the same constant the real
    // aarch64 backend reports in its f64_lanes field), so the estimate
    // tracks the kernel layer instead of hardcoding an x86-era number.
    // Less headroom between op classes than an FPGA, costlier memory per
    // word. Multiplies price a small in-order forwarding penalty over adds.
    constexpr double kCycleNs = 1.0 / 1.4;
    const double lane_ns = kCycleNs / static_cast<double>(hdc::kNeonF64Lanes);
    p.ns_float_mul = lane_ns * 1.1;
    p.ns_float_add = lane_ns;
    p.ns_float_div = 2.5;
    p.ns_float_trig = 8.0;
    p.ns_float_exp = 10.0;
    p.ns_float_sqrt = 2.0;
    p.ns_int_mul = 0.2;
    p.ns_int_add = 0.09;
    p.ns_int_cmp = 0.09;
    p.ns_xor_word = 0.09;
    p.ns_popcount_word = 0.18;
    p.ns_mem_read_word = 0.3;
    p.ns_mem_write_word = 0.3;

    p.pj_float_mul = 15.0;
    p.pj_float_add = 8.0;
    p.pj_float_div = 40.0;
    p.pj_float_trig = 120.0;
    p.pj_float_exp = 150.0;
    p.pj_float_sqrt = 35.0;
    p.pj_int_mul = 12.0;
    p.pj_int_add = 4.0;
    p.pj_int_cmp = 3.0;
    p.pj_xor_word = 4.0;
    p.pj_popcount_word = 6.0;
    p.pj_mem_read_word = 25.0;
    p.pj_mem_write_word = 28.0;
    return p;
  }();
  return profile;
}

}  // namespace reghd::perf
