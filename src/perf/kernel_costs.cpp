#include "perf/kernel_costs.hpp"

namespace reghd::perf {

namespace {

/// Packed words for D dimensions.
std::uint64_t words(std::size_t dim) { return (dim + 63) / 64; }

}  // namespace

OpCount cost_encode_rff(std::size_t features, std::size_t dim) {
  OpCount c;
  const auto n = static_cast<std::uint64_t>(features);
  const auto d = static_cast<std::uint64_t>(dim);
  c.float_mul = d * n + d;       // projection rows + cos·sin product
  c.float_add = d * n + d;       // projection accumulate + phase add
  c.float_trig = 2 * d;          // cos and sin per dimension
  c.int_cmp = d;                 // sign binarization
  c.mem_read_word = d * n + n + d;  // weights + features + phases
  c.mem_write_word = d + words(dim);  // real output + packed output
  return c;
}

OpCount cost_encode_nonlinear(std::size_t features, std::size_t dim) {
  OpCount c;
  const auto n = static_cast<std::uint64_t>(features);
  const auto d = static_cast<std::uint64_t>(dim);
  c.float_trig = 2 * n;          // sin(2f), sin(f) per feature
  c.float_mul = 2 * n + 2 * d;   // per-feature scaling + cos(b)·g, sin(b)·s
  c.float_add = d * n + d + n;   // ±1 projection adds + combine + s accumulation
  c.int_cmp = d;                 // sign binarization
  c.mem_read_word = n * words(dim) + n + 2 * d;  // packed bases + features + phase tables
  c.mem_write_word = d + words(dim);
  return c;
}

OpCount cost_cosine_real(std::size_t dim) {
  OpCount c;
  const auto d = static_cast<std::uint64_t>(dim);
  c.float_mul = d + 1;   // dot + norm-product scale
  c.float_add = d;
  c.float_div = 1;
  c.mem_read_word = 2 * d;
  return c;
}

OpCount cost_hamming(std::size_t dim) {
  OpCount c;
  const auto w = words(dim);
  c.xor_word = w;
  c.popcount_word = w;
  c.int_add = w;         // accumulate popcounts
  c.float_mul = 1;       // map distance to similarity scale
  c.float_add = 1;
  c.mem_read_word = 2 * w;
  return c;
}

OpCount cost_dot_real_real(std::size_t dim) {
  OpCount c;
  const auto d = static_cast<std::uint64_t>(dim);
  c.float_mul = d;
  c.float_add = d;
  c.mem_read_word = 2 * d;
  return c;
}

OpCount cost_dot_real_binary(std::size_t dim) {
  OpCount c;
  const auto d = static_cast<std::uint64_t>(dim);
  c.float_add = d;             // sign-conditional accumulate, multiply-free
  c.mem_read_word = d + words(dim);
  return c;
}

OpCount cost_dot_binary_binary(std::size_t dim) {
  OpCount c = cost_hamming(dim);
  c.float_mul += 1;  // calibration scale γ
  c.float_add += 1;
  return c;
}

OpCount cost_softmax(std::size_t models) {
  OpCount c;
  const auto k = static_cast<std::uint64_t>(models);
  c.float_exp = k;
  c.float_add = k;      // sum
  c.float_div = k;      // normalize
  c.int_cmp = k;        // max-logit scan for stability
  return c;
}

OpCount cost_accumulator_update(std::size_t dim, Precision sample) {
  OpCount c;
  const auto d = static_cast<std::uint64_t>(dim);
  if (sample == Precision::kReal) {
    c.float_mul = d;
    c.float_add = d;
    c.mem_read_word = 2 * d;
  } else {
    c.float_add = d;  // ±c add
    c.mem_read_word = d + words(dim);
  }
  c.mem_write_word = d;
  return c;
}

OpCount cost_binarize(std::size_t dim) {
  OpCount c;
  c.int_cmp = static_cast<std::uint64_t>(dim);
  c.mem_read_word = static_cast<std::uint64_t>(dim);
  c.mem_write_word = words(dim);
  return c;
}

OpCount reghd_encode_sample(const RegHDKernelShape& shape) {
  return shape.rff_encoder ? cost_encode_rff(shape.features, shape.dim)
                           : cost_encode_nonlinear(shape.features, shape.dim);
}

OpCount reghd_infer_sample(const RegHDKernelShape& shape) {
  OpCount c = reghd_encode_sample(shape);
  const auto k = static_cast<std::uint64_t>(shape.models);

  // Similarity search against all k cluster centers.
  const OpCount sim = shape.quantized_cluster ? cost_hamming(shape.dim)
                                              : cost_cosine_real(shape.dim);
  c += sim * k;

  c += cost_softmax(shape.models);

  // Prediction dots, one per model.
  OpCount dot_cost;
  if (shape.query == Precision::kReal && shape.model == Precision::kReal) {
    dot_cost = cost_dot_real_real(shape.dim);
  } else if (shape.query == Precision::kBinary && shape.model == Precision::kBinary) {
    dot_cost = cost_dot_binary_binary(shape.dim);
  } else {
    dot_cost = cost_dot_real_binary(shape.dim);
  }
  c += dot_cost * k;

  // Confidence-weighted accumulation of the k partial predictions.
  OpCount mix;
  mix.float_mul = k;
  mix.float_add = k;
  c += mix;
  return c;
}

OpCount reghd_train_sample(const RegHDKernelShape& shape) {
  OpCount c = reghd_infer_sample(shape);
  const auto k = static_cast<std::uint64_t>(shape.models);

  // Error + per-model learning-rate scaling.
  OpCount err;
  err.float_add = 1;
  err.float_mul = k;  // α·err·confidence per model
  c += err;

  // Integer-model updates (always at the configured query precision) and
  // the argmax cluster update.
  c += cost_accumulator_update(shape.dim, shape.query) * k;

  OpCount argmax;
  argmax.int_cmp = k;
  c += argmax;
  c += cost_accumulator_update(shape.dim, shape.query);  // C_l += (1−δ)·S
  OpCount w;
  w.float_add = 1;  // 1 − δ
  c += w;
  return c;
}

OpCount reghd_train_epoch(const RegHDKernelShape& shape, std::size_t samples) {
  OpCount c = reghd_train_sample(shape) * static_cast<std::uint64_t>(samples);
  const auto k = static_cast<std::uint64_t>(shape.models);
  if (shape.quantized_cluster) {
    c += cost_binarize(shape.dim) * k;  // refresh C^b from C
  }
  if (shape.model == Precision::kBinary) {
    c += cost_binarize(shape.dim) * k;  // refresh M^b from M
    OpCount gamma;                      // per-model calibration scale γ = mean|M_j|
    gamma.float_add = static_cast<std::uint64_t>(shape.dim);
    gamma.float_div = 1;
    c += gamma * k;
  }
  return c;
}

OpCount reghd_train_total(const RegHDKernelShape& shape, std::size_t samples,
                          std::size_t epochs) {
  return reghd_train_epoch(shape, samples) * static_cast<std::uint64_t>(epochs);
}

OpCount mlp_infer_sample(const MlpKernelShape& shape) {
  OpCount c;
  const auto layers = {
      std::pair{shape.inputs, shape.hidden1},
      std::pair{shape.hidden1, shape.hidden2},
      std::pair{shape.hidden2, std::size_t{1}},
  };
  for (const auto& [in, out] : layers) {
    const auto in64 = static_cast<std::uint64_t>(in);
    const auto out64 = static_cast<std::uint64_t>(out);
    c.float_mul += in64 * out64;
    c.float_add += in64 * out64 + out64;  // accumulate + bias
    c.int_cmp += out64;                   // ReLU
    c.mem_read_word += in64 * out64 + in64 + out64;
    c.mem_write_word += out64;
  }
  return c;
}

OpCount mlp_train_sample(const MlpKernelShape& shape) {
  // Backward pass ≈ 2× the forward multiply-accumulate volume (delta
  // propagation + weight-gradient outer products), plus the SGD update
  // touching every parameter.
  OpCount fwd = mlp_infer_sample(shape);
  OpCount c = fwd + fwd * 2;

  const std::uint64_t params =
      static_cast<std::uint64_t>(shape.inputs) * shape.hidden1 + shape.hidden1 +
      static_cast<std::uint64_t>(shape.hidden1) * shape.hidden2 + shape.hidden2 +
      static_cast<std::uint64_t>(shape.hidden2) + 1;
  OpCount update;
  update.float_mul = params;       // lr·grad
  update.float_add = params;       // w −= …
  update.mem_read_word = params;
  update.mem_write_word = params;
  c += update;
  return c;
}

OpCount mlp_train_total(const MlpKernelShape& shape, std::size_t samples,
                        std::size_t epochs) {
  return mlp_train_sample(shape) *
         (static_cast<std::uint64_t>(samples) * static_cast<std::uint64_t>(epochs));
}

OpCount baseline_hd_infer_sample(std::size_t features, std::size_t dim, std::size_t bins) {
  OpCount c = cost_encode_rff(features, dim);
  c += cost_cosine_real(dim) * static_cast<std::uint64_t>(bins);
  OpCount argmax;
  argmax.int_cmp = static_cast<std::uint64_t>(bins);
  c += argmax;
  return c;
}

OpCount baseline_hd_train_sample(std::size_t features, std::size_t dim, std::size_t bins) {
  OpCount c = baseline_hd_infer_sample(features, dim, bins);
  c += cost_accumulator_update(dim, Precision::kBinary) * 2;  // add right, subtract wrong
  return c;
}

}  // namespace reghd::perf
