// Device profiles: mapping operation tallies to time and energy.
//
// A profile assigns each primitive op an energy (picojoules) and an
// effective throughput cost (nanoseconds per op, amortizing the device's
// parallelism: an FPGA issuing hundreds of narrow adds per cycle has a far
// smaller ns/op for int_add than for a deep floating multiply). Absolute
// values are order-of-magnitude figures from the accelerator literature
// (Horowitz ISSCC'14 energy table; Kintex-7-class DSP/LUT throughput); the
// reproduction relies only on their *ratios*, which is also all the paper
// reports.
#pragma once

#include <string>

#include "perf/op_count.hpp"

namespace reghd::perf {

/// Per-op costs for one device.
struct DeviceProfile {
  std::string name;

  // Energy per op, picojoules.
  double pj_float_mul = 3.7;
  double pj_float_add = 0.9;
  double pj_float_div = 7.0;
  double pj_float_trig = 18.0;
  double pj_float_exp = 20.0;
  double pj_float_sqrt = 8.0;
  double pj_int_mul = 3.1;
  double pj_int_add = 0.1;
  double pj_int_cmp = 0.05;
  double pj_xor_word = 0.2;
  double pj_popcount_word = 0.4;
  double pj_mem_read_word = 5.0;
  double pj_mem_write_word = 5.5;

  // Effective time per op, nanoseconds (inverse of sustained throughput).
  // FPGA-flavoured defaults: multiplies are DSP-slice-bound (~125 GMAC/s on
  // a Kintex-7-class part), while narrow adds/compares/bit ops map to wide
  // LUT fabric with an order of magnitude more parallelism, and operands
  // stream from wide on-chip BRAM.
  double ns_float_mul = 0.008;
  double ns_float_add = 0.0015;
  double ns_float_div = 0.1;
  double ns_float_trig = 0.5;
  double ns_float_exp = 0.8;
  double ns_float_sqrt = 0.12;
  double ns_int_mul = 0.006;
  double ns_int_add = 0.0008;
  double ns_int_cmp = 0.0008;
  double ns_xor_word = 0.0005;
  double ns_popcount_word = 0.001;
  double ns_mem_read_word = 0.002;
  double ns_mem_write_word = 0.002;

  /// Total energy of a tally, in microjoules.
  [[nodiscard]] double energy_uj(const OpCount& ops) const noexcept;

  /// Total time of a tally, in milliseconds.
  [[nodiscard]] double time_ms(const OpCount& ops) const noexcept;

  /// Energy-delay convenience: energy·time (µJ·ms).
  [[nodiscard]] double energy_delay(const OpCount& ops) const noexcept;
};

/// Kintex-7-class FPGA accelerator profile (the paper's efficiency
/// platform): massive parallelism on narrow integer/bit ops, expensive
/// deep-pipeline transcendentals.
[[nodiscard]] const DeviceProfile& fpga_kintex7();

/// ARM Cortex-A53-class embedded CPU profile (the paper's Raspberry Pi 3B+):
/// flatter ratios between op classes, higher memory cost.
[[nodiscard]] const DeviceProfile& embedded_cpu();

}  // namespace reghd::perf
