// Operation accounting.
//
// The paper reports training/inference speedup and energy efficiency on a
// Kintex-7 FPGA and a Raspberry Pi — hardware this reproduction replaces
// with a deterministic op-level cost model (DESIGN.md §3). An OpCount is the
// exact tally of primitive operations a kernel executes; device profiles
// (device_profile.hpp) map tallies to time and energy. All of the paper's
// efficiency claims are *ratios*, which op-count ratios under a fixed
// profile reproduce faithfully: the mechanisms the paper credits
// (eliminating cosine similarity, multiply-free dot products, popcount
// Hamming search, linear scaling in k·D) are precisely changes in these
// tallies.
#pragma once

#include <cstdint>
#include <string>

namespace reghd::perf {

/// Tally of primitive operations. Word-granular entries count 64-bit words.
struct OpCount {
  // Floating-point (or wide fixed-point on FPGA) arithmetic.
  std::uint64_t float_mul = 0;
  std::uint64_t float_add = 0;
  std::uint64_t float_div = 0;
  std::uint64_t float_trig = 0;  ///< sin/cos evaluations (CORDIC on FPGA).
  std::uint64_t float_exp = 0;   ///< exp evaluations (softmax, RBF).
  std::uint64_t float_sqrt = 0;

  // Narrow integer arithmetic.
  std::uint64_t int_mul = 0;
  std::uint64_t int_add = 0;
  std::uint64_t int_cmp = 0;

  // Bit-level word operations (64 dims per word).
  std::uint64_t xor_word = 0;
  std::uint64_t popcount_word = 0;

  // Memory traffic in 64-bit words.
  std::uint64_t mem_read_word = 0;
  std::uint64_t mem_write_word = 0;

  OpCount& operator+=(const OpCount& other) noexcept;
  [[nodiscard]] OpCount operator+(const OpCount& other) const noexcept;

  /// Scales every tally by a repetition count (samples, epochs, models).
  OpCount& operator*=(std::uint64_t times) noexcept;
  [[nodiscard]] OpCount operator*(std::uint64_t times) const noexcept;

  /// Total primitive operations (unweighted; diagnostic only).
  [[nodiscard]] std::uint64_t total() const noexcept;

  [[nodiscard]] std::string to_string() const;

  bool operator==(const OpCount&) const = default;
};

}  // namespace reghd::perf
