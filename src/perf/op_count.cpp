#include "perf/op_count.hpp"

#include <sstream>

namespace reghd::perf {

OpCount& OpCount::operator+=(const OpCount& other) noexcept {
  float_mul += other.float_mul;
  float_add += other.float_add;
  float_div += other.float_div;
  float_trig += other.float_trig;
  float_exp += other.float_exp;
  float_sqrt += other.float_sqrt;
  int_mul += other.int_mul;
  int_add += other.int_add;
  int_cmp += other.int_cmp;
  xor_word += other.xor_word;
  popcount_word += other.popcount_word;
  mem_read_word += other.mem_read_word;
  mem_write_word += other.mem_write_word;
  return *this;
}

OpCount OpCount::operator+(const OpCount& other) const noexcept {
  OpCount out = *this;
  out += other;
  return out;
}

OpCount& OpCount::operator*=(std::uint64_t times) noexcept {
  float_mul *= times;
  float_add *= times;
  float_div *= times;
  float_trig *= times;
  float_exp *= times;
  float_sqrt *= times;
  int_mul *= times;
  int_add *= times;
  int_cmp *= times;
  xor_word *= times;
  popcount_word *= times;
  mem_read_word *= times;
  mem_write_word *= times;
  return *this;
}

OpCount OpCount::operator*(std::uint64_t times) const noexcept {
  OpCount out = *this;
  out *= times;
  return out;
}

std::uint64_t OpCount::total() const noexcept {
  return float_mul + float_add + float_div + float_trig + float_exp + float_sqrt + int_mul +
         int_add + int_cmp + xor_word + popcount_word + mem_read_word + mem_write_word;
}

std::string OpCount::to_string() const {
  std::ostringstream oss;
  oss << "fmul=" << float_mul << " fadd=" << float_add << " fdiv=" << float_div
      << " ftrig=" << float_trig << " fexp=" << float_exp << " fsqrt=" << float_sqrt
      << " imul=" << int_mul << " iadd=" << int_add << " icmp=" << int_cmp
      << " xorw=" << xor_word << " popw=" << popcount_word << " rdw=" << mem_read_word
      << " wrw=" << mem_write_word;
  return oss.str();
}

}  // namespace reghd::perf
