# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build-notel/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_smoke "sh" "/root/repo/tests/cli_smoke.sh" "/root/repo/build-notel/tools/reghd")
set_tests_properties(cli_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(checkpoint_torture_smoke "/root/repo/build-notel/tools/checkpoint_torture" "--kills" "3" "--rows" "600" "--dim" "256")
set_tests_properties(checkpoint_torture_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
