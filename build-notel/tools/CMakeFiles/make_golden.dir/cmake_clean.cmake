file(REMOVE_RECURSE
  "CMakeFiles/make_golden.dir/make_golden.cpp.o"
  "CMakeFiles/make_golden.dir/make_golden.cpp.o.d"
  "make_golden"
  "make_golden.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/make_golden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
