# Empty dependencies file for make_golden.
# This may be replaced when dependencies are built.
