# Empty compiler generated dependencies file for reghd.
# This may be replaced when dependencies are built.
