file(REMOVE_RECURSE
  "CMakeFiles/reghd.dir/reghd_cli.cpp.o"
  "CMakeFiles/reghd.dir/reghd_cli.cpp.o.d"
  "reghd"
  "reghd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reghd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
