file(REMOVE_RECURSE
  "CMakeFiles/checkpoint_torture.dir/checkpoint_torture.cpp.o"
  "CMakeFiles/checkpoint_torture.dir/checkpoint_torture.cpp.o.d"
  "checkpoint_torture"
  "checkpoint_torture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_torture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
