# Empty compiler generated dependencies file for checkpoint_torture.
# This may be replaced when dependencies are built.
