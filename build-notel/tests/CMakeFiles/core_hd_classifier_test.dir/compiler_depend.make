# Empty compiler generated dependencies file for core_hd_classifier_test.
# This may be replaced when dependencies are built.
