# Empty dependencies file for core_batch_training_test.
# This may be replaced when dependencies are built.
