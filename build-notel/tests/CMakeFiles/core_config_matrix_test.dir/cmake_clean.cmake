file(REMOVE_RECURSE
  "CMakeFiles/core_config_matrix_test.dir/core_config_matrix_test.cpp.o"
  "CMakeFiles/core_config_matrix_test.dir/core_config_matrix_test.cpp.o.d"
  "core_config_matrix_test"
  "core_config_matrix_test.pdb"
  "core_config_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_config_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
