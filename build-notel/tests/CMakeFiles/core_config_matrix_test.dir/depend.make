# Empty dependencies file for core_config_matrix_test.
# This may be replaced when dependencies are built.
