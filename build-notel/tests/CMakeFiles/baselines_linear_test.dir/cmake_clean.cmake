file(REMOVE_RECURSE
  "CMakeFiles/baselines_linear_test.dir/baselines_linear_test.cpp.o"
  "CMakeFiles/baselines_linear_test.dir/baselines_linear_test.cpp.o.d"
  "baselines_linear_test"
  "baselines_linear_test.pdb"
  "baselines_linear_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_linear_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
