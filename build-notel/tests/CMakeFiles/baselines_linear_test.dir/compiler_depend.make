# Empty compiler generated dependencies file for baselines_linear_test.
# This may be replaced when dependencies are built.
