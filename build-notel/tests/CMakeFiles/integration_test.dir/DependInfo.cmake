
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/integration_test.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-notel/src/core/CMakeFiles/reghd_core.dir/DependInfo.cmake"
  "/root/repo/build-notel/src/baselines/CMakeFiles/reghd_baselines.dir/DependInfo.cmake"
  "/root/repo/build-notel/src/perf/CMakeFiles/reghd_perf.dir/DependInfo.cmake"
  "/root/repo/build-notel/src/sim/CMakeFiles/reghd_sim.dir/DependInfo.cmake"
  "/root/repo/build-notel/src/data/CMakeFiles/reghd_data.dir/DependInfo.cmake"
  "/root/repo/build-notel/src/hdc/CMakeFiles/reghd_hdc.dir/DependInfo.cmake"
  "/root/repo/build-notel/src/util/CMakeFiles/reghd_util.dir/DependInfo.cmake"
  "/root/repo/build-notel/src/obs/CMakeFiles/reghd_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
