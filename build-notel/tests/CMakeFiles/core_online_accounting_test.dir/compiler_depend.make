# Empty compiler generated dependencies file for core_online_accounting_test.
# This may be replaced when dependencies are built.
