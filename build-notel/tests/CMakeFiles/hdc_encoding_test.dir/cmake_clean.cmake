file(REMOVE_RECURSE
  "CMakeFiles/hdc_encoding_test.dir/hdc_encoding_test.cpp.o"
  "CMakeFiles/hdc_encoding_test.dir/hdc_encoding_test.cpp.o.d"
  "hdc_encoding_test"
  "hdc_encoding_test.pdb"
  "hdc_encoding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdc_encoding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
