# Empty dependencies file for hdc_encoding_test.
# This may be replaced when dependencies are built.
