# Empty compiler generated dependencies file for util_fast_trig_test.
# This may be replaced when dependencies are built.
