file(REMOVE_RECURSE
  "CMakeFiles/util_fast_trig_test.dir/util_fast_trig_test.cpp.o"
  "CMakeFiles/util_fast_trig_test.dir/util_fast_trig_test.cpp.o.d"
  "util_fast_trig_test"
  "util_fast_trig_test.pdb"
  "util_fast_trig_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_fast_trig_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
