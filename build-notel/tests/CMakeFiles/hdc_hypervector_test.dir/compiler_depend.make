# Empty compiler generated dependencies file for hdc_hypervector_test.
# This may be replaced when dependencies are built.
