file(REMOVE_RECURSE
  "CMakeFiles/hdc_hypervector_test.dir/hdc_hypervector_test.cpp.o"
  "CMakeFiles/hdc_hypervector_test.dir/hdc_hypervector_test.cpp.o.d"
  "hdc_hypervector_test"
  "hdc_hypervector_test.pdb"
  "hdc_hypervector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdc_hypervector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
