file(REMOVE_RECURSE
  "CMakeFiles/util_framing_test.dir/util_framing_test.cpp.o"
  "CMakeFiles/util_framing_test.dir/util_framing_test.cpp.o.d"
  "util_framing_test"
  "util_framing_test.pdb"
  "util_framing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_framing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
