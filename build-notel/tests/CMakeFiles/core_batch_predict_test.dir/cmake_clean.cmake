file(REMOVE_RECURSE
  "CMakeFiles/core_batch_predict_test.dir/core_batch_predict_test.cpp.o"
  "CMakeFiles/core_batch_predict_test.dir/core_batch_predict_test.cpp.o.d"
  "core_batch_predict_test"
  "core_batch_predict_test.pdb"
  "core_batch_predict_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_batch_predict_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
