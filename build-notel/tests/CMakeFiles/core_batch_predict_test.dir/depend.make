# Empty dependencies file for core_batch_predict_test.
# This may be replaced when dependencies are built.
