# Empty compiler generated dependencies file for model_regressor_test.
# This may be replaced when dependencies are built.
