file(REMOVE_RECURSE
  "CMakeFiles/model_regressor_test.dir/model_regressor_test.cpp.o"
  "CMakeFiles/model_regressor_test.dir/model_regressor_test.cpp.o.d"
  "model_regressor_test"
  "model_regressor_test.pdb"
  "model_regressor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_regressor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
