file(REMOVE_RECURSE
  "CMakeFiles/obs_telemetry_test.dir/obs_telemetry_test.cpp.o"
  "CMakeFiles/obs_telemetry_test.dir/obs_telemetry_test.cpp.o.d"
  "obs_telemetry_test"
  "obs_telemetry_test.pdb"
  "obs_telemetry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obs_telemetry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
