# Empty dependencies file for obs_telemetry_test.
# This may be replaced when dependencies are built.
