file(REMOVE_RECURSE
  "CMakeFiles/core_hd_clustering_test.dir/core_hd_clustering_test.cpp.o"
  "CMakeFiles/core_hd_clustering_test.dir/core_hd_clustering_test.cpp.o.d"
  "core_hd_clustering_test"
  "core_hd_clustering_test.pdb"
  "core_hd_clustering_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_hd_clustering_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
