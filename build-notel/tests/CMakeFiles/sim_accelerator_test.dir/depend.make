# Empty dependencies file for sim_accelerator_test.
# This may be replaced when dependencies are built.
