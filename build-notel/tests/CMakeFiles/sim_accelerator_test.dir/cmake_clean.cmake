file(REMOVE_RECURSE
  "CMakeFiles/sim_accelerator_test.dir/sim_accelerator_test.cpp.o"
  "CMakeFiles/sim_accelerator_test.dir/sim_accelerator_test.cpp.o.d"
  "sim_accelerator_test"
  "sim_accelerator_test.pdb"
  "sim_accelerator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_accelerator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
