# Empty compiler generated dependencies file for core_encoded_test.
# This may be replaced when dependencies are built.
