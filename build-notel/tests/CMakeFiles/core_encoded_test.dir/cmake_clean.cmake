file(REMOVE_RECURSE
  "CMakeFiles/core_encoded_test.dir/core_encoded_test.cpp.o"
  "CMakeFiles/core_encoded_test.dir/core_encoded_test.cpp.o.d"
  "core_encoded_test"
  "core_encoded_test.pdb"
  "core_encoded_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_encoded_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
