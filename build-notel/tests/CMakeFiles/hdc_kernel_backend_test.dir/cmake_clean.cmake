file(REMOVE_RECURSE
  "CMakeFiles/hdc_kernel_backend_test.dir/hdc_kernel_backend_test.cpp.o"
  "CMakeFiles/hdc_kernel_backend_test.dir/hdc_kernel_backend_test.cpp.o.d"
  "hdc_kernel_backend_test"
  "hdc_kernel_backend_test.pdb"
  "hdc_kernel_backend_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdc_kernel_backend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
