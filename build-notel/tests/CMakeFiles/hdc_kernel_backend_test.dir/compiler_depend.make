# Empty compiler generated dependencies file for hdc_kernel_backend_test.
# This may be replaced when dependencies are built.
