file(REMOVE_RECURSE
  "CMakeFiles/baselines_grid_search_test.dir/baselines_grid_search_test.cpp.o"
  "CMakeFiles/baselines_grid_search_test.dir/baselines_grid_search_test.cpp.o.d"
  "baselines_grid_search_test"
  "baselines_grid_search_test.pdb"
  "baselines_grid_search_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_grid_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
