# Empty dependencies file for baselines_grid_search_test.
# This may be replaced when dependencies are built.
