file(REMOVE_RECURSE
  "CMakeFiles/core_soa_equivalence_test.dir/core_soa_equivalence_test.cpp.o"
  "CMakeFiles/core_soa_equivalence_test.dir/core_soa_equivalence_test.cpp.o.d"
  "core_soa_equivalence_test"
  "core_soa_equivalence_test.pdb"
  "core_soa_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_soa_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
