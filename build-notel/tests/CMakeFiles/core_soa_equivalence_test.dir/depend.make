# Empty dependencies file for core_soa_equivalence_test.
# This may be replaced when dependencies are built.
