file(REMOVE_RECURSE
  "CMakeFiles/hdc_capacity_test.dir/hdc_capacity_test.cpp.o"
  "CMakeFiles/hdc_capacity_test.dir/hdc_capacity_test.cpp.o.d"
  "hdc_capacity_test"
  "hdc_capacity_test.pdb"
  "hdc_capacity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdc_capacity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
