# Empty dependencies file for hdc_capacity_test.
# This may be replaced when dependencies are built.
