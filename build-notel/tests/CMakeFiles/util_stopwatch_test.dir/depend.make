# Empty dependencies file for util_stopwatch_test.
# This may be replaced when dependencies are built.
