file(REMOVE_RECURSE
  "CMakeFiles/util_stopwatch_test.dir/util_stopwatch_test.cpp.o"
  "CMakeFiles/util_stopwatch_test.dir/util_stopwatch_test.cpp.o.d"
  "util_stopwatch_test"
  "util_stopwatch_test.pdb"
  "util_stopwatch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_stopwatch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
