file(REMOVE_RECURSE
  "CMakeFiles/hdc_random_hv_test.dir/hdc_random_hv_test.cpp.o"
  "CMakeFiles/hdc_random_hv_test.dir/hdc_random_hv_test.cpp.o.d"
  "hdc_random_hv_test"
  "hdc_random_hv_test.pdb"
  "hdc_random_hv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdc_random_hv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
