# Empty compiler generated dependencies file for hdc_random_hv_test.
# This may be replaced when dependencies are built.
