file(REMOVE_RECURSE
  "CMakeFiles/core_sparsify_test.dir/core_sparsify_test.cpp.o"
  "CMakeFiles/core_sparsify_test.dir/core_sparsify_test.cpp.o.d"
  "core_sparsify_test"
  "core_sparsify_test.pdb"
  "core_sparsify_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_sparsify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
