# Empty dependencies file for core_sparsify_test.
# This may be replaced when dependencies are built.
