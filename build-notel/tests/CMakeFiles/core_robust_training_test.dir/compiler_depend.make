# Empty compiler generated dependencies file for core_robust_training_test.
# This may be replaced when dependencies are built.
