file(REMOVE_RECURSE
  "CMakeFiles/core_robust_training_test.dir/core_robust_training_test.cpp.o"
  "CMakeFiles/core_robust_training_test.dir/core_robust_training_test.cpp.o.d"
  "core_robust_training_test"
  "core_robust_training_test.pdb"
  "core_robust_training_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_robust_training_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
