# Empty compiler generated dependencies file for core_single_model_test.
# This may be replaced when dependencies are built.
