file(REMOVE_RECURSE
  "CMakeFiles/hdc_temporal_encoder_test.dir/hdc_temporal_encoder_test.cpp.o"
  "CMakeFiles/hdc_temporal_encoder_test.dir/hdc_temporal_encoder_test.cpp.o.d"
  "hdc_temporal_encoder_test"
  "hdc_temporal_encoder_test.pdb"
  "hdc_temporal_encoder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdc_temporal_encoder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
