# Empty dependencies file for hdc_temporal_encoder_test.
# This may be replaced when dependencies are built.
