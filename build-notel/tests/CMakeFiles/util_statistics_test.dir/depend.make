# Empty dependencies file for util_statistics_test.
# This may be replaced when dependencies are built.
