file(REMOVE_RECURSE
  "CMakeFiles/util_statistics_test.dir/util_statistics_test.cpp.o"
  "CMakeFiles/util_statistics_test.dir/util_statistics_test.cpp.o.d"
  "util_statistics_test"
  "util_statistics_test.pdb"
  "util_statistics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_statistics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
