file(REMOVE_RECURSE
  "CMakeFiles/baselines_svr_test.dir/baselines_svr_test.cpp.o"
  "CMakeFiles/baselines_svr_test.dir/baselines_svr_test.cpp.o.d"
  "baselines_svr_test"
  "baselines_svr_test.pdb"
  "baselines_svr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_svr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
