# Empty compiler generated dependencies file for baselines_svr_test.
# This may be replaced when dependencies are built.
