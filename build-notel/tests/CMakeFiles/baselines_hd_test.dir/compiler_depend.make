# Empty compiler generated dependencies file for baselines_hd_test.
# This may be replaced when dependencies are built.
