file(REMOVE_RECURSE
  "CMakeFiles/baselines_hd_test.dir/baselines_hd_test.cpp.o"
  "CMakeFiles/baselines_hd_test.dir/baselines_hd_test.cpp.o.d"
  "baselines_hd_test"
  "baselines_hd_test.pdb"
  "baselines_hd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_hd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
