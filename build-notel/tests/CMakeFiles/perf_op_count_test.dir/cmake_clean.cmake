file(REMOVE_RECURSE
  "CMakeFiles/perf_op_count_test.dir/perf_op_count_test.cpp.o"
  "CMakeFiles/perf_op_count_test.dir/perf_op_count_test.cpp.o.d"
  "perf_op_count_test"
  "perf_op_count_test.pdb"
  "perf_op_count_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_op_count_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
