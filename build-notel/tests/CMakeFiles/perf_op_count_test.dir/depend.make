# Empty dependencies file for perf_op_count_test.
# This may be replaced when dependencies are built.
