file(REMOVE_RECURSE
  "CMakeFiles/baselines_tree_test.dir/baselines_tree_test.cpp.o"
  "CMakeFiles/baselines_tree_test.dir/baselines_tree_test.cpp.o.d"
  "baselines_tree_test"
  "baselines_tree_test.pdb"
  "baselines_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
