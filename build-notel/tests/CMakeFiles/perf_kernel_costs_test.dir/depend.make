# Empty dependencies file for perf_kernel_costs_test.
# This may be replaced when dependencies are built.
