file(REMOVE_RECURSE
  "CMakeFiles/perf_kernel_costs_test.dir/perf_kernel_costs_test.cpp.o"
  "CMakeFiles/perf_kernel_costs_test.dir/perf_kernel_costs_test.cpp.o.d"
  "perf_kernel_costs_test"
  "perf_kernel_costs_test.pdb"
  "perf_kernel_costs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_kernel_costs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
