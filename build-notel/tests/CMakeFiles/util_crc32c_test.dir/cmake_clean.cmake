file(REMOVE_RECURSE
  "CMakeFiles/util_crc32c_test.dir/util_crc32c_test.cpp.o"
  "CMakeFiles/util_crc32c_test.dir/util_crc32c_test.cpp.o.d"
  "util_crc32c_test"
  "util_crc32c_test.pdb"
  "util_crc32c_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_crc32c_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
