# Empty compiler generated dependencies file for core_early_stopping_test.
# This may be replaced when dependencies are built.
