file(REMOVE_RECURSE
  "CMakeFiles/core_early_stopping_test.dir/core_early_stopping_test.cpp.o"
  "CMakeFiles/core_early_stopping_test.dir/core_early_stopping_test.cpp.o.d"
  "core_early_stopping_test"
  "core_early_stopping_test.pdb"
  "core_early_stopping_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_early_stopping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
