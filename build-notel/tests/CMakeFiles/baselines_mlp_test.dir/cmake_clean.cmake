file(REMOVE_RECURSE
  "CMakeFiles/baselines_mlp_test.dir/baselines_mlp_test.cpp.o"
  "CMakeFiles/baselines_mlp_test.dir/baselines_mlp_test.cpp.o.d"
  "baselines_mlp_test"
  "baselines_mlp_test.pdb"
  "baselines_mlp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_mlp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
