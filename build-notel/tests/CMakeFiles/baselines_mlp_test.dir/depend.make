# Empty dependencies file for baselines_mlp_test.
# This may be replaced when dependencies are built.
