# Empty dependencies file for core_kernels_test.
# This may be replaced when dependencies are built.
