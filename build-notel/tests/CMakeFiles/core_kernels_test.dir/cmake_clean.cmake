file(REMOVE_RECURSE
  "CMakeFiles/core_kernels_test.dir/core_kernels_test.cpp.o"
  "CMakeFiles/core_kernels_test.dir/core_kernels_test.cpp.o.d"
  "core_kernels_test"
  "core_kernels_test.pdb"
  "core_kernels_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_kernels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
