# Empty dependencies file for data_scaler_test.
# This may be replaced when dependencies are built.
