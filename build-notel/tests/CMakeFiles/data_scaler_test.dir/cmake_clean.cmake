file(REMOVE_RECURSE
  "CMakeFiles/data_scaler_test.dir/data_scaler_test.cpp.o"
  "CMakeFiles/data_scaler_test.dir/data_scaler_test.cpp.o.d"
  "data_scaler_test"
  "data_scaler_test.pdb"
  "data_scaler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_scaler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
