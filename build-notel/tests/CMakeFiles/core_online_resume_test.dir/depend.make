# Empty dependencies file for core_online_resume_test.
# This may be replaced when dependencies are built.
