# Empty dependencies file for hdc_ops_test.
# This may be replaced when dependencies are built.
