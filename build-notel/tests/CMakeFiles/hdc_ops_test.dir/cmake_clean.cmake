file(REMOVE_RECURSE
  "CMakeFiles/hdc_ops_test.dir/hdc_ops_test.cpp.o"
  "CMakeFiles/hdc_ops_test.dir/hdc_ops_test.cpp.o.d"
  "hdc_ops_test"
  "hdc_ops_test.pdb"
  "hdc_ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdc_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
