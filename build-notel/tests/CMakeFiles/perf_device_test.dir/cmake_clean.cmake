file(REMOVE_RECURSE
  "CMakeFiles/perf_device_test.dir/perf_device_test.cpp.o"
  "CMakeFiles/perf_device_test.dir/perf_device_test.cpp.o.d"
  "perf_device_test"
  "perf_device_test.pdb"
  "perf_device_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
