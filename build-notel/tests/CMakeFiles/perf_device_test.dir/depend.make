# Empty dependencies file for perf_device_test.
# This may be replaced when dependencies are built.
