# Empty dependencies file for core_model_io_fuzz_test.
# This may be replaced when dependencies are built.
