file(REMOVE_RECURSE
  "libreghd_data.a"
)
