# Empty dependencies file for reghd_data.
# This may be replaced when dependencies are built.
