file(REMOVE_RECURSE
  "CMakeFiles/reghd_data.dir/csv.cpp.o"
  "CMakeFiles/reghd_data.dir/csv.cpp.o.d"
  "CMakeFiles/reghd_data.dir/dataset.cpp.o"
  "CMakeFiles/reghd_data.dir/dataset.cpp.o.d"
  "CMakeFiles/reghd_data.dir/scaler.cpp.o"
  "CMakeFiles/reghd_data.dir/scaler.cpp.o.d"
  "CMakeFiles/reghd_data.dir/synthetic.cpp.o"
  "CMakeFiles/reghd_data.dir/synthetic.cpp.o.d"
  "libreghd_data.a"
  "libreghd_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reghd_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
