file(REMOVE_RECURSE
  "CMakeFiles/reghd_util.dir/args.cpp.o"
  "CMakeFiles/reghd_util.dir/args.cpp.o.d"
  "CMakeFiles/reghd_util.dir/atomic_file.cpp.o"
  "CMakeFiles/reghd_util.dir/atomic_file.cpp.o.d"
  "CMakeFiles/reghd_util.dir/fault_injection.cpp.o"
  "CMakeFiles/reghd_util.dir/fault_injection.cpp.o.d"
  "CMakeFiles/reghd_util.dir/framing.cpp.o"
  "CMakeFiles/reghd_util.dir/framing.cpp.o.d"
  "CMakeFiles/reghd_util.dir/matrix.cpp.o"
  "CMakeFiles/reghd_util.dir/matrix.cpp.o.d"
  "CMakeFiles/reghd_util.dir/metrics.cpp.o"
  "CMakeFiles/reghd_util.dir/metrics.cpp.o.d"
  "CMakeFiles/reghd_util.dir/statistics.cpp.o"
  "CMakeFiles/reghd_util.dir/statistics.cpp.o.d"
  "CMakeFiles/reghd_util.dir/table.cpp.o"
  "CMakeFiles/reghd_util.dir/table.cpp.o.d"
  "CMakeFiles/reghd_util.dir/thread_pool.cpp.o"
  "CMakeFiles/reghd_util.dir/thread_pool.cpp.o.d"
  "libreghd_util.a"
  "libreghd_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reghd_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
