file(REMOVE_RECURSE
  "libreghd_util.a"
)
