
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/args.cpp" "src/util/CMakeFiles/reghd_util.dir/args.cpp.o" "gcc" "src/util/CMakeFiles/reghd_util.dir/args.cpp.o.d"
  "/root/repo/src/util/atomic_file.cpp" "src/util/CMakeFiles/reghd_util.dir/atomic_file.cpp.o" "gcc" "src/util/CMakeFiles/reghd_util.dir/atomic_file.cpp.o.d"
  "/root/repo/src/util/fault_injection.cpp" "src/util/CMakeFiles/reghd_util.dir/fault_injection.cpp.o" "gcc" "src/util/CMakeFiles/reghd_util.dir/fault_injection.cpp.o.d"
  "/root/repo/src/util/framing.cpp" "src/util/CMakeFiles/reghd_util.dir/framing.cpp.o" "gcc" "src/util/CMakeFiles/reghd_util.dir/framing.cpp.o.d"
  "/root/repo/src/util/matrix.cpp" "src/util/CMakeFiles/reghd_util.dir/matrix.cpp.o" "gcc" "src/util/CMakeFiles/reghd_util.dir/matrix.cpp.o.d"
  "/root/repo/src/util/metrics.cpp" "src/util/CMakeFiles/reghd_util.dir/metrics.cpp.o" "gcc" "src/util/CMakeFiles/reghd_util.dir/metrics.cpp.o.d"
  "/root/repo/src/util/statistics.cpp" "src/util/CMakeFiles/reghd_util.dir/statistics.cpp.o" "gcc" "src/util/CMakeFiles/reghd_util.dir/statistics.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/util/CMakeFiles/reghd_util.dir/table.cpp.o" "gcc" "src/util/CMakeFiles/reghd_util.dir/table.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/util/CMakeFiles/reghd_util.dir/thread_pool.cpp.o" "gcc" "src/util/CMakeFiles/reghd_util.dir/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-notel/src/obs/CMakeFiles/reghd_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
