# Empty dependencies file for reghd_util.
# This may be replaced when dependencies are built.
