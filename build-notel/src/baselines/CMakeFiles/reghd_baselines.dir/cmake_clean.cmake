file(REMOVE_RECURSE
  "CMakeFiles/reghd_baselines.dir/baseline_hd.cpp.o"
  "CMakeFiles/reghd_baselines.dir/baseline_hd.cpp.o.d"
  "CMakeFiles/reghd_baselines.dir/decision_tree.cpp.o"
  "CMakeFiles/reghd_baselines.dir/decision_tree.cpp.o.d"
  "CMakeFiles/reghd_baselines.dir/grid_search.cpp.o"
  "CMakeFiles/reghd_baselines.dir/grid_search.cpp.o.d"
  "CMakeFiles/reghd_baselines.dir/knn.cpp.o"
  "CMakeFiles/reghd_baselines.dir/knn.cpp.o.d"
  "CMakeFiles/reghd_baselines.dir/linear.cpp.o"
  "CMakeFiles/reghd_baselines.dir/linear.cpp.o.d"
  "CMakeFiles/reghd_baselines.dir/mlp.cpp.o"
  "CMakeFiles/reghd_baselines.dir/mlp.cpp.o.d"
  "CMakeFiles/reghd_baselines.dir/svr.cpp.o"
  "CMakeFiles/reghd_baselines.dir/svr.cpp.o.d"
  "libreghd_baselines.a"
  "libreghd_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reghd_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
