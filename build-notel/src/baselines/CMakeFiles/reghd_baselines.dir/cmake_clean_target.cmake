file(REMOVE_RECURSE
  "libreghd_baselines.a"
)
