
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/baseline_hd.cpp" "src/baselines/CMakeFiles/reghd_baselines.dir/baseline_hd.cpp.o" "gcc" "src/baselines/CMakeFiles/reghd_baselines.dir/baseline_hd.cpp.o.d"
  "/root/repo/src/baselines/decision_tree.cpp" "src/baselines/CMakeFiles/reghd_baselines.dir/decision_tree.cpp.o" "gcc" "src/baselines/CMakeFiles/reghd_baselines.dir/decision_tree.cpp.o.d"
  "/root/repo/src/baselines/grid_search.cpp" "src/baselines/CMakeFiles/reghd_baselines.dir/grid_search.cpp.o" "gcc" "src/baselines/CMakeFiles/reghd_baselines.dir/grid_search.cpp.o.d"
  "/root/repo/src/baselines/knn.cpp" "src/baselines/CMakeFiles/reghd_baselines.dir/knn.cpp.o" "gcc" "src/baselines/CMakeFiles/reghd_baselines.dir/knn.cpp.o.d"
  "/root/repo/src/baselines/linear.cpp" "src/baselines/CMakeFiles/reghd_baselines.dir/linear.cpp.o" "gcc" "src/baselines/CMakeFiles/reghd_baselines.dir/linear.cpp.o.d"
  "/root/repo/src/baselines/mlp.cpp" "src/baselines/CMakeFiles/reghd_baselines.dir/mlp.cpp.o" "gcc" "src/baselines/CMakeFiles/reghd_baselines.dir/mlp.cpp.o.d"
  "/root/repo/src/baselines/svr.cpp" "src/baselines/CMakeFiles/reghd_baselines.dir/svr.cpp.o" "gcc" "src/baselines/CMakeFiles/reghd_baselines.dir/svr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-notel/src/hdc/CMakeFiles/reghd_hdc.dir/DependInfo.cmake"
  "/root/repo/build-notel/src/data/CMakeFiles/reghd_data.dir/DependInfo.cmake"
  "/root/repo/build-notel/src/util/CMakeFiles/reghd_util.dir/DependInfo.cmake"
  "/root/repo/build-notel/src/core/CMakeFiles/reghd_core.dir/DependInfo.cmake"
  "/root/repo/build-notel/src/obs/CMakeFiles/reghd_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
