# Empty dependencies file for reghd_baselines.
# This may be replaced when dependencies are built.
