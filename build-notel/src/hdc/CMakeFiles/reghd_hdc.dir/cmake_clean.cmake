file(REMOVE_RECURSE
  "CMakeFiles/reghd_hdc.dir/capacity.cpp.o"
  "CMakeFiles/reghd_hdc.dir/capacity.cpp.o.d"
  "CMakeFiles/reghd_hdc.dir/encoding.cpp.o"
  "CMakeFiles/reghd_hdc.dir/encoding.cpp.o.d"
  "CMakeFiles/reghd_hdc.dir/hypervector.cpp.o"
  "CMakeFiles/reghd_hdc.dir/hypervector.cpp.o.d"
  "CMakeFiles/reghd_hdc.dir/kernel_backend.cpp.o"
  "CMakeFiles/reghd_hdc.dir/kernel_backend.cpp.o.d"
  "CMakeFiles/reghd_hdc.dir/ops.cpp.o"
  "CMakeFiles/reghd_hdc.dir/ops.cpp.o.d"
  "CMakeFiles/reghd_hdc.dir/random_hv.cpp.o"
  "CMakeFiles/reghd_hdc.dir/random_hv.cpp.o.d"
  "libreghd_hdc.a"
  "libreghd_hdc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reghd_hdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
