
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hdc/capacity.cpp" "src/hdc/CMakeFiles/reghd_hdc.dir/capacity.cpp.o" "gcc" "src/hdc/CMakeFiles/reghd_hdc.dir/capacity.cpp.o.d"
  "/root/repo/src/hdc/encoding.cpp" "src/hdc/CMakeFiles/reghd_hdc.dir/encoding.cpp.o" "gcc" "src/hdc/CMakeFiles/reghd_hdc.dir/encoding.cpp.o.d"
  "/root/repo/src/hdc/hypervector.cpp" "src/hdc/CMakeFiles/reghd_hdc.dir/hypervector.cpp.o" "gcc" "src/hdc/CMakeFiles/reghd_hdc.dir/hypervector.cpp.o.d"
  "/root/repo/src/hdc/kernel_backend.cpp" "src/hdc/CMakeFiles/reghd_hdc.dir/kernel_backend.cpp.o" "gcc" "src/hdc/CMakeFiles/reghd_hdc.dir/kernel_backend.cpp.o.d"
  "/root/repo/src/hdc/ops.cpp" "src/hdc/CMakeFiles/reghd_hdc.dir/ops.cpp.o" "gcc" "src/hdc/CMakeFiles/reghd_hdc.dir/ops.cpp.o.d"
  "/root/repo/src/hdc/random_hv.cpp" "src/hdc/CMakeFiles/reghd_hdc.dir/random_hv.cpp.o" "gcc" "src/hdc/CMakeFiles/reghd_hdc.dir/random_hv.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-notel/src/util/CMakeFiles/reghd_util.dir/DependInfo.cmake"
  "/root/repo/build-notel/src/obs/CMakeFiles/reghd_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
