file(REMOVE_RECURSE
  "libreghd_hdc.a"
)
