# Empty dependencies file for reghd_hdc.
# This may be replaced when dependencies are built.
