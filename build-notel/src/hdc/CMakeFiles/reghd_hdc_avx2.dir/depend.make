# Empty dependencies file for reghd_hdc_avx2.
# This may be replaced when dependencies are built.
