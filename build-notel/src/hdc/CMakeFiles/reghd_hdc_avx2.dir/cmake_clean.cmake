file(REMOVE_RECURSE
  "CMakeFiles/reghd_hdc_avx2.dir/kernel_backend_avx2.cpp.o"
  "CMakeFiles/reghd_hdc_avx2.dir/kernel_backend_avx2.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reghd_hdc_avx2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
