file(REMOVE_RECURSE
  "CMakeFiles/reghd_obs.dir/export.cpp.o"
  "CMakeFiles/reghd_obs.dir/export.cpp.o.d"
  "CMakeFiles/reghd_obs.dir/telemetry.cpp.o"
  "CMakeFiles/reghd_obs.dir/telemetry.cpp.o.d"
  "libreghd_obs.a"
  "libreghd_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reghd_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
