file(REMOVE_RECURSE
  "libreghd_obs.a"
)
