# Empty dependencies file for reghd_obs.
# This may be replaced when dependencies are built.
