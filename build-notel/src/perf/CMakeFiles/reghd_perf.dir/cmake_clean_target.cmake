file(REMOVE_RECURSE
  "libreghd_perf.a"
)
