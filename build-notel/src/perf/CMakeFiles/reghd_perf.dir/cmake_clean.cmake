file(REMOVE_RECURSE
  "CMakeFiles/reghd_perf.dir/device_profile.cpp.o"
  "CMakeFiles/reghd_perf.dir/device_profile.cpp.o.d"
  "CMakeFiles/reghd_perf.dir/kernel_costs.cpp.o"
  "CMakeFiles/reghd_perf.dir/kernel_costs.cpp.o.d"
  "CMakeFiles/reghd_perf.dir/op_count.cpp.o"
  "CMakeFiles/reghd_perf.dir/op_count.cpp.o.d"
  "libreghd_perf.a"
  "libreghd_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reghd_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
