# Empty dependencies file for reghd_perf.
# This may be replaced when dependencies are built.
