file(REMOVE_RECURSE
  "CMakeFiles/reghd_sim.dir/accelerator.cpp.o"
  "CMakeFiles/reghd_sim.dir/accelerator.cpp.o.d"
  "libreghd_sim.a"
  "libreghd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reghd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
