file(REMOVE_RECURSE
  "libreghd_sim.a"
)
