
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/accelerator.cpp" "src/sim/CMakeFiles/reghd_sim.dir/accelerator.cpp.o" "gcc" "src/sim/CMakeFiles/reghd_sim.dir/accelerator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-notel/src/perf/CMakeFiles/reghd_perf.dir/DependInfo.cmake"
  "/root/repo/build-notel/src/util/CMakeFiles/reghd_util.dir/DependInfo.cmake"
  "/root/repo/build-notel/src/obs/CMakeFiles/reghd_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
