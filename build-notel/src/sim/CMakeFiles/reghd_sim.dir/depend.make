# Empty dependencies file for reghd_sim.
# This may be replaced when dependencies are built.
