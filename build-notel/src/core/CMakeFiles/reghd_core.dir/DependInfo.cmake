
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/checkpoint.cpp" "src/core/CMakeFiles/reghd_core.dir/checkpoint.cpp.o" "gcc" "src/core/CMakeFiles/reghd_core.dir/checkpoint.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/core/CMakeFiles/reghd_core.dir/config.cpp.o" "gcc" "src/core/CMakeFiles/reghd_core.dir/config.cpp.o.d"
  "/root/repo/src/core/encoded.cpp" "src/core/CMakeFiles/reghd_core.dir/encoded.cpp.o" "gcc" "src/core/CMakeFiles/reghd_core.dir/encoded.cpp.o.d"
  "/root/repo/src/core/hd_classifier.cpp" "src/core/CMakeFiles/reghd_core.dir/hd_classifier.cpp.o" "gcc" "src/core/CMakeFiles/reghd_core.dir/hd_classifier.cpp.o.d"
  "/root/repo/src/core/hd_clustering.cpp" "src/core/CMakeFiles/reghd_core.dir/hd_clustering.cpp.o" "gcc" "src/core/CMakeFiles/reghd_core.dir/hd_clustering.cpp.o.d"
  "/root/repo/src/core/kernels.cpp" "src/core/CMakeFiles/reghd_core.dir/kernels.cpp.o" "gcc" "src/core/CMakeFiles/reghd_core.dir/kernels.cpp.o.d"
  "/root/repo/src/core/model_io.cpp" "src/core/CMakeFiles/reghd_core.dir/model_io.cpp.o" "gcc" "src/core/CMakeFiles/reghd_core.dir/model_io.cpp.o.d"
  "/root/repo/src/core/multi_model.cpp" "src/core/CMakeFiles/reghd_core.dir/multi_model.cpp.o" "gcc" "src/core/CMakeFiles/reghd_core.dir/multi_model.cpp.o.d"
  "/root/repo/src/core/online.cpp" "src/core/CMakeFiles/reghd_core.dir/online.cpp.o" "gcc" "src/core/CMakeFiles/reghd_core.dir/online.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/reghd_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/reghd_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/single_model.cpp" "src/core/CMakeFiles/reghd_core.dir/single_model.cpp.o" "gcc" "src/core/CMakeFiles/reghd_core.dir/single_model.cpp.o.d"
  "/root/repo/src/core/training.cpp" "src/core/CMakeFiles/reghd_core.dir/training.cpp.o" "gcc" "src/core/CMakeFiles/reghd_core.dir/training.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-notel/src/hdc/CMakeFiles/reghd_hdc.dir/DependInfo.cmake"
  "/root/repo/build-notel/src/data/CMakeFiles/reghd_data.dir/DependInfo.cmake"
  "/root/repo/build-notel/src/util/CMakeFiles/reghd_util.dir/DependInfo.cmake"
  "/root/repo/build-notel/src/obs/CMakeFiles/reghd_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
