file(REMOVE_RECURSE
  "CMakeFiles/reghd_core.dir/checkpoint.cpp.o"
  "CMakeFiles/reghd_core.dir/checkpoint.cpp.o.d"
  "CMakeFiles/reghd_core.dir/config.cpp.o"
  "CMakeFiles/reghd_core.dir/config.cpp.o.d"
  "CMakeFiles/reghd_core.dir/encoded.cpp.o"
  "CMakeFiles/reghd_core.dir/encoded.cpp.o.d"
  "CMakeFiles/reghd_core.dir/hd_classifier.cpp.o"
  "CMakeFiles/reghd_core.dir/hd_classifier.cpp.o.d"
  "CMakeFiles/reghd_core.dir/hd_clustering.cpp.o"
  "CMakeFiles/reghd_core.dir/hd_clustering.cpp.o.d"
  "CMakeFiles/reghd_core.dir/kernels.cpp.o"
  "CMakeFiles/reghd_core.dir/kernels.cpp.o.d"
  "CMakeFiles/reghd_core.dir/model_io.cpp.o"
  "CMakeFiles/reghd_core.dir/model_io.cpp.o.d"
  "CMakeFiles/reghd_core.dir/multi_model.cpp.o"
  "CMakeFiles/reghd_core.dir/multi_model.cpp.o.d"
  "CMakeFiles/reghd_core.dir/online.cpp.o"
  "CMakeFiles/reghd_core.dir/online.cpp.o.d"
  "CMakeFiles/reghd_core.dir/pipeline.cpp.o"
  "CMakeFiles/reghd_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/reghd_core.dir/single_model.cpp.o"
  "CMakeFiles/reghd_core.dir/single_model.cpp.o.d"
  "CMakeFiles/reghd_core.dir/training.cpp.o"
  "CMakeFiles/reghd_core.dir/training.cpp.o.d"
  "libreghd_core.a"
  "libreghd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reghd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
