file(REMOVE_RECURSE
  "libreghd_core.a"
)
