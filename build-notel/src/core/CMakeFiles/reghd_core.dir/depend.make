# Empty dependencies file for reghd_core.
# This may be replaced when dependencies are built.
