// HD-based reinforcement learning (the paper's §6 future-work direction):
// RegHD as the value-function approximator for TD(0) policy evaluation on a
// windy gridworld.
//
// Regression is "the main building block to enable accurate reinforcement
// learning" (§1); this example closes that loop: state features are encoded
// into hyperspace and a multi-model RegHD learns V(s) online from bootstrap
// targets r + γ·V(s'), with all updates flowing through the same Eq. 7
// machinery as supervised training.
//
//   ./rl_value_estimation [--episodes 300] [--dim 1024]
#include <cmath>
#include <iostream>
#include <vector>

#include "core/reghd.hpp"
#include "hdc/encoding.hpp"
#include "util/args.hpp"
#include "util/random.hpp"
#include "util/table.hpp"

namespace {

using namespace reghd;

// A 6×6 gridworld: start bottom-left, goal top-right (+10), pits (−5), a
// rightward wind that sometimes pushes the agent. The evaluated policy walks
// greedily toward the goal with 20% random moves.
struct GridWorld {
  static constexpr int kSize = 6;
  int x = 0;
  int y = 0;

  void reset() {
    x = 0;
    y = 0;
  }

  [[nodiscard]] bool at_goal() const { return x == kSize - 1 && y == kSize - 1; }
  [[nodiscard]] bool at_pit() const { return (x == 2 && y == 2) || (x == 4 && y == 1); }

  /// Applies the policy's action; returns the reward.
  double step(util::Rng& rng) {
    int dx = 0;
    int dy = 0;
    if (rng.uniform() < 0.2) {
      (rng.uniform() < 0.5 ? dx : dy) = rng.uniform() < 0.5 ? 1 : -1;  // explore
    } else {
      if (x < kSize - 1 && (y == kSize - 1 || rng.uniform() < 0.5)) {
        dx = 1;
      } else {
        dy = 1;
      }
    }
    if (rng.uniform() < 0.15 && x < kSize - 1) {
      ++x;  // wind
    }
    x = std::clamp(x + dx, 0, kSize - 1);
    y = std::clamp(y + dy, 0, kSize - 1);
    if (at_goal()) {
      return 10.0;
    }
    if (at_pit()) {
      return -5.0;
    }
    return -0.1;  // step cost
  }

  /// State features: normalized position + distance-to-goal + pit proximity.
  [[nodiscard]] std::vector<double> features() const {
    const double fx = static_cast<double>(x) / (kSize - 1);
    const double fy = static_cast<double>(y) / (kSize - 1);
    const double goal_dist =
        std::hypot(static_cast<double>(kSize - 1 - x), static_cast<double>(kSize - 1 - y)) /
        (kSize - 1);
    const double pit_near =
        std::min(std::hypot(x - 2.0, y - 2.0), std::hypot(x - 4.0, y - 1.0)) / kSize;
    return {fx, fy, goal_dist, pit_near};
  }
};

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto episodes = static_cast<std::size_t>(args.get_int("episodes", 300));
  const auto dim = static_cast<std::size_t>(args.get_int("dim", 1024));

  // RegHD as V(s): multi-model so distinct regions of the state space get
  // their own value model.
  core::RegHDConfig cfg;
  cfg.dim = dim;
  cfg.models = 4;
  cfg.learning_rate = 0.1;
  cfg.seed = 7;
  core::MultiModelRegressor value_fn(cfg);

  hdc::EncoderConfig enc_cfg;
  enc_cfg.input_dim = 4;
  enc_cfg.dim = dim;
  enc_cfg.seed = 7;
  const auto encoder = hdc::make_encoder(enc_cfg);

  constexpr double kGamma = 0.95;
  util::Rng rng(7);
  GridWorld env;

  std::vector<double> returns;
  for (std::size_t ep = 0; ep < episodes; ++ep) {
    env.reset();
    double episode_return = 0.0;
    double discount = 1.0;
    for (int t = 0; t < 100; ++t) {
      const hdc::EncodedSample state = encoder->encode(env.features());
      const double reward = env.step(rng);
      episode_return += discount * reward;
      discount *= kGamma;
      const bool terminal = env.at_goal() || env.at_pit();
      // TD(0) bootstrap target: r + γ·V(s').
      const double next_value =
          terminal ? 0.0 : value_fn.predict(encoder->encode(env.features()));
      value_fn.train_step(state, reward + kGamma * next_value);
      if (terminal) {
        break;
      }
    }
    returns.push_back(episode_return);
  }

  // Report: learned V(s) across the grid vs the (noisy) Monte-Carlo returns.
  std::cout << "learned state values after " << episodes << " episodes\n"
            << "(rows top->bottom are y=5..0; goal at top-right, pits at (2,2),(4,1)):\n";
  for (int y = GridWorld::kSize - 1; y >= 0; --y) {
    std::cout << "  ";
    for (int x = 0; x < GridWorld::kSize; ++x) {
      GridWorld probe;
      probe.x = x;
      probe.y = y;
      const double v = value_fn.predict(encoder->encode(probe.features()));
      std::cout << util::Table::cell(v, 1) << '\t';
    }
    std::cout << '\n';
  }

  GridWorld start;
  const double v_start = value_fn.predict(encoder->encode(start.features()));
  double avg_late_return = 0.0;
  const std::size_t tail = std::min<std::size_t>(returns.size(), 100);
  for (std::size_t i = returns.size() - tail; i < returns.size(); ++i) {
    avg_late_return += returns[i];
  }
  avg_late_return /= static_cast<double>(tail);
  std::cout << "\nV(start) = " << util::Table::cell(v_start, 2)
            << " vs empirical discounted return (last " << tail
            << " episodes) = " << util::Table::cell(avg_late_return, 2) << '\n';

  const double error = std::abs(v_start - avg_late_return);
  std::cout << (error < 3.0 ? "TD(0) value estimate tracks the empirical return."
                            : "estimate diverges from empirical return")
            << '\n';
  return error < 3.0 ? 0 : 1;
}
