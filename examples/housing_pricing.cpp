// Housing-price regression: the Boston-housing-style workload from the
// paper's Table 1, end to end.
//
// Demonstrates: comparing RegHD against classical baselines through the
// uniform Regressor interface, inspecting per-cluster interpretability
// (which learned "market segment" explains a prediction), and persisting
// the trained model.
//
//   ./housing_pricing [--models 8] [--dim 4096]
#include <iostream>
#include <memory>
#include <vector>

#include "baselines/decision_tree.hpp"
#include "baselines/linear.hpp"
#include "core/reghd.hpp"
#include "data/synthetic.hpp"
#include "util/args.hpp"
#include "util/metrics.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace reghd;

  const util::Args args(argc, argv);
  const auto models = static_cast<std::size_t>(args.get_int("models", 8));
  const auto dim = static_cast<std::size_t>(args.get_int("dim", 4096));

  // The synthetic Boston-housing analog: 506 samples, 13 features, prices
  // in thousands of dollars (see data/synthetic.hpp for the substitution).
  data::Dataset housing = data::make_paper_dataset("boston", 2024);
  util::Rng rng(2024);
  const data::TrainTestSplit split = data::train_test_split(housing, 0.25, rng);

  // Train RegHD and two classical baselines through one interface.
  core::PipelineConfig cfg;
  cfg.reghd.models = models;
  cfg.reghd.dim = dim;
  std::vector<std::unique_ptr<model::Regressor>> learners;
  learners.push_back(std::make_unique<core::RegHDPipeline>(cfg));
  learners.push_back(std::make_unique<baselines::LinearRegression>());
  learners.push_back(std::make_unique<baselines::DecisionTree>());

  util::Table table({"model", "test MSE", "test RMSE ($1000s)"});
  for (auto& learner : learners) {
    learner->fit(split.train);
    const std::vector<double> pred = learner->predict_batch(split.test);
    const auto metrics = util::evaluate_regression(pred, split.test.targets());
    table.add_row({learner->name(), util::Table::cell(metrics.mse, 2),
                   util::Table::cell(metrics.rmse, 2)});
  }
  std::cout << table << '\n';

  // Interpretability: RegHD's prediction decomposes into cluster
  // confidences × per-cluster model outputs (paper §2.4, Eq. 6).
  const auto& reghd = static_cast<const core::RegHDPipeline&>(*learners.front());
  std::cout << "explaining three test predictions ('market segments' are the\n"
               "clusters RegHD discovered during training):\n";
  for (std::size_t i = 0; i < 3 && i < split.test.size(); ++i) {
    const core::PredictionDetail detail = reghd.predict_detail(split.test.row(i));
    std::cout << "  house " << i << ": predicted $" << util::Table::cell(detail.prediction, 1)
              << "k (actual $" << util::Table::cell(split.test.target(i), 1)
              << "k) — segment " << detail.best_cluster << " at "
              << util::Table::cell_percent(100.0 * detail.confidences[detail.best_cluster], 0)
              << " confidence\n";
  }

  // Persist the trained model for deployment.
  const std::string path = "/tmp/reghd_housing.bin";
  core::save_pipeline_file(path, reghd);
  const core::RegHDPipeline deployed = core::load_pipeline_file(path);
  std::cout << "\nmodel saved to " << path << " and reloaded; prediction match: "
            << (deployed.predict(split.test.row(0)) == reghd.predict(split.test.row(0))
                    ? "exact"
                    : "MISMATCH")
            << '\n';
  return 0;
}
