// Streaming IoT regression: the deployment scenario that motivates RegHD
// (paper §1/§3) — an embedded node learning online from a sensor stream
// under a tight energy budget and unreliable hardware.
//
// Demonstrates:
//  * single-pass *online* training with train_step() (no stored dataset);
//  * the fully-quantized configuration (binary cluster, binary query) that
//    an embedded deployment would run;
//  * robustness: predictions under injected bit flips in the query
//    hypervector, the paper's §3 hardware-noise argument.
//
//   ./iot_sensor_stream [--dim 2048] [--models 4] [--stream 3000]
#include <iostream>
#include <memory>

#include "core/reghd.hpp"
#include "data/scaler.hpp"
#include "data/synthetic.hpp"
#include "hdc/random_hv.hpp"
#include "util/args.hpp"
#include "util/statistics.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace reghd;

  const util::Args args(argc, argv);
  const auto dim = static_cast<std::size_t>(args.get_int("dim", 2048));
  const auto models = static_cast<std::size_t>(args.get_int("models", 4));
  const auto stream_len = static_cast<std::size_t>(args.get_int("stream", 3000));

  // The "sensor": an airfoil-self-noise-style stream — 5 physical channels,
  // one acoustic target (dB).
  data::Dataset stream = data::make_paper_dataset("airfoil", 77);
  data::StandardScaler feature_scaler;
  feature_scaler.fit(stream);
  feature_scaler.transform(stream);
  data::TargetScaler target_scaler;
  target_scaler.fit(stream);
  target_scaler.transform(stream);

  // Embedded configuration: quantized clusters + binary queries.
  core::RegHDConfig cfg;
  cfg.dim = dim;
  cfg.models = models;
  cfg.cluster_mode = core::ClusterMode::kQuantized;
  cfg.query_precision = core::QueryPrecision::kBinary;
  cfg.seed = 77;
  core::MultiModelRegressor node(cfg);

  hdc::EncoderConfig enc_cfg;
  enc_cfg.input_dim = stream.num_features();
  enc_cfg.dim = dim;
  enc_cfg.seed = 77;
  const auto encoder = hdc::make_encoder(enc_cfg);

  // Online loop: predict-then-train on each arriving reading (prequential
  // evaluation). The node never stores raw data.
  std::cout << "online prequential error over the stream (dB², original units):\n";
  util::RunningStats window;
  std::size_t seen = 0;
  for (std::size_t i = 0; i < stream.size() && seen < stream_len; ++i, ++seen) {
    const hdc::EncodedSample reading = encoder->encode(stream.row(i));
    const double before = node.train_step(reading, stream.target(i));
    const double err_db = (before - stream.target(i)) * target_scaler.stddev();
    window.add(err_db * err_db);
    if (seen > 0 && seen % 500 == 0) {
      std::cout << "  after " << seen << " readings: windowed MSE "
                << util::Table::cell(window.mean(), 2) << "\n";
      window = util::RunningStats{};
      node.requantize();  // refresh binary snapshots, as a batch boundary
    }
  }
  node.requantize();

  // Robustness under hardware faults: corrupt query bits and re-measure.
  std::cout << "\nrobustness to query bit flips (paper §3):\n";
  util::Rng noise_rng(99);
  for (const double flip : {0.0, 0.01, 0.05, 0.10}) {
    double acc = 0.0;
    const std::size_t eval_count = std::min<std::size_t>(500, stream.size());
    for (std::size_t i = 0; i < eval_count; ++i) {
      hdc::EncodedSample reading = encoder->encode(stream.row(i));
      if (flip > 0.0) {
        reading.binary = hdc::flip_noise(reading.binary, flip, noise_rng);
        reading.bipolar = reading.binary.unpack();
      }
      const double err_db = (node.predict(reading) - stream.target(i)) * target_scaler.stddev();
      acc += err_db * err_db;
    }
    std::cout << "  " << util::Table::cell_percent(100.0 * flip, 0)
              << " bits flipped -> MSE " << util::Table::cell(acc / static_cast<double>(eval_count), 2)
              << " dB²\n";
  }
  std::cout << "\ninformation is spread across all " << dim
            << " dimensions, so moderate bit-flip rates only dent the accuracy.\n";
  return 0;
}
