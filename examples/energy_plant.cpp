// Combined-cycle power plant output prediction (the paper's CCPP workload):
// choosing a deployment configuration by sweeping the accuracy/efficiency
// trade-offs the paper quantifies in Table 2 and Fig. 9.
//
// Demonstrates: dimensionality sweep with the hardware cost model, picking
// the smallest D whose quality loss is acceptable, then quantizing for the
// target device.
//
//   ./energy_plant [--max-loss 1.5]
#include <iostream>

#include "core/reghd.hpp"
#include "data/synthetic.hpp"
#include "perf/device_profile.hpp"
#include "perf/kernel_costs.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace reghd;

  const util::Args args(argc, argv);
  const double max_loss_percent = args.get_double("max-loss", 1.5);

  data::Dataset ccpp = data::make_paper_dataset("ccpp", 4242);
  util::Rng rng(4242);
  data::TrainTestSplit split = data::train_test_split(ccpp, 0.25, rng);
  // Keep the example snappy: 2500 training samples are plenty here.
  if (split.train.size() > 2500) {
    std::vector<std::size_t> head(2500);
    for (std::size_t i = 0; i < head.size(); ++i) {
      head[i] = i;
    }
    split.train = split.train.subset(head);
  }

  const perf::DeviceProfile& device = perf::embedded_cpu();

  // Sweep D; measure quality, estimate per-prediction latency/energy on the
  // embedded profile.
  std::cout << "dimensionality sweep on " << device.name << " (RegHD-8, quantized):\n";
  util::Table table({"D", "test MSE (MW²)", "quality loss", "infer latency", "infer energy"});
  double reference_mse = 0.0;
  std::size_t chosen_dim = 0;  // smallest D whose loss fits the budget
  double chosen_mse = 0.0;
  for (const std::size_t dim : {4096u, 2048u, 1024u, 512u}) {
    core::PipelineConfig cfg;
    cfg.reghd.dim = dim;
    cfg.reghd.models = 8;
    cfg.reghd.cluster_mode = core::ClusterMode::kQuantized;
    cfg.reghd.query_precision = core::QueryPrecision::kBinary;
    cfg.reghd.seed = 4242;
    core::RegHDPipeline pipeline(cfg);
    pipeline.fit(split.train);
    const double mse = pipeline.evaluate_mse(split.test);
    if (reference_mse == 0.0) {
      reference_mse = mse;
    }
    const double loss = 100.0 * (mse - reference_mse) / reference_mse;

    perf::RegHDKernelShape shape;
    shape.dim = dim;
    shape.models = 8;
    shape.features = split.train.num_features();
    shape.quantized_cluster = true;
    shape.query = perf::Precision::kBinary;
    shape.rff_encoder = false;
    const auto infer = perf::reghd_infer_sample(shape);
    table.add_row({std::to_string(dim), util::Table::cell(mse, 2),
                   util::Table::cell_percent(loss),
                   util::Table::cell(device.time_ms(infer) * 1e3, 2) + " us",
                   util::Table::cell(device.energy_uj(infer), 3) + " uJ"});

    // Dims iterate high→low, so the last one within budget is the smallest.
    if (loss <= max_loss_percent) {
      chosen_dim = dim;
      chosen_mse = mse;
    }
  }
  std::cout << table << '\n';
  std::cout << "smallest D within " << max_loss_percent << "% quality loss: D=" << chosen_dim
            << " (test MSE " << util::Table::cell(chosen_mse, 2)
            << " MW²) — Table 2's trade-off, applied.\n";
  return 0;
}
