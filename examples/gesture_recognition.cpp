// Gesture recognition with HD classification — the biosignal workload family
// the paper cites as HD computing's home turf (§5, refs. [19][20]: EMG-based
// hand-gesture recognition), built on the same encoder/hypervector substrate
// RegHD uses for regression.
//
// A synthetic 4-channel EMG-like sensor produces windows of activity; each
// of five "gestures" has a characteristic channel-activation pattern. The
// temporal encoder maps windows into hyperspace and HdClassifier learns one
// hypervector per gesture, then runs quantized (popcount) inference — the
// embedded deployment path.
//
//   ./gesture_recognition [--dim 2048] [--window 16]
#include <cmath>
#include <iostream>
#include <numbers>
#include <vector>

#include "core/hd_classifier.hpp"
#include "hdc/encoding.hpp"
#include "util/args.hpp"
#include "util/random.hpp"
#include "util/table.hpp"

namespace {

using namespace reghd;

constexpr std::size_t kChannels = 4;
constexpr std::size_t kGestures = 5;

/// One gesture window: per-channel amplitude envelopes × oscillation, with
/// sensor noise. The flattened window (channels × steps) is the feature row.
std::vector<double> make_window(std::size_t gesture, std::size_t steps, util::Rng& rng) {
  // Channel activation pattern per gesture (which muscles fire, how hard).
  static constexpr double kActivation[kGestures][kChannels] = {
      {1.0, 0.2, 0.1, 0.1},  // fist: channel 0 dominant
      {0.1, 1.0, 0.3, 0.1},  // point
      {0.2, 0.2, 1.0, 0.4},  // spread
      {0.6, 0.6, 0.1, 0.1},  // pinch: two channels together
      {0.1, 0.1, 0.5, 1.0},  // wave
  };
  std::vector<double> window;
  window.reserve(kChannels * steps);
  const double phase = rng.phase();
  for (std::size_t t = 0; t < steps; ++t) {
    const double envelope =
        std::sin(std::numbers::pi * static_cast<double>(t) / static_cast<double>(steps));
    for (std::size_t ch = 0; ch < kChannels; ++ch) {
      const double burst =
          kActivation[gesture][ch] * envelope *
          (1.0 + 0.3 * std::sin(8.0 * std::numbers::pi * t / steps + phase));
      window.push_back(burst + rng.normal(0.0, 0.4));
    }
  }
  return window;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto dim = static_cast<std::size_t>(args.get_int("dim", 2048));
  const auto steps = static_cast<std::size_t>(args.get_int("window", 16));

  // Generate labelled windows and encode them with the temporal encoder.
  hdc::EncoderConfig enc_cfg;
  enc_cfg.kind = hdc::EncoderKind::kTemporal;
  enc_cfg.input_dim = kChannels * steps;
  enc_cfg.dim = dim;
  enc_cfg.seed = 99;
  enc_cfg.levels = 32;
  enc_cfg.level_min = -0.5;
  enc_cfg.level_max = 1.5;
  const auto encoder = hdc::make_encoder(enc_cfg);

  util::Rng rng(99);
  core::EncodedDataset train;
  core::EncodedDataset val;
  core::EncodedDataset test;
  std::vector<std::size_t> train_labels;
  std::vector<std::size_t> val_labels;
  std::vector<std::size_t> test_labels;
  for (std::size_t i = 0; i < 1500; ++i) {
    const auto gesture = static_cast<std::size_t>(rng.uniform_index(kGestures));
    const hdc::EncodedSample sample = encoder->encode(make_window(gesture, steps, rng));
    if (i % 5 == 0) {
      test.add(sample, 0.0);
      test_labels.push_back(gesture);
    } else if (i % 5 == 1) {
      val.add(sample, 0.0);
      val_labels.push_back(gesture);
    } else {
      train.add(sample, 0.0);
      train_labels.push_back(gesture);
    }
  }

  // Full-precision training, quantized (popcount) inference.
  core::HdClassifierConfig cfg;
  cfg.dim = dim;
  cfg.classes = kGestures;
  core::HdClassifier classifier(cfg);
  const core::HdClassifierReport report =
      classifier.fit(train, train_labels, val, val_labels);
  std::cout << "trained HD gesture classifier: " << report.epochs_run
            << " epochs, best validation accuracy "
            << util::Table::cell_percent(100.0 * report.best_val_accuracy) << "\n";

  cfg.quantized = true;
  core::HdClassifier quantized(cfg);
  quantized.fit(train, train_labels, val, val_labels);

  std::cout << "test accuracy: full precision "
            << util::Table::cell_percent(100.0 * classifier.accuracy(test, test_labels))
            << ", quantized (popcount) "
            << util::Table::cell_percent(100.0 * quantized.accuracy(test, test_labels))
            << "\n\n";

  // Confusion row for one gesture, as a peek into the model.
  std::cout << "per-gesture test accuracy:\n";
  util::Table table({"gesture", "accuracy"});
  const char* names[kGestures] = {"fist", "point", "spread", "pinch", "wave"};
  for (std::size_t g = 0; g < kGestures; ++g) {
    std::size_t total = 0;
    std::size_t correct = 0;
    for (std::size_t i = 0; i < test.size(); ++i) {
      if (test_labels[i] == g) {
        ++total;
        correct += classifier.predict(test.sample(i)) == g ? 1 : 0;
      }
    }
    table.add_row({names[g], util::Table::cell_percent(
                                 100.0 * static_cast<double>(correct) /
                                 static_cast<double>(std::max<std::size_t>(total, 1)))});
  }
  std::cout << table;
  return 0;
}
