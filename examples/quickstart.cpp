// Quickstart: train RegHD on a synthetic regression task, evaluate it, and
// round-trip the trained model through serialization.
//
//   ./quickstart [--models 8] [--dim 4096] [--samples 2000] [--seed 42]
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "core/reghd.hpp"
#include "data/synthetic.hpp"
#include "util/args.hpp"
#include "util/metrics.hpp"

int main(int argc, char** argv) {
  using namespace reghd;

  const util::Args args(argc, argv);
  const auto models = static_cast<std::size_t>(args.get_int("models", 8));
  const auto dim = static_cast<std::size_t>(args.get_int("dim", 4096));
  const auto samples = static_cast<std::size_t>(args.get_int("samples", 2000));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

  // 1. A workload: the Friedman #1 benchmark (10 features, 5 informative,
  //    smooth nonlinear response).
  data::Dataset dataset = data::make_friedman1(samples, seed);
  util::Rng split_rng(seed);
  const data::TrainTestSplit split = data::train_test_split(dataset, 0.25, split_rng);

  // 2. Configure and train RegHD.
  core::PipelineConfig cfg;
  cfg.reghd.models = models;
  cfg.reghd.dim = dim;
  cfg.reghd.seed = seed;
  core::RegHDPipeline reghd(cfg);
  reghd.fit(split.train);

  std::cout << "trained " << reghd.name() << ": " << reghd.report().summary() << "\n";

  // 3. Evaluate on the held-out test set.
  const std::vector<double> predictions = reghd.predict_batch(split.test);
  const util::RegressionMetrics metrics =
      util::evaluate_regression(predictions, split.test.targets());
  std::cout << "test  " << metrics.to_string() << "\n";

  // Floor check: predicting the training mean.
  double mean = 0.0;
  for (const double y : split.train.targets()) {
    mean += y;
  }
  mean /= static_cast<double>(split.train.size());
  double mean_mse = 0.0;
  for (const double y : split.test.targets()) {
    mean_mse += (y - mean) * (y - mean);
  }
  mean_mse /= static_cast<double>(split.test.size());
  std::cout << "mean-predictor mse=" << mean_mse << "  (RegHD is "
            << mean_mse / metrics.mse << "x better)\n";

  // 4. Serialize and restore the trained model; predictions must match.
  std::stringstream buffer;
  core::save_pipeline(buffer, reghd);
  const core::RegHDPipeline restored = core::load_pipeline(buffer);
  const double y_orig = reghd.predict(split.test.row(0));
  const double y_restored = restored.predict(split.test.row(0));
  std::cout << "serialization round-trip: " << y_orig << " vs " << y_restored
            << (y_orig == y_restored ? "  [exact]" : "  [MISMATCH]") << "\n";

  // 5. Interpretability: which cluster explains the first test sample?
  const core::PredictionDetail detail = reghd.predict_detail(split.test.row(0));
  std::cout << "sample 0: cluster " << detail.best_cluster << " (confidence "
            << detail.confidences[detail.best_cluster] << "), prediction "
            << detail.prediction << ", actual " << split.test.target(0) << "\n";

  return metrics.mse < mean_mse ? EXIT_SUCCESS : EXIT_FAILURE;
}
