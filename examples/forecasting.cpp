// Time-series forecasting with RegHD — the intro's "prediction, forecasting"
// use case: autoregressive sliding-window regression on a synthetic sensor
// signal (two seasonal components + trend + noise), compared against a naive
// persistence forecaster and evaluated across horizons.
//
//   ./forecasting [--window 24] [--horizon 6] [--samples 4000]
#include <cmath>
#include <iostream>
#include <numbers>
#include <vector>

#include "core/reghd.hpp"
#include "util/args.hpp"
#include "util/metrics.hpp"
#include "util/random.hpp"
#include "util/table.hpp"

namespace {

using namespace reghd;

/// Synthetic sensor trace: daily + weekly seasonality, slow trend, noise.
std::vector<double> make_signal(std::size_t length, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> signal(length);
  for (std::size_t t = 0; t < length; ++t) {
    const double x = static_cast<double>(t);
    signal[t] = 10.0 + 0.002 * x + 3.0 * std::sin(2.0 * std::numbers::pi * x / 24.0) +
                1.5 * std::sin(2.0 * std::numbers::pi * x / 168.0) +
                rng.normal(0.0, 0.3);
  }
  return signal;
}

/// Sliding-window supervised view: features = the last `window` readings
/// relative to the window's final value, target = the *change* from that
/// value to the reading `horizon` steps ahead. Differencing keeps both
/// features and target inside the training distribution even when the
/// signal trends — kernel regressors cannot extrapolate an unbounded level.
data::Dataset windowed(const std::vector<double>& signal, std::size_t window,
                       std::size_t horizon) {
  data::Dataset out;
  out.set_name("forecast");
  std::vector<double> features(window);
  for (std::size_t t = window; t + horizon <= signal.size(); ++t) {
    const double anchor = signal[t - 1];
    for (std::size_t k = 0; k < window; ++k) {
      features[k] = signal[t - window + k] - anchor;
    }
    out.add_sample(features, signal[t + horizon - 1] - anchor);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto window = static_cast<std::size_t>(args.get_int("window", 24));
  const auto horizon_max = static_cast<std::size_t>(args.get_int("horizon", 6));
  const auto samples = static_cast<std::size_t>(args.get_int("samples", 4000));

  const std::vector<double> signal = make_signal(samples, 321);

  std::cout << "autoregressive RegHD forecaster (window " << window << "), vs the\n"
            << "persistence baseline (\"tomorrow equals today\"):\n\n";
  util::Table table({"horizon", "RegHD MSE", "persistence MSE", "improvement"});

  for (std::size_t horizon = 1; horizon <= horizon_max; horizon += (horizon == 1 ? 2 : 3)) {
    const data::Dataset dataset = windowed(signal, window, horizon);
    // Chronological split: train on the first 80%, test on the rest (no
    // shuffling — leakage across time would flatter the model).
    const std::size_t split_at = dataset.size() * 8 / 10;
    std::vector<std::size_t> train_idx(split_at);
    std::vector<std::size_t> test_idx(dataset.size() - split_at);
    for (std::size_t i = 0; i < split_at; ++i) {
      train_idx[i] = i;
    }
    for (std::size_t i = split_at; i < dataset.size(); ++i) {
      test_idx[i - split_at] = i;
    }
    const data::Dataset train = dataset.subset(train_idx);
    const data::Dataset test = dataset.subset(test_idx);

    core::PipelineConfig cfg;
    cfg.reghd.models = 4;
    cfg.reghd.dim = 2048;
    cfg.reghd.seed = 321;
    core::RegHDPipeline model(cfg);
    model.fit(train);
    const std::vector<double> predictions = model.predict_batch(test);
    const double model_mse = util::mse(predictions, test.targets());

    // Persistence in delta space: "no change from the last reading" = 0.
    const std::vector<double> persistence(test.size(), 0.0);
    const double naive_mse = util::mse(persistence, test.targets());

    table.add_row({std::to_string(horizon), util::Table::cell(model_mse, 3),
                   util::Table::cell(naive_mse, 3),
                   util::Table::cell_ratio(naive_mse / model_mse)});
  }
  std::cout << table
            << "\nRegHD exploits the seasonal structure the persistence forecaster\n"
               "cannot, and the gap widens with the horizon.\n";
  return 0;
}
