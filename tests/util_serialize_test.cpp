// Tests for the binary serialization primitives.
#include <gtest/gtest.h>

#include <sstream>

#include "util/serialize.hpp"

namespace reghd::util {
namespace {

TEST(SerializeTest, ScalarRoundTrips) {
  std::stringstream buf;
  write_scalar<double>(buf, 3.14159);
  write_scalar<std::uint64_t>(buf, 0xDEADBEEFULL);
  write_scalar<std::uint8_t>(buf, 7);
  write_scalar<std::int32_t>(buf, -42);
  EXPECT_DOUBLE_EQ(read_scalar<double>(buf), 3.14159);
  EXPECT_EQ(read_scalar<std::uint64_t>(buf), 0xDEADBEEFULL);
  EXPECT_EQ(read_scalar<std::uint8_t>(buf), 7);
  EXPECT_EQ(read_scalar<std::int32_t>(buf), -42);
}

TEST(SerializeTest, VectorRoundTrips) {
  std::stringstream buf;
  const std::vector<double> values = {1.5, -2.25, 0.0, 1e300};
  write_vector<double>(buf, values);
  EXPECT_EQ(read_vector<double>(buf), values);
}

TEST(SerializeTest, EmptyVectorRoundTrips) {
  std::stringstream buf;
  write_vector<double>(buf, std::vector<double>{});
  EXPECT_TRUE(read_vector<double>(buf).empty());
}

TEST(SerializeTest, StringRoundTrips) {
  std::stringstream buf;
  write_string(buf, "hyperdimensional");
  write_string(buf, "");
  EXPECT_EQ(read_string(buf), "hyperdimensional");
  EXPECT_EQ(read_string(buf), "");
}

TEST(SerializeTest, TruncatedStreamThrows) {
  std::stringstream buf;
  write_scalar<double>(buf, 1.0);
  std::stringstream truncated(buf.str().substr(0, 4));
  EXPECT_THROW((void)read_scalar<double>(truncated), std::runtime_error);
}

TEST(SerializeTest, TruncatedVectorPayloadThrows) {
  std::stringstream buf;
  write_vector<double>(buf, std::vector<double>{1.0, 2.0, 3.0});
  const std::string full = buf.str();
  std::stringstream truncated(full.substr(0, full.size() - 8));
  EXPECT_THROW((void)read_vector<double>(truncated), std::runtime_error);
}

TEST(SerializeTest, HeaderValidatesMagicAndVersion) {
  std::stringstream ok;
  write_header(ok, 0x52474844, 2);
  EXPECT_EQ(read_header(ok, 0x52474844, 3), 2u);

  std::stringstream bad_magic;
  write_header(bad_magic, 0x12345678, 1);
  EXPECT_THROW((void)read_header(bad_magic, 0x52474844, 3), std::runtime_error);

  std::stringstream future;
  write_header(future, 0x52474844, 9);
  EXPECT_THROW((void)read_header(future, 0x52474844, 3), std::runtime_error);

  std::stringstream zero;
  write_header(zero, 0x52474844, 0);
  EXPECT_THROW((void)read_header(zero, 0x52474844, 3), std::runtime_error);
}

TEST(SerializeTest, MixedPayloadSequence) {
  std::stringstream buf;
  write_header(buf, 0xABCD0001, 1);
  write_string(buf, "model");
  write_vector<double>(buf, std::vector<double>{0.5});
  write_scalar<std::uint8_t>(buf, 1);

  EXPECT_EQ(read_header(buf, 0xABCD0001, 1), 1u);
  EXPECT_EQ(read_string(buf), "model");
  EXPECT_EQ(read_vector<double>(buf), std::vector<double>{0.5});
  EXPECT_EQ(read_scalar<std::uint8_t>(buf), 1);
}

}  // namespace
}  // namespace reghd::util
