// Tests for the similarity-preserving encoders (paper §2.2), including the
// exact equivalence of the factored Eq. 1 fast path with the literal
// formula, and the similarity-preservation property across all encoders.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "hdc/encoding.hpp"
#include "hdc/ops.hpp"
#include "util/random.hpp"

namespace reghd::hdc {
namespace {

EncoderConfig base_config(EncoderKind kind, std::size_t input_dim = 6,
                          std::size_t dim = 1024) {
  EncoderConfig cfg;
  cfg.kind = kind;
  cfg.input_dim = input_dim;
  cfg.dim = dim;
  cfg.seed = 99;
  return cfg;
}

std::vector<double> random_features(std::size_t n, util::Rng& rng) {
  std::vector<double> f(n);
  for (double& v : f) {
    v = rng.normal();
  }
  return f;
}

TEST(EncoderKindTest, NameRoundTrip) {
  for (const auto kind : {EncoderKind::kNonlinearFeature, EncoderKind::kRffProjection,
                          EncoderKind::kIdLevel}) {
    EXPECT_EQ(encoder_kind_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW((void)encoder_kind_from_string("bogus"), std::invalid_argument);
}

TEST(NonlinearEncoderTest, FactoredFormMatchesLiteralEquationOne) {
  const NonlinearFeatureEncoder enc(base_config(EncoderKind::kNonlinearFeature, 5, 512));
  util::Rng rng(1);
  for (int trial = 0; trial < 5; ++trial) {
    const std::vector<double> f = random_features(5, rng);
    const RealHV fast = enc.encode_real(f);
    const RealHV reference = enc.encode_reference(f);
    ASSERT_EQ(fast.dim(), reference.dim());
    for (std::size_t j = 0; j < fast.dim(); ++j) {
      EXPECT_NEAR(fast[j], reference[j], 1e-9);
    }
  }
}

TEST(NonlinearEncoderTest, ZeroInputGivesDeterministicBias) {
  // f = 0 ⇒ every term cos(b_j)·sin(0) = 0 ⇒ H = 0.
  const NonlinearFeatureEncoder enc(base_config(EncoderKind::kNonlinearFeature, 4, 256));
  const RealHV h = enc.encode_real(std::vector<double>(4, 0.0));
  for (std::size_t j = 0; j < h.dim(); ++j) {
    EXPECT_NEAR(h[j], 0.0, 1e-12);
  }
}

class EncoderSuite : public ::testing::TestWithParam<EncoderKind> {
 protected:
  std::unique_ptr<Encoder> make(std::size_t input_dim = 6, std::size_t dim = 2048) const {
    return make_encoder(base_config(GetParam(), input_dim, dim));
  }
};

TEST_P(EncoderSuite, DeterministicForFixedConfig) {
  const auto enc1 = make();
  const auto enc2 = make();
  util::Rng rng(3);
  const std::vector<double> f = random_features(6, rng);
  EXPECT_EQ(enc1->encode_real(f).values().size(), 2048u);
  const RealHV a = enc1->encode_real(f);
  const RealHV b = enc2->encode_real(f);
  for (std::size_t j = 0; j < a.dim(); ++j) {
    EXPECT_DOUBLE_EQ(a[j], b[j]);
  }
}

TEST_P(EncoderSuite, DifferentSeedsProduceDifferentMaps) {
  auto cfg = base_config(GetParam());
  const auto enc1 = make_encoder(cfg);
  cfg.seed += 1;
  const auto enc2 = make_encoder(cfg);
  util::Rng rng(5);
  const std::vector<double> f = random_features(6, rng);
  EXPECT_NE(enc1->encode_real(f), enc2->encode_real(f));
}

TEST_P(EncoderSuite, RejectsWrongFeatureCount) {
  const auto enc = make();
  EXPECT_THROW((void)enc->encode_real(std::vector<double>(5, 0.0)), std::invalid_argument);
  EXPECT_THROW((void)enc->encode(std::vector<double>(7, 0.0)), std::invalid_argument);
}

TEST_P(EncoderSuite, EncodedSampleRepresentationsAreCoupled) {
  const auto enc = make();
  util::Rng rng(7);
  const EncodedSample s = enc->encode(random_features(6, rng));
  EXPECT_EQ(s.bipolar, s.real.sign());
  EXPECT_EQ(s.binary, s.bipolar.pack());
  double norm2 = 0.0;
  for (const double v : s.real.values()) {
    norm2 += v * v;
  }
  EXPECT_NEAR(s.real_norm2, norm2, 1e-9);
  EXPECT_NEAR(s.real_norm, std::sqrt(norm2), 1e-9);
}

// The commonsense principle of §2.2: closer inputs map to more similar
// hypervectors; far-apart inputs map toward orthogonality.
TEST_P(EncoderSuite, SimilarityDecreasesWithInputDistance) {
  const auto enc = make(6, 4096);
  util::Rng rng(11);
  double near_sum = 0.0;
  double mid_sum = 0.0;
  double far_sum = 0.0;
  constexpr int kTrials = 12;
  for (int t = 0; t < kTrials; ++t) {
    const std::vector<double> x = random_features(6, rng);
    auto perturb = [&](double eps) {
      std::vector<double> y = x;
      for (double& v : y) {
        v += eps * rng.normal();
      }
      return enc->encode(y);
    };
    const EncodedSample ex = enc->encode(x);
    near_sum += cosine(ex.real, perturb(0.05).real);
    mid_sum += cosine(ex.real, perturb(0.5).real);
    far_sum += cosine(ex.real, perturb(5.0).real);
  }
  EXPECT_GT(near_sum / kTrials, mid_sum / kTrials);
  EXPECT_GT(mid_sum / kTrials, far_sum / kTrials);
  EXPECT_GT(near_sum / kTrials, 0.8);  // tiny perturbation ⇒ nearly identical
}

TEST_P(EncoderSuite, BinaryRepresentationPreservesSimilarityToo) {
  const auto enc = make(6, 4096);
  util::Rng rng(13);
  const std::vector<double> x = random_features(6, rng);
  std::vector<double> near = x;
  near[0] += 0.05;
  std::vector<double> far = x;
  for (double& v : far) {
    v += 3.0 * rng.normal();
  }
  const EncodedSample ex = enc->encode(x);
  const double sim_near = hamming_similarity(ex.binary, enc->encode(near).binary);
  const double sim_far = hamming_similarity(ex.binary, enc->encode(far).binary);
  EXPECT_GT(sim_near, sim_far);
}

INSTANTIATE_TEST_SUITE_P(Kinds, EncoderSuite,
                         ::testing::Values(EncoderKind::kNonlinearFeature,
                                           EncoderKind::kRffProjection,
                                           EncoderKind::kIdLevel,
                                           EncoderKind::kTemporal),
                         [](const auto& info) { return to_string(info.param); });

TEST(IdLevelEncoderTest, LevelIndexQuantizesAndClamps) {
  auto cfg = base_config(EncoderKind::kIdLevel, 3, 256);
  cfg.levels = 11;
  cfg.level_min = -1.0;
  cfg.level_max = 1.0;
  const IdLevelEncoder enc(cfg);
  EXPECT_EQ(enc.level_index(-1.0), 0u);
  EXPECT_EQ(enc.level_index(0.0), 5u);
  EXPECT_EQ(enc.level_index(1.0), 10u);
  EXPECT_EQ(enc.level_index(-100.0), 0u);   // clamped
  EXPECT_EQ(enc.level_index(100.0), 10u);   // clamped
}

TEST(IdLevelEncoderTest, NearbyLevelsShareMoreBitsThanDistantOnes) {
  auto cfg = base_config(EncoderKind::kIdLevel, 1, 2048);
  cfg.levels = 32;
  cfg.level_min = -3.0;
  cfg.level_max = 3.0;
  const IdLevelEncoder enc(cfg);
  const EncodedSample lo = enc.encode(std::vector<double>{-2.9});
  const EncodedSample lo2 = enc.encode(std::vector<double>{-2.5});
  const EncodedSample hi = enc.encode(std::vector<double>{2.9});
  EXPECT_GT(cosine(lo.real, lo2.real), cosine(lo.real, hi.real));
}

TEST(EncoderConfigTest, FactoryValidatesConfiguration) {
  EncoderConfig cfg;  // input_dim = 0
  EXPECT_THROW((void)make_encoder(cfg), std::invalid_argument);
  cfg.input_dim = 4;
  cfg.dim = 0;
  EXPECT_THROW((void)make_encoder(cfg), std::invalid_argument);
  cfg = base_config(EncoderKind::kIdLevel);
  cfg.levels = 1;
  EXPECT_THROW((void)make_encoder(cfg), std::invalid_argument);
  cfg = base_config(EncoderKind::kIdLevel);
  cfg.level_min = 2.0;
  cfg.level_max = 1.0;
  EXPECT_THROW((void)make_encoder(cfg), std::invalid_argument);
  cfg = base_config(EncoderKind::kRffProjection);
  cfg.projection_stddev = -1.0;
  EXPECT_THROW((void)make_encoder(cfg), std::invalid_argument);
}

TEST(RffEncoderTest, ExplicitBandwidthOverridesAuto) {
  auto cfg = base_config(EncoderKind::kRffProjection, 4, 1024);
  cfg.projection_stddev = 0.0;  // auto
  const auto auto_enc = make_encoder(cfg);
  cfg.projection_stddev = 2.0;
  const auto sharp_enc = make_encoder(cfg);
  util::Rng rng(17);
  const std::vector<double> x = random_features(4, rng);
  std::vector<double> y = x;
  for (double& v : y) {
    v += 0.3 * rng.normal();
  }
  // The sharper kernel must separate the pair more.
  const double sim_auto =
      cosine(auto_enc->encode(x).real, auto_enc->encode(y).real);
  const double sim_sharp =
      cosine(sharp_enc->encode(x).real, sharp_enc->encode(y).real);
  EXPECT_GT(sim_auto, sim_sharp);
}

TEST(RffEncoderTest, StorageModeNameRoundTrip) {
  for (const auto storage :
       {ProjectionStorage::kResident, ProjectionStorage::kRematerialized}) {
    EXPECT_EQ(projection_storage_from_string(to_string(storage)), storage);
  }
  EXPECT_THROW((void)projection_storage_from_string("bogus"), std::invalid_argument);
}

TEST(RffEncoderTest, RematerializedEncodingIsBitIdenticalToResident) {
  // The tentpole contract: rematerialized storage regenerates the projection
  // rows from the seed inside the encode loop, yet every encoded component
  // must equal the resident-matrix path bit for bit — single-row and batch
  // paths, across odd/even feature counts and non-word-multiple dims.
  for (const std::size_t input_dim : {1u, 5u, 10u}) {
    for (const std::size_t dim : {65u, 1000u, 2048u}) {
      auto cfg = base_config(EncoderKind::kRffProjection, input_dim, dim);
      const auto resident = make_encoder(cfg);
      cfg.projection_storage = ProjectionStorage::kRematerialized;
      const auto remat = make_encoder(cfg);

      util::Rng rng(0xAB + dim);
      for (int trial = 0; trial < 3; ++trial) {
        const std::vector<double> f = random_features(input_dim, rng);
        const RealHV a = resident->encode_real(f);
        const RealHV b = remat->encode_real(f);
        ASSERT_EQ(a.dim(), b.dim());
        for (std::size_t j = 0; j < dim; ++j) {
          ASSERT_EQ(a[j], b[j]) << "dim " << dim << " j " << j;
        }
      }
    }
  }
}

TEST(RffEncoderTest, RematerializedBatchEncodeIsBitIdenticalAcrossThreads) {
  // The batch GEMM path tiles the hyperspace axis and regenerates each tile
  // per row block; neither the tiling nor the worker count may perturb a
  // single bit relative to the resident path.
  constexpr std::size_t kInput = 7;
  constexpr std::size_t kDim = 1000;
  constexpr std::size_t kRows = 33;
  auto cfg = base_config(EncoderKind::kRffProjection, kInput, kDim);
  const auto resident = make_encoder(cfg);
  cfg.projection_storage = ProjectionStorage::kRematerialized;
  const auto remat = make_encoder(cfg);

  util::Rng rng(0xBA7C);
  std::vector<double> rows(kRows * kInput);
  for (double& v : rows) {
    v = rng.normal();
  }

  constexpr std::size_t kWords = (kDim + 63) / 64;
  std::vector<double> want_real(kRows * kDim);
  std::vector<std::int8_t> want_bipolar(kRows * kDim);
  std::vector<std::uint64_t> want_bits(kRows * kWords);
  std::vector<double> want_norm(kRows);
  std::vector<double> want_norm2(kRows);
  resident->encode_batch_into(
      rows, kRows,
      {want_real.data(), want_bipolar.data(), want_bits.data(), want_norm.data(),
       want_norm2.data(), kDim, kWords},
      1);
  for (const std::size_t threads : {1u, 2u, 4u}) {
    // The arena contract: the real plane is zero-initialized (encoders
    // accumulate into it); the bit plane may hold garbage (fully overwritten).
    std::vector<double> got_real(kRows * kDim, 0.0);
    std::vector<std::int8_t> got_bipolar(kRows * kDim, 0);
    std::vector<std::uint64_t> got_bits(kRows * kWords, ~0ULL);
    std::vector<double> got_norm(kRows);
    std::vector<double> got_norm2(kRows);
    remat->encode_batch_into(
        rows, kRows,
        {got_real.data(), got_bipolar.data(), got_bits.data(), got_norm.data(),
         got_norm2.data(), kDim, kWords},
        threads);
    EXPECT_EQ(got_real, want_real) << "threads " << threads;
    EXPECT_EQ(got_bipolar, want_bipolar) << "threads " << threads;
    EXPECT_EQ(got_bits, want_bits) << "threads " << threads;
    EXPECT_EQ(got_norm, want_norm) << "threads " << threads;
    EXPECT_EQ(got_norm2, want_norm2) << "threads " << threads;
  }
}

}  // namespace
}  // namespace reghd::hdc
