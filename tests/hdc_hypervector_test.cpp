// Tests for the hypervector value types and representation conversions.
#include <gtest/gtest.h>

#include "hdc/hypervector.hpp"
#include "hdc/random_hv.hpp"
#include "util/random.hpp"

namespace reghd::hdc {
namespace {

TEST(RealHVTest, ZeroInitialized) {
  const RealHV v(16);
  EXPECT_EQ(v.dim(), 16u);
  for (std::size_t i = 0; i < v.dim(); ++i) {
    EXPECT_DOUBLE_EQ(v[i], 0.0);
  }
}

TEST(RealHVTest, AdoptsValuesAndClears) {
  RealHV v(std::vector<double>{1.0, -2.0, 3.0});
  EXPECT_EQ(v.dim(), 3u);
  EXPECT_DOUBLE_EQ(v[1], -2.0);
  v.clear();
  EXPECT_DOUBLE_EQ(v[1], 0.0);
  EXPECT_EQ(v.dim(), 3u);
}

TEST(RealHVTest, SignMapsZeroToPlusOne) {
  const RealHV v(std::vector<double>{1.5, -0.5, 0.0});
  const BipolarHV s = v.sign();
  EXPECT_EQ(s[0], 1);
  EXPECT_EQ(s[1], -1);
  EXPECT_EQ(s[2], 1);  // the documented tie rule
}

TEST(RealHVTest, SignPackedAgreesWithSignThenPack) {
  util::Rng rng(3);
  const RealHV v = random_gaussian(130, rng);  // odd size exercises padding
  EXPECT_EQ(v.sign_packed(), v.sign().pack());
}

TEST(BipolarHVTest, DefaultsToAllPlusOne) {
  const BipolarHV v(8);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(v[i], 1);
  }
}

TEST(BipolarHVTest, RejectsNonBipolarValues) {
  EXPECT_THROW(BipolarHV(std::vector<std::int8_t>{1, 0, -1}), std::invalid_argument);
  BipolarHV v(4);
  EXPECT_THROW(v.set(0, 2), std::invalid_argument);
  v.set(0, -1);
  EXPECT_EQ(v[0], -1);
}

TEST(BipolarHVTest, PackUnpackRoundTrip) {
  util::Rng rng(7);
  const BipolarHV original = random_bipolar(200, rng);
  EXPECT_EQ(original.pack().unpack(), original);
}

TEST(BipolarHVTest, ToRealWidensExactly) {
  util::Rng rng(11);
  const BipolarHV v = random_bipolar(64, rng);
  const RealHV r = v.to_real();
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_DOUBLE_EQ(r[i], static_cast<double>(v[i]));
  }
}

TEST(BinaryHVTest, BitManipulation) {
  BinaryHV v(100);
  EXPECT_EQ(v.dim(), 100u);
  EXPECT_EQ(v.word_count(), 2u);
  EXPECT_FALSE(v.bit(63));
  v.set_bit(63, true);
  v.set_bit(99, true);
  EXPECT_TRUE(v.bit(63));
  EXPECT_TRUE(v.bit(99));
  EXPECT_EQ(v.popcount(), 2u);
  v.set_bit(63, false);
  EXPECT_EQ(v.popcount(), 1u);
}

TEST(BinaryHVTest, BipolarViewOfBits) {
  BinaryHV v(4);
  v.set_bit(1, true);
  EXPECT_EQ(v.bipolar(0), -1);
  EXPECT_EQ(v.bipolar(1), +1);
}

TEST(BinaryHVTest, PaddingBitsStayZeroThroughConversions) {
  // 70 dims → 2 words with 58 padding bits; popcount must never see them.
  util::Rng rng(13);
  const BinaryHV v = random_binary(70, rng);
  const auto words = v.words();
  EXPECT_EQ(words[1] >> 6, 0ULL);  // bits 70.. of word 1 are zero
  const BinaryHV via_bipolar = v.unpack().pack();
  EXPECT_EQ(via_bipolar, v);
}

TEST(BinaryHVTest, ToRealIsPlusMinusOne) {
  util::Rng rng(17);
  const BinaryHV v = random_binary(96, rng);
  const RealHV r = v.to_real();
  for (std::size_t i = 0; i < 96; ++i) {
    EXPECT_DOUBLE_EQ(r[i], v.bit(i) ? 1.0 : -1.0);
  }
}

TEST(ConversionTest, AllThreeRepresentationsAgreeOnSigns) {
  util::Rng rng(19);
  const RealHV real = random_gaussian(257, rng);
  const BipolarHV bipolar = real.sign();
  const BinaryHV binary = real.sign_packed();
  for (std::size_t i = 0; i < real.dim(); ++i) {
    const int expected = real[i] >= 0.0 ? 1 : -1;
    EXPECT_EQ(bipolar[i], expected);
    EXPECT_EQ(binary.bipolar(i), expected);
  }
}

TEST(EqualityTest, ValueSemantics) {
  util::Rng rng(23);
  const BinaryHV a = random_binary(128, rng);
  BinaryHV b = a;
  EXPECT_EQ(a, b);
  b.set_bit(5, !b.bit(5));
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace reghd::hdc
