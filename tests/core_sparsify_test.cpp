// Tests for model sparsification, accumulator decay, and batch-level
// requantization — the extension features around the core trainer.
#include <gtest/gtest.h>

#include <memory>

#include "core/multi_model.hpp"
#include "data/scaler.hpp"
#include "data/synthetic.hpp"
#include "hdc/encoding.hpp"
#include "util/random.hpp"

namespace reghd::core {
namespace {

struct Trained {
  EncodedDataset train;
  EncodedDataset val;
  EncodedDataset test;
  std::unique_ptr<hdc::Encoder> encoder;
  std::unique_ptr<MultiModelRegressor> model;
};

Trained train_on_friedman(RegHDConfig cfg, std::uint64_t seed = 7) {
  data::Dataset dataset = data::make_friedman1(1200, seed);
  data::StandardScaler fs;
  fs.fit(dataset);
  fs.transform(dataset);
  data::TargetScaler ts;
  ts.fit(dataset);
  ts.transform(dataset);

  util::Rng rng(seed);
  const data::TrainTestSplit outer = data::train_test_split(dataset, 0.25, rng);
  const data::TrainTestSplit inner = data::train_test_split(outer.train, 0.2, rng);

  hdc::EncoderConfig enc;
  enc.input_dim = dataset.num_features();
  enc.dim = cfg.dim;
  enc.seed = seed;

  Trained t;
  t.encoder = hdc::make_encoder(enc);
  t.train = EncodedDataset::from(*t.encoder, inner.train);
  t.val = EncodedDataset::from(*t.encoder, inner.test);
  t.test = EncodedDataset::from(*t.encoder, outer.test);
  t.model = std::make_unique<MultiModelRegressor>(cfg);
  t.model->fit(t.train, t.val);
  return t;
}

RegHDConfig base_config() {
  RegHDConfig cfg;
  cfg.dim = 1024;
  cfg.models = 4;
  cfg.seed = 11;
  cfg.max_epochs = 30;
  return cfg;
}

TEST(SparsifyTest, AchievesRequestedSparsity) {
  Trained t = train_on_friedman(base_config());
  EXPECT_LT(t.model->model_sparsity(), 0.01);  // dense after training
  t.model->sparsify(0.5);
  EXPECT_NEAR(t.model->model_sparsity(), 0.5, 0.02);
  t.model->sparsify(0.9);
  EXPECT_NEAR(t.model->model_sparsity(), 0.9, 0.02);
}

TEST(SparsifyTest, ModerateSparsityBarelyHurtsQuality) {
  // The SparseHD observation: half the components carry almost all the
  // model. 50% pruning must cost well under 50% quality.
  Trained t = train_on_friedman(base_config());
  const double dense_mse = t.model->evaluate_mse(t.test);
  t.model->sparsify(0.5);
  const double sparse_mse = t.model->evaluate_mse(t.test);
  EXPECT_LT(sparse_mse, dense_mse * 1.35);
  EXPECT_LT(sparse_mse, 0.6);  // still far better than the mean predictor
}

TEST(SparsifyTest, ExtremeSparsityDegradesMonotonically) {
  Trained t = train_on_friedman(base_config());
  const double dense = t.model->evaluate_mse(t.test);
  t.model->sparsify(0.5);
  const double half = t.model->evaluate_mse(t.test);
  t.model->sparsify(0.97);
  const double extreme = t.model->evaluate_mse(t.test);
  EXPECT_LE(dense, half * 1.05);
  EXPECT_GT(extreme, half);
}

TEST(SparsifyTest, ZeroFractionIsNoOpAndBoundsChecked) {
  Trained t = train_on_friedman(base_config());
  const double before = t.model->evaluate_mse(t.test);
  t.model->sparsify(0.0);
  EXPECT_DOUBLE_EQ(t.model->evaluate_mse(t.test), before);
  EXPECT_THROW(t.model->sparsify(1.0), std::invalid_argument);
  EXPECT_THROW(t.model->sparsify(-0.1), std::invalid_argument);
}

TEST(SparsifyTest, RefreshesBinarySnapshots) {
  Trained t = train_on_friedman(base_config());
  t.model->sparsify(0.6);
  // γ must equal mean |M_j| of the *sparsified* accumulator.
  for (std::size_t i = 0; i < t.model->num_models(); ++i) {
    const auto& m = t.model->model(i);
    double abs_sum = 0.0;
    for (const double v : m.accumulator.values()) {
      abs_sum += std::abs(v);
    }
    EXPECT_NEAR(m.gamma, abs_sum / static_cast<double>(m.accumulator.dim()), 1e-12);
  }
}

TEST(SparsifyTest, TernaryQuantizationExcludesPrunedComponents) {
  // sparsify → requantize chain: a pruned component has |M_j| = 0, which is
  // below the ternary threshold 0.6·γ whenever the model is non-trivial, so
  // it must be masked out of the ternary dot — the masked-dot semantics the
  // packed bank scan reproduces.
  auto cfg = base_config();
  cfg.query_precision = QueryPrecision::kBinary;
  cfg.model_precision = ModelPrecision::kTernary;
  Trained t = train_on_friedman(cfg);
  t.model->sparsify(0.6);

  for (std::size_t i = 0; i < t.model->num_models(); ++i) {
    const auto& m = t.model->model(i);
    ASSERT_GT(m.gamma, 0.0) << "model " << i;
    for (std::size_t j = 0; j < m.accumulator.dim(); ++j) {
      if (m.accumulator[j] == 0.0) {
        EXPECT_FALSE(m.ternary_mask.bit(j)) << "model " << i << " component " << j;
      }
    }
  }

  // The rebuilt packed bank (sparsify requantizes and re-packs) must replay
  // the per-sample masked-dot predictions exactly.
  ASSERT_TRUE(t.model->packed_bank().valid);
  const std::vector<double> batched = t.model->predict_batch(t.test);
  for (std::size_t s = 0; s < t.test.size(); ++s) {
    EXPECT_EQ(batched[s], t.model->predict(t.test.sample(s))) << "sample " << s;
  }
}

TEST(SparsifyTest, AllMaskedEdgeCaseContributesExactlyZero) {
  // Degenerate quantization: a zero accumulator has γ = 0, so the ternary
  // threshold is 0, every component passes the ≥ comparison (full mask) and
  // γ_ternary = 0 — the model term must contribute exactly 0, through both
  // the per-sample path and the packed bank scan.
  auto cfg = base_config();
  cfg.query_precision = QueryPrecision::kBinary;
  cfg.model_precision = ModelPrecision::kTernary;
  Trained t = train_on_friedman(cfg);
  t.model->reset();  // zero model accumulators, fresh random clusters

  for (std::size_t i = 0; i < t.model->num_models(); ++i) {
    const auto& m = t.model->model(i);
    EXPECT_EQ(m.gamma, 0.0);
    EXPECT_EQ(m.gamma_ternary, 0.0);
  }
  const PackedTernaryBank& bank = t.model->packed_bank();
  ASSERT_TRUE(bank.valid);
  for (std::size_t i = 0; i < t.model->num_models(); ++i) {
    EXPECT_EQ(bank.scale[t.model->num_models() + i], 0.0) << "model row " << i;
  }

  const std::vector<double> batched = t.model->predict_batch(t.test);
  for (std::size_t s = 0; s < t.test.size(); ++s) {
    EXPECT_EQ(batched[s], 0.0) << "sample " << s;
    EXPECT_EQ(t.model->predict(t.test.sample(s)), 0.0) << "sample " << s;
  }
}

TEST(DecayTest, ScalesAllModelAccumulators) {
  Trained t = train_on_friedman(base_config());
  const double before = t.model->model(0).accumulator[0];
  t.model->decay_models(0.5);
  EXPECT_DOUBLE_EQ(t.model->model(0).accumulator[0], 0.5 * before);
  EXPECT_THROW(t.model->decay_models(0.0), std::invalid_argument);
  EXPECT_THROW(t.model->decay_models(1.5), std::invalid_argument);
}

TEST(DecayTest, FactorOneIsNoOp) {
  Trained t = train_on_friedman(base_config());
  const double before = t.model->model(0).accumulator[0];
  t.model->decay_models(1.0);
  EXPECT_DOUBLE_EQ(t.model->model(0).accumulator[0], before);
}

TEST(RequantizeIntervalTest, BatchLevelRefreshStillLearns) {
  auto cfg = base_config();
  cfg.cluster_mode = ClusterMode::kQuantized;
  cfg.model_precision = ModelPrecision::kBinary;
  cfg.requantize_interval = 32;  // the paper's "or a batch" option
  Trained batched = train_on_friedman(cfg);

  cfg.requantize_interval = 0;  // per-epoch
  Trained epoch_level = train_on_friedman(cfg);

  const double batched_mse = batched.model->evaluate_mse(batched.test);
  const double epoch_mse = epoch_level.model->evaluate_mse(epoch_level.test);
  EXPECT_LT(batched_mse, 1.0);
  // Fresher snapshots can only help (or tie) the binary prediction path.
  EXPECT_LT(batched_mse, epoch_mse * 1.2);
}

}  // namespace
}  // namespace reghd::core
