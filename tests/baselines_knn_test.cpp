// Tests for the kNN regression baseline.
#include <gtest/gtest.h>

#include "baselines/knn.hpp"
#include "data/synthetic.hpp"
#include "util/metrics.hpp"
#include "util/random.hpp"

namespace reghd::baselines {
namespace {

TEST(KnnTest, OneNearestNeighbourMemorizesTrainingSet) {
  data::Dataset d;
  util::Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const double f[] = {rng.normal(), rng.normal()};
    d.add_sample(f, rng.normal(0.0, 5.0));
  }
  KnnConfig cfg;
  cfg.k = 1;
  KnnRegressor knn(cfg);
  knn.fit(d);
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_NEAR(knn.predict(d.row(i)), d.target(i), 1e-9);
  }
}

TEST(KnnTest, LearnsSmoothFunction) {
  const data::Dataset d = data::make_sine_task(1000, 3, 0.02);
  util::Rng rng(3);
  const data::TrainTestSplit split = data::train_test_split(d, 0.25, rng);
  KnnRegressor knn;
  knn.fit(split.train);
  const std::vector<double> pred = knn.predict_batch(split.test);
  EXPECT_LT(util::mse(pred, split.test.targets()), 0.05);  // variance ≈ 0.9
}

TEST(KnnTest, LargerKSmoothsNoise) {
  // On noisy data with a constant mean, k=25 averages noise much better
  // than k=1.
  util::Rng rng(5);
  data::Dataset train;
  data::Dataset test;
  for (int i = 0; i < 1200; ++i) {
    const double f[] = {rng.uniform(), rng.uniform()};
    (i < 1000 ? train : test).add_sample(f, 3.0 + rng.normal(0.0, 1.0));
  }
  KnnConfig k1;
  k1.k = 1;
  KnnConfig k25;
  k25.k = 25;
  KnnRegressor sharp(k1);
  KnnRegressor smooth(k25);
  sharp.fit(train);
  smooth.fit(train);
  const double mse_sharp = util::mse(sharp.predict_batch(test), test.targets());
  const double mse_smooth = util::mse(smooth.predict_batch(test), test.targets());
  // Theory: k=1 doubles the noise variance (≈2.0), k=25 approaches it
  // (≈1.04 for uniform weights; distance weighting is slightly above).
  EXPECT_LT(mse_smooth, 0.65 * mse_sharp);
}

TEST(KnnTest, DistanceWeightingFavoursCloserNeighbours) {
  data::Dataset d;
  // Two training points; the query sits near the first.
  const double a[] = {0.0};
  const double b[] = {10.0};
  d.add_sample(a, 1.0);
  d.add_sample(b, 9.0);
  KnnConfig weighted_cfg;
  weighted_cfg.k = 2;
  weighted_cfg.distance_weighted = true;
  KnnConfig uniform_cfg;
  uniform_cfg.k = 2;
  uniform_cfg.distance_weighted = false;
  KnnRegressor weighted(weighted_cfg);
  KnnRegressor uniform(uniform_cfg);
  weighted.fit(d);
  uniform.fit(d);
  const double q[] = {1.0};
  EXPECT_DOUBLE_EQ(uniform.predict(q), 5.0);
  EXPECT_LT(weighted.predict(q), 4.0);  // pulled toward the near neighbour
}

TEST(KnnTest, KLargerThanTrainingSetClamps) {
  data::Dataset d;
  const double f[] = {0.0};
  d.add_sample(f, 2.0);
  d.add_sample(f, 4.0);
  KnnConfig cfg;
  cfg.k = 100;
  cfg.distance_weighted = false;
  KnnRegressor knn(cfg);
  knn.fit(d);
  EXPECT_DOUBLE_EQ(knn.predict(f), 3.0);
}

TEST(KnnTest, ErrorsOnMisuse) {
  KnnConfig cfg;
  cfg.k = 0;
  EXPECT_THROW(KnnRegressor{cfg}, std::invalid_argument);
  KnnRegressor knn;
  EXPECT_THROW((void)knn.predict(std::vector<double>{1.0}), std::invalid_argument);
  data::Dataset empty;
  EXPECT_THROW(knn.fit(empty), std::invalid_argument);
}

TEST(KnnTest, NameAndSize) {
  KnnRegressor knn;
  EXPECT_EQ(knn.name(), "kNN");
  const data::Dataset d = data::make_friedman1(100, 7);
  knn.fit(d);
  EXPECT_EQ(knn.training_size(), 100u);
}

}  // namespace
}  // namespace reghd::baselines
