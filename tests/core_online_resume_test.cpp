// Online-resume determinism: a stream checkpointed at step N and resumed
// for M more updates must be indistinguishable — bit for bit — from one
// that ran N+M updates without interruption.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>

#include "core/checkpoint.hpp"
#include "data/synthetic.hpp"

namespace reghd::core {
namespace {

OnlineConfig config(ClusterMode mode) {
  OnlineConfig cfg;
  cfg.reghd.dim = 256;
  cfg.reghd.models = 4;
  cfg.reghd.cluster_mode = mode;
  cfg.requantize_every = 80;  // deliberately off-cadence with the split points
  cfg.decay = 0.9995;
  return cfg;
}

std::string serialize(const OnlineRegHD& learner) {
  std::ostringstream out(std::ios::binary);
  save_online_checkpoint(out, learner);
  return out.str();
}

void expect_resume_identical(const OnlineConfig& cfg, std::size_t n, std::size_t m) {
  const data::Dataset d = data::make_friedman1(n + m, 31);

  // Uninterrupted reference.
  OnlineRegHD reference(cfg, d.num_features());
  for (std::size_t i = 0; i < n + m; ++i) {
    reference.update(d.row(i), d.target(i));
  }

  // Checkpoint at N, resume, replay the remaining M.
  OnlineRegHD first(cfg, d.num_features());
  for (std::size_t i = 0; i < n; ++i) {
    first.update(d.row(i), d.target(i));
  }
  std::istringstream in(serialize(first), std::ios::binary);
  OnlineRegHD resumed = load_online_checkpoint(in);
  ASSERT_EQ(resumed.samples_seen(), n);
  for (std::size_t i = n; i < n + m; ++i) {
    resumed.update(d.row(i), d.target(i));
  }

  // Full-state equality, checked through the serializer (covers
  // accumulators, snapshots, gammas, running statistics, counters).
  EXPECT_EQ(serialize(resumed), serialize(reference));

  // And the user-visible contract: identical predictions.
  const data::Dataset queries = data::make_friedman1(32, 77);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(resumed.predict(queries.row(i)), reference.predict(queries.row(i)))
        << "query " << i;
  }

  // Running statistics restored exactly (raw Welford state, not derived
  // quantities).
  EXPECT_EQ(resumed.target_stats().count(), reference.target_stats().count());
  EXPECT_EQ(resumed.target_stats().mean(), reference.target_stats().mean());
  EXPECT_EQ(resumed.target_stats().m2(), reference.target_stats().m2());
  for (std::size_t f = 0; f < d.num_features(); ++f) {
    EXPECT_EQ(resumed.feature_stats()[f].mean(), reference.feature_stats()[f].mean());
    EXPECT_EQ(resumed.feature_stats()[f].m2(), reference.feature_stats()[f].m2());
  }
}

TEST(OnlineResumeTest, QuantizedMidRequantizeInterval) {
  // N = 130 leaves since_requantize = 50 — stale snapshots must survive the
  // round trip for the resumed requantize at step 160 to match.
  expect_resume_identical(config(ClusterMode::kQuantized), 130, 170);
}

TEST(OnlineResumeTest, QuantizedAtRequantizeBoundary) {
  expect_resume_identical(config(ClusterMode::kQuantized), 160, 140);
}

TEST(OnlineResumeTest, FullPrecision) {
  expect_resume_identical(config(ClusterMode::kFullPrecision), 97, 103);
}

TEST(OnlineResumeTest, EarlyCheckpointDuringWarmup) {
  expect_resume_identical(config(ClusterMode::kQuantized), 5, 95);
}

TEST(OnlineResumeTest, TernaryModelPrecision) {
  OnlineConfig cfg = config(ClusterMode::kQuantized);
  cfg.reghd.model_precision = ModelPrecision::kTernary;
  cfg.reghd.query_precision = QueryPrecision::kBinary;
  expect_resume_identical(cfg, 111, 89);
}

TEST(OnlineResumeTest, IdenticalUnderMultipleThreads) {
  // Thread count is a pure runtime knob; resume determinism must hold with
  // a parallel kernel pool active.
#if defined(_WIN32)
  GTEST_SKIP() << "setenv not available";
#else
  ASSERT_EQ(setenv("REGHD_THREADS", "4", 1), 0);
  OnlineConfig cfg = config(ClusterMode::kQuantized);
  cfg.reghd.threads = 0;  // defer to REGHD_THREADS
  expect_resume_identical(cfg, 123, 77);
  unsetenv("REGHD_THREADS");
#endif
}

TEST(OnlineResumeTest, DecayStateSurvivesResume) {
  OnlineConfig cfg = config(ClusterMode::kQuantized);
  cfg.decay = 0.99;  // aggressive forgetting amplifies any drift
  expect_resume_identical(cfg, 64, 136);
}

}  // namespace
}  // namespace reghd::core
