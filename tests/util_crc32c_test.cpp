// CRC32C (Castagnoli) — the integrity primitive under the v2 model format.
#include <gtest/gtest.h>

#include <string>

#include "util/crc32c.hpp"
#include "util/random.hpp"

namespace reghd::util {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 / SSE4.2 reference value.
  EXPECT_EQ(crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(crc32c(""), 0x00000000u);
  EXPECT_EQ(crc32c(std::string(32, '\0')), 0x8A9136AAu);
}

TEST(Crc32cTest, IncrementalMatchesOneShot) {
  util::Rng rng(11);
  std::string data(1000, '\0');
  for (char& c : data) {
    c = static_cast<char>(rng.uniform_index(256));
  }
  for (const std::size_t split : {std::size_t{0}, std::size_t{1}, std::size_t{500},
                                  std::size_t{999}, data.size()}) {
    Crc32c acc;
    acc.update(std::string_view(data).substr(0, split));
    acc.update(std::string_view(data).substr(split));
    EXPECT_EQ(acc.value(), crc32c(data)) << "split at " << split;
  }
}

TEST(Crc32cTest, EverySingleBitFlipChangesTheChecksum) {
  const std::string data = "the checkpoint integrity primitive";
  const std::uint32_t clean = crc32c(data);
  for (std::size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string damaged = data;
      damaged[byte] = static_cast<char>(damaged[byte] ^ (1 << bit));
      EXPECT_NE(crc32c(damaged), clean) << "flip at byte " << byte << " bit " << bit;
    }
  }
}

TEST(Crc32cTest, ResetStartsOver) {
  Crc32c acc;
  acc.update("garbage");
  acc.reset();
  acc.update("123456789");
  EXPECT_EQ(acc.value(), 0xE3069283u);
}

}  // namespace
}  // namespace reghd::util
