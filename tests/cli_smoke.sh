#!/bin/sh
# End-to-end smoke test of the `reghd` CLI: synthesize a dataset, train,
# inspect, evaluate, and predict, exercising the real binary the way a user
# would. Invoked by CTest with the binary path as $1.
set -eu

REGHD="$1"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

CSV="$WORKDIR/data.csv"
MODEL="$WORKDIR/model.bin"

# synth → train → info → eval → predict
"$REGHD" synth --dataset diabetes --out "$CSV" --seed 3
[ -s "$CSV" ] || { echo "FAIL: synth produced no CSV"; exit 1; }

"$REGHD" train --csv "$CSV" --out "$MODEL" --models 4 --dim 1024 --quantized \
  | grep -q "trained RegHD-4-qc" || { echo "FAIL: train banner missing"; exit 1; }
[ -s "$MODEL" ] || { echo "FAIL: no model file written"; exit 1; }

"$REGHD" info --model "$MODEL" | grep -q "quantized" \
  || { echo "FAIL: info does not show cluster mode"; exit 1; }

"$REGHD" eval --csv "$CSV" --model "$MODEL" | grep -q "mse=" \
  || { echo "FAIL: eval printed no metrics"; exit 1; }

LINES="$("$REGHD" predict --csv "$CSV" --model "$MODEL" | wc -l)"
[ "$LINES" -eq 442 ] || { echo "FAIL: expected 442 predictions, got $LINES"; exit 1; }

# serve: replay the CSV through the serving runtime — predictions flow
# through the shard workers, every other row trains, snapshots publish.
SERVE_OUT="$WORKDIR/serve.out"
"$REGHD" serve --csv "$CSV" --shards 2 --dim 512 --models 4 --train-every 2 \
  --publish-interval-ms 10 --projection-storage rematerialized > "$SERVE_OUT" \
  || { echo "FAIL: serve exited nonzero"; exit 1; }
grep -q "served 442 rows across 2 shard(s)" "$SERVE_OUT" \
  || { echo "FAIL: serve banner missing"; cat "$SERVE_OUT"; exit 1; }
grep -q "221 submitted, 221 applied" "$SERVE_OUT" \
  || { echo "FAIL: serve did not apply every training row"; cat "$SERVE_OUT"; exit 1; }

# Error paths: bad command exits 1, missing file exits 2.
if "$REGHD" bogus >/dev/null 2>&1; then
  echo "FAIL: bogus command did not fail"; exit 1
fi
if "$REGHD" eval --csv /nonexistent.csv --model "$MODEL" >/dev/null 2>&1; then
  echo "FAIL: missing CSV did not fail"; exit 1
fi

echo "cli smoke OK"
