// Fault-injection shim: each mode damages the stream exactly as specified,
// deterministically, and atomic_write_file translates the damage into the
// right observable outcome (typed failure vs. silently-wrong file).
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>

#include "util/atomic_file.hpp"
#include "util/fault_injection.hpp"

namespace reghd::util {
namespace {

namespace fs = std::filesystem;

const std::string kPayload = "0123456789abcdefghijklmnopqrstuvwxyz";

TEST(FaultInjectionTest, NoneIsTransparent) {
  const FaultResult r = apply_fault(kPayload, {});
  EXPECT_EQ(r.bytes, kPayload);
  EXPECT_FALSE(r.write_failed);
}

TEST(FaultInjectionTest, FailAtReportsFailureAndStopsWriting) {
  const FaultResult r = apply_fault(kPayload, {FaultMode::kFailAt, 10, 1});
  EXPECT_TRUE(r.write_failed);
  EXPECT_EQ(r.bytes, kPayload.substr(0, 10));
}

TEST(FaultInjectionTest, TruncateAtClaimsSuccess) {
  const FaultResult r = apply_fault(kPayload, {FaultMode::kTruncateAt, 10, 1});
  EXPECT_FALSE(r.write_failed);  // the writer never learns
  EXPECT_EQ(r.bytes, kPayload.substr(0, 10));
}

TEST(FaultInjectionTest, BitFlipFlipsExactlyOneSeededBit) {
  const FaultResult r = apply_fault(kPayload, {FaultMode::kBitFlipAt, 5, 3});
  EXPECT_FALSE(r.write_failed);
  ASSERT_EQ(r.bytes.size(), kPayload.size());
  for (std::size_t i = 0; i < kPayload.size(); ++i) {
    if (i == 5) {
      EXPECT_EQ(static_cast<unsigned char>(r.bytes[i] ^ kPayload[i]), 1u << (3 % 8));
    } else {
      EXPECT_EQ(r.bytes[i], kPayload[i]) << "byte " << i;
    }
  }
}

TEST(FaultInjectionTest, ShortWriteLosesTail) {
  const FaultResult r = apply_fault(kPayload, {FaultMode::kShortWrite, 8, 1});
  EXPECT_FALSE(r.write_failed);
  EXPECT_LT(r.bytes.size(), kPayload.size());
  EXPECT_GE(r.bytes.size(), 8u);
  EXPECT_EQ(r.bytes, kPayload.substr(0, r.bytes.size()));  // a prefix, never garbage
}

TEST(FaultInjectionTest, Deterministic) {
  const FaultPlan plan{FaultMode::kBitFlipAt, 17, 42};
  EXPECT_EQ(apply_fault(kPayload, plan).bytes, apply_fault(kPayload, plan).bytes);
}

TEST(FaultInjectionTest, StreambufTracksFiring) {
  std::stringbuf sink;
  FaultInjectingStreambuf shim(&sink, {FaultMode::kTruncateAt, 4, 1});
  std::ostream out(&shim);
  out << "ab";
  EXPECT_FALSE(shim.fault_fired());
  out << "cdef";
  out.flush();
  EXPECT_TRUE(shim.fault_fired());
  EXPECT_EQ(shim.bytes_seen(), 6u);
  EXPECT_EQ(sink.str(), "abcd");
}

TEST(FaultInjectionTest, AtomicWriteDetectedFailureKeepsOldFile) {
  const fs::path dir = fs::temp_directory_path() / "reghd-fault-test";
  fs::create_directories(dir);
  const std::string path = (dir / "model.bin").string();
  atomic_write_file(path, "old contents");

  AtomicWriteOptions options;
  options.fault = {FaultMode::kFailAt, 3, 1};
  EXPECT_THROW(atomic_write_file(path, "new contents", options), IoError);
  EXPECT_EQ(read_file_bytes(path), "old contents");  // rename never happened
  fs::remove_all(dir);
}

TEST(FaultInjectionTest, AtomicWriteSilentDamageLandsInFile) {
  const fs::path dir = fs::temp_directory_path() / "reghd-fault-test2";
  fs::create_directories(dir);
  const std::string path = (dir / "model.bin").string();

  AtomicWriteOptions options;
  options.fault = {FaultMode::kTruncateAt, 4, 1};
  atomic_write_file(path, "full payload", options);  // writer believes success
  EXPECT_EQ(read_file_bytes(path), "full");
  fs::remove_all(dir);
}

}  // namespace
}  // namespace reghd::util
