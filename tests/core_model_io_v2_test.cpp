// v2 container semantics at the model_io level: typed FormatError per
// byte-position class, wrong-kind detection, and the v1 hostile-length
// regression (a rewritten length prefix must never drive a giant
// allocation).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/checkpoint.hpp"
#include "core/model_io.hpp"
#include "core/online.hpp"
#include "core/pipeline.hpp"
#include "data/synthetic.hpp"
#include "util/framing.hpp"

namespace reghd::core {
namespace {

using util::FormatError;
using util::FormatErrorKind;

const RegHDPipeline& fitted_pipeline() {
  static RegHDPipeline* pipeline = [] {
    PipelineConfig cfg;
    cfg.reghd.dim = 256;
    cfg.reghd.models = 2;
    cfg.reghd.max_epochs = 3;
    cfg.reghd.threads = 1;
    auto* p = new RegHDPipeline(cfg);
    p->fit(data::make_friedman1(120, 5));
    return p;
  }();
  return *pipeline;
}

std::string v2_bytes() {
  std::ostringstream out(std::ios::binary);
  save_pipeline(out, fitted_pipeline());
  return out.str();
}

FormatErrorKind load_kind(const std::string& bytes) {
  std::istringstream in(bytes, std::ios::binary);
  try {
    (void)load_pipeline(in);
  } catch (const FormatError& e) {
    return e.kind();
  }
  ADD_FAILURE() << "corrupted file loaded without a FormatError";
  return FormatErrorKind::kIo;
}

std::string flip(std::string bytes, std::size_t pos, unsigned char mask = 0x5A) {
  bytes.at(pos) = static_cast<char>(bytes[pos] ^ mask);
  return bytes;
}

// --- typed error per byte-position class ---------------------------------

TEST(ModelIoV2Test, MagicCorruptionIsBadMagic) {
  EXPECT_EQ(load_kind(flip(v2_bytes(), 0)), FormatErrorKind::kBadMagic);
  EXPECT_EQ(load_kind(flip(v2_bytes(), 3)), FormatErrorKind::kBadMagic);
}

TEST(ModelIoV2Test, VersionCorruptionIsBadVersion) {
  EXPECT_EQ(load_kind(flip(v2_bytes(), 4)), FormatErrorKind::kBadVersion);
  EXPECT_EQ(load_kind(flip(v2_bytes(), 7)), FormatErrorKind::kBadVersion);
}

TEST(ModelIoV2Test, KindCorruptionIsDetected) {
  // The kind FourCC sits right after the header; it is covered by the file
  // CRC, so either the checksum or the kind check must fire — never a load.
  const FormatErrorKind kind = load_kind(flip(v2_bytes(), 8));
  EXPECT_TRUE(kind == FormatErrorKind::kChecksumMismatch || kind == FormatErrorKind::kBadKind)
      << util::to_string(kind);
}

TEST(ModelIoV2Test, SectionLengthCorruptionIsDetected) {
  // First section header: [tag @12][len @16]. A high-byte rewrite makes the
  // length absurd (bounded, typed), a low-byte rewrite shifts the parse and
  // is caught by checksums.
  const FormatErrorKind high = load_kind(flip(v2_bytes(), 16 + 7, 0x10));
  EXPECT_TRUE(high == FormatErrorKind::kBadSectionLength ||
              high == FormatErrorKind::kTruncated)
      << util::to_string(high);
  const FormatErrorKind low = load_kind(flip(v2_bytes(), 16, 0x01));
  EXPECT_TRUE(low != FormatErrorKind::kBadMagic) << util::to_string(low);
}

TEST(ModelIoV2Test, PayloadCorruptionIsChecksumMismatch) {
  const std::string bytes = v2_bytes();
  EXPECT_EQ(load_kind(flip(bytes, 30)), FormatErrorKind::kChecksumMismatch);
  EXPECT_EQ(load_kind(flip(bytes, bytes.size() / 2)), FormatErrorKind::kChecksumMismatch);
}

TEST(ModelIoV2Test, TrailerCorruptionIsDetected) {
  const std::string bytes = v2_bytes();
  for (std::size_t back = 1; back <= 20; ++back) {
    const FormatErrorKind kind = load_kind(flip(bytes, bytes.size() - back));
    EXPECT_TRUE(kind == FormatErrorKind::kChecksumMismatch ||
                kind == FormatErrorKind::kTruncated ||
                kind == FormatErrorKind::kMissingSection ||
                kind == FormatErrorKind::kBadSectionLength)
        << "byte -" << back << ": " << util::to_string(kind);
  }
}

TEST(ModelIoV2Test, TruncationIsTyped) {
  const std::string bytes = v2_bytes();
  for (const std::size_t keep : {std::size_t{0}, std::size_t{5}, std::size_t{9},
                                 std::size_t{40}, bytes.size() - 1}) {
    std::istringstream in(bytes.substr(0, keep), std::ios::binary);
    EXPECT_THROW((void)load_pipeline(in), FormatError) << "keep=" << keep;
  }
}

TEST(ModelIoV2Test, WrongFileKindIsTyped) {
  // An online checkpoint is a valid v2 file — but not a pipeline.
  OnlineConfig cfg;
  cfg.reghd.dim = 128;
  cfg.reghd.models = 2;
  OnlineRegHD learner(cfg, 4);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  save_online_checkpoint(buf, learner);
  try {
    (void)load_pipeline(buf);
    FAIL() << "pipeline loader accepted an online checkpoint";
  } catch (const FormatError& e) {
    EXPECT_EQ(e.kind(), FormatErrorKind::kBadKind);
  }

  std::stringstream pipe(std::ios::in | std::ios::out | std::ios::binary);
  save_pipeline(pipe, fitted_pipeline());
  try {
    (void)load_online_checkpoint(pipe);
    FAIL() << "checkpoint loader accepted a pipeline model";
  } catch (const FormatError& e) {
    EXPECT_EQ(e.kind(), FormatErrorKind::kBadKind);
  }
}

TEST(ModelIoV2Test, CorruptFilesNeverYieldAModel) {
  // Stronger than "throws": the loader builds the pipeline only after every
  // checksum verified, so no corruption can produce a partially-initialized
  // object. Exercise one flip in every 64-byte window.
  const std::string bytes = v2_bytes();
  for (std::size_t pos = 0; pos < bytes.size(); pos += 64) {
    std::istringstream in(flip(bytes, pos), std::ios::binary);
    EXPECT_THROW((void)load_pipeline(in), FormatError) << "flip at " << pos;
  }
}

// --- v1 hostile length regression ----------------------------------------

TEST(ModelIoV1Test, HostileScalerLengthRejectedWithoutGiantAllocation) {
  const RegHDPipeline& pipeline = fitted_pipeline();
  std::ostringstream out(std::ios::binary);
  save_pipeline_v1(out, pipeline);
  std::string bytes = out.str();

  // The first u64 length prefix of the v1 body is the feature-scaler means
  // vector; compute its offset from the writers themselves so this test
  // cannot drift from the layout.
  std::ostringstream cfg_bytes(std::ios::binary);
  io::write_encoder_config(cfg_bytes, pipeline.config().encoder);
  io::write_reghd_config(cfg_bytes, pipeline.config().reghd);
  const std::size_t flags_bytes = 1 + 1 + 8;  // standardize flags + validation_fraction
  const std::size_t offset = 8 + cfg_bytes.str().size() + flags_bytes;

  for (std::size_t i = 0; i < 8; ++i) {
    bytes.at(offset + i) = static_cast<char>(0xFF);  // length = 2^64 - 1
  }
  std::istringstream in(bytes, std::ios::binary);
  // Before the bounds fix this attempted a multi-exabyte allocation
  // (overflowing the `n * sizeof(T)` check on the way); now it must throw
  // immediately.
  EXPECT_THROW((void)load_pipeline(in), std::runtime_error);
}

TEST(ModelIoV1Test, ModerateHostileLengthClampedAgainstRemainingBytes) {
  const RegHDPipeline& pipeline = fitted_pipeline();
  std::ostringstream out(std::ios::binary);
  save_pipeline_v1(out, pipeline);
  std::string bytes = out.str();

  std::ostringstream cfg_bytes(std::ios::binary);
  io::write_encoder_config(cfg_bytes, pipeline.config().encoder);
  io::write_reghd_config(cfg_bytes, pipeline.config().reghd);
  const std::size_t offset = 8 + cfg_bytes.str().size() + 10;

  // 16 million doubles: passes the absolute payload cap but far exceeds the
  // bytes actually present — the remaining-stream clamp must reject it
  // before allocating 128 MB.
  const std::uint64_t hostile = 16u << 20;
  for (std::size_t i = 0; i < 8; ++i) {
    bytes.at(offset + i) = static_cast<char>((hostile >> (8 * i)) & 0xFF);
  }
  std::istringstream in(bytes, std::ios::binary);
  EXPECT_THROW((void)load_pipeline(in), std::runtime_error);
}

}  // namespace
}  // namespace reghd::core
