// IngestRing: FIFO order, payload integrity, capacity semantics, and the
// multi-producer contract under concurrency.
#include "serve/ring.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "serve/server.hpp"

namespace reghd::serve {
namespace {

struct TestHeader {
  std::uint64_t id = 0;
};

TEST(ServeRingTest, CapacityRoundsUpToPowerOfTwo) {
  const IngestRing<TestHeader> ring(5, 3);
  EXPECT_EQ(ring.capacity(), 8U);
  EXPECT_EQ(ring.row_width(), 3U);
  const IngestRing<TestHeader> tiny(0, 1);
  EXPECT_EQ(tiny.capacity(), 2U);
}

TEST(ServeRingTest, PopOnEmptyFails) {
  IngestRing<TestHeader> ring(4, 2);
  TestHeader h;
  double row[2];
  EXPECT_FALSE(ring.can_pop());
  EXPECT_FALSE(ring.try_pop(h, row));
}

TEST(ServeRingTest, FifoOrderAndPayloadIntegrity) {
  constexpr std::size_t kWidth = 4;
  IngestRing<TestHeader> ring(8, kWidth);
  for (std::uint64_t i = 0; i < 8; ++i) {
    std::vector<double> row(kWidth);
    for (std::size_t k = 0; k < kWidth; ++k) {
      row[k] = static_cast<double>(i * 100 + k);
    }
    EXPECT_TRUE(ring.try_push(TestHeader{i}, row));
  }
  // Full: the ninth push must be rejected, not overwrite.
  EXPECT_FALSE(ring.try_push(TestHeader{99}, std::vector<double>(kWidth, 0.0)));

  for (std::uint64_t i = 0; i < 8; ++i) {
    TestHeader h;
    double row[kWidth];
    ASSERT_TRUE(ring.try_pop(h, row));
    EXPECT_EQ(h.id, i);  // strict FIFO
    for (std::size_t k = 0; k < kWidth; ++k) {
      EXPECT_EQ(row[k], static_cast<double>(i * 100 + k));
    }
  }
  EXPECT_FALSE(ring.can_pop());
}

TEST(ServeRingTest, ZeroRowWidthRejectedBeforeAllocation) {
  // The width check must fire before the cell/row planes are sized from it —
  // constructing with width 0 throws instead of allocating a zero-row plane.
  EXPECT_THROW(IngestRing<TestHeader>(8, 0), std::invalid_argument);
}

TEST(ServeRingTest, WrapsAroundManyTimes) {
  constexpr std::size_t kWidth = 2;
  IngestRing<TestHeader> ring(4, kWidth);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const double payload[kWidth] = {static_cast<double>(i), -static_cast<double>(i)};
    ASSERT_TRUE(ring.try_push(TestHeader{i}, payload));
    TestHeader h;
    double row[kWidth];
    ASSERT_TRUE(ring.try_pop(h, row));
    ASSERT_EQ(h.id, i);
    ASSERT_EQ(row[0], payload[0]);
    ASSERT_EQ(row[1], payload[1]);
  }
}

TEST(ServeRingTest, WrapsWhileStayingNearlyFull) {
  // WrapsAroundManyTimes keeps the ring at depth 1; this variant keeps it at
  // capacity-1 so head and tail both travel past the index space several
  // times while almost every slot is occupied — the regime where a masked
  // index or sequence-number bug would cross-wire slots.
  constexpr std::size_t kWidth = 2;
  IngestRing<TestHeader> ring(4, kWidth);  // capacity 4
  std::uint64_t pushed = 0;
  std::uint64_t popped = 0;
  // Prefill to capacity - 1.
  for (; pushed < 3; ++pushed) {
    const double row[kWidth] = {static_cast<double>(pushed), 0.5};
    ASSERT_TRUE(ring.try_push(TestHeader{pushed}, row));
  }
  // 40 full trips of the index space at constant depth 3.
  for (std::uint64_t i = 0; i < 160; ++i) {
    const double row[kWidth] = {static_cast<double>(pushed), 0.5};
    ASSERT_TRUE(ring.try_push(TestHeader{pushed}, row));
    ++pushed;
    TestHeader h;
    double out[kWidth];
    ASSERT_TRUE(ring.try_pop(h, out));
    ASSERT_EQ(h.id, popped);
    ASSERT_EQ(out[0], static_cast<double>(popped));
    ++popped;
  }
  // Drain the residual occupancy in FIFO order.
  TestHeader h;
  double out[kWidth];
  while (ring.try_pop(h, out)) {
    ASSERT_EQ(h.id, popped);
    ++popped;
  }
  EXPECT_EQ(popped, pushed);
}

TEST(ServeRingTest, FullRingRejectsThenRecoversUnderConcurrentProducers) {
  // Producers outpace a deliberately stalled consumer against a tiny ring:
  // pushes must fail cleanly while full (no overwrite, no lost slot) and the
  // ring must keep making progress once draining resumes. Every accepted row
  // is accounted for exactly once.
  constexpr std::size_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 2000;
  constexpr std::size_t kWidth = 2;
  IngestRing<TestHeader> ring(4, kWidth);  // tiny: rejection is the norm

  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> rejected{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t id = p * kPerProducer + i;
        const double row[kWidth] = {static_cast<double>(id),
                                    static_cast<double>(id) * 3.0};
        while (!ring.try_push(TestHeader{id}, row)) {
          rejected.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::yield();
        }
        accepted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::vector<std::uint8_t> seen(kProducers * kPerProducer, 0);
  std::uint64_t received = 0;
  while (received < kProducers * kPerProducer) {
    TestHeader h;
    double row[kWidth];
    if (!ring.try_pop(h, row)) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_LT(h.id, seen.size());
    ASSERT_EQ(seen[h.id], 0) << "row " << h.id << " delivered twice";
    seen[h.id] = 1;
    ASSERT_EQ(row[0], static_cast<double>(h.id));
    ASSERT_EQ(row[1], static_cast<double>(h.id) * 3.0);
    ++received;
    if ((received & 63U) == 0) {
      std::this_thread::yield();  // periodically let the ring refill to full
    }
  }
  for (auto& t : producers) {
    t.join();
  }
  EXPECT_EQ(accepted.load(), kProducers * kPerProducer);
  EXPECT_GT(rejected.load(), 0U) << "ring never filled; shrink it or add producers";
  EXPECT_FALSE(ring.can_pop());
}

TEST(ServeRingTest, RequestSlotReusesCleanlyAcrossCompletions) {
  // One slot, many lifecycles: reset() must clear completion state so a
  // recycled slot blocks until *its* completion, not a stale one.
  RequestSlot slot;
  for (std::uint64_t round = 1; round <= 100; ++round) {
    slot.reset();
    EXPECT_FALSE(slot.ready());
    EXPECT_EQ(slot.error, 0U);
    EXPECT_EQ(slot.result, 0.0);

    std::thread completer([&slot, round] {
      slot.result = static_cast<double>(round) * 1.25;
      slot.error = static_cast<std::uint32_t>(round % 2);
      slot.done_ns.store(round, std::memory_order_release);
      slot.done_ns.notify_all();
    });
    slot.wait();
    EXPECT_TRUE(slot.ready());
    EXPECT_EQ(slot.result, static_cast<double>(round) * 1.25);
    EXPECT_EQ(slot.error, static_cast<std::uint32_t>(round % 2));
    completer.join();
    // wait() after completion returns immediately for the same lifecycle.
    slot.wait();
  }
}

TEST(ServeRingTest, MultiProducerStressDeliversEveryRowIntact) {
  constexpr std::size_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 5000;
  constexpr std::size_t kWidth = 3;
  IngestRing<TestHeader> ring(64, kWidth);

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t id = p * kPerProducer + i;
        // Payload derived from the header id, so the consumer can verify the
        // row travelled with its header (no cross-slot mixups).
        const double row[kWidth] = {static_cast<double>(id),
                                    static_cast<double>(id) * 2.0,
                                    static_cast<double>(id) + 0.5};
        while (!ring.try_push(TestHeader{id}, row)) {
          std::this_thread::yield();
        }
      }
    });
  }

  std::vector<std::uint64_t> next(kProducers, 0);  // per-producer FIFO check
  std::uint64_t received = 0;
  while (received < kProducers * kPerProducer) {
    TestHeader h;
    double row[kWidth];
    if (!ring.try_pop(h, row)) {
      std::this_thread::yield();
      continue;
    }
    ++received;
    ASSERT_EQ(row[0], static_cast<double>(h.id));
    ASSERT_EQ(row[1], static_cast<double>(h.id) * 2.0);
    ASSERT_EQ(row[2], static_cast<double>(h.id) + 0.5);
    const std::size_t p = h.id / kPerProducer;
    const std::uint64_t seq = h.id % kPerProducer;
    ASSERT_EQ(seq, next[p]) << "producer " << p << " reordered";
    next[p] = seq + 1;
  }
  for (auto& t : producers) {
    t.join();
  }
  EXPECT_FALSE(ring.can_pop());
}

}  // namespace
}  // namespace reghd::serve
