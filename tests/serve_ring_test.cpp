// IngestRing: FIFO order, payload integrity, capacity semantics, and the
// multi-producer contract under concurrency.
#include "serve/ring.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace reghd::serve {
namespace {

struct TestHeader {
  std::uint64_t id = 0;
};

TEST(ServeRingTest, CapacityRoundsUpToPowerOfTwo) {
  const IngestRing<TestHeader> ring(5, 3);
  EXPECT_EQ(ring.capacity(), 8U);
  EXPECT_EQ(ring.row_width(), 3U);
  const IngestRing<TestHeader> tiny(0, 1);
  EXPECT_EQ(tiny.capacity(), 2U);
}

TEST(ServeRingTest, PopOnEmptyFails) {
  IngestRing<TestHeader> ring(4, 2);
  TestHeader h;
  double row[2];
  EXPECT_FALSE(ring.can_pop());
  EXPECT_FALSE(ring.try_pop(h, row));
}

TEST(ServeRingTest, FifoOrderAndPayloadIntegrity) {
  constexpr std::size_t kWidth = 4;
  IngestRing<TestHeader> ring(8, kWidth);
  for (std::uint64_t i = 0; i < 8; ++i) {
    std::vector<double> row(kWidth);
    for (std::size_t k = 0; k < kWidth; ++k) {
      row[k] = static_cast<double>(i * 100 + k);
    }
    EXPECT_TRUE(ring.try_push(TestHeader{i}, row));
  }
  // Full: the ninth push must be rejected, not overwrite.
  EXPECT_FALSE(ring.try_push(TestHeader{99}, std::vector<double>(kWidth, 0.0)));

  for (std::uint64_t i = 0; i < 8; ++i) {
    TestHeader h;
    double row[kWidth];
    ASSERT_TRUE(ring.try_pop(h, row));
    EXPECT_EQ(h.id, i);  // strict FIFO
    for (std::size_t k = 0; k < kWidth; ++k) {
      EXPECT_EQ(row[k], static_cast<double>(i * 100 + k));
    }
  }
  EXPECT_FALSE(ring.can_pop());
}

TEST(ServeRingTest, WrapsAroundManyTimes) {
  constexpr std::size_t kWidth = 2;
  IngestRing<TestHeader> ring(4, kWidth);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const double payload[kWidth] = {static_cast<double>(i), -static_cast<double>(i)};
    ASSERT_TRUE(ring.try_push(TestHeader{i}, payload));
    TestHeader h;
    double row[kWidth];
    ASSERT_TRUE(ring.try_pop(h, row));
    ASSERT_EQ(h.id, i);
    ASSERT_EQ(row[0], payload[0]);
    ASSERT_EQ(row[1], payload[1]);
  }
}

TEST(ServeRingTest, MultiProducerStressDeliversEveryRowIntact) {
  constexpr std::size_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 5000;
  constexpr std::size_t kWidth = 3;
  IngestRing<TestHeader> ring(64, kWidth);

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t id = p * kPerProducer + i;
        // Payload derived from the header id, so the consumer can verify the
        // row travelled with its header (no cross-slot mixups).
        const double row[kWidth] = {static_cast<double>(id),
                                    static_cast<double>(id) * 2.0,
                                    static_cast<double>(id) + 0.5};
        while (!ring.try_push(TestHeader{id}, row)) {
          std::this_thread::yield();
        }
      }
    });
  }

  std::vector<std::uint64_t> next(kProducers, 0);  // per-producer FIFO check
  std::uint64_t received = 0;
  while (received < kProducers * kPerProducer) {
    TestHeader h;
    double row[kWidth];
    if (!ring.try_pop(h, row)) {
      std::this_thread::yield();
      continue;
    }
    ++received;
    ASSERT_EQ(row[0], static_cast<double>(h.id));
    ASSERT_EQ(row[1], static_cast<double>(h.id) * 2.0);
    ASSERT_EQ(row[2], static_cast<double>(h.id) + 0.5);
    const std::size_t p = h.id / kPerProducer;
    const std::uint64_t seq = h.id % kPerProducer;
    ASSERT_EQ(seq, next[p]) << "producer " << p << " reordered";
    next[p] = seq + 1;
  }
  for (auto& t : producers) {
    t.join();
  }
  EXPECT_FALSE(ring.can_pop());
}

}  // namespace
}  // namespace reghd::serve
