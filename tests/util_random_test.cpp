// Tests for the deterministic RNG stack (SplitMix64, xoshiro256**, Rng).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <numbers>
#include <numeric>
#include <set>
#include <vector>

#include "util/random.hpp"

namespace reghd::util {
namespace {

TEST(SplitMix64Test, KnownSequenceFromZeroSeed) {
  // Reference values of SplitMix64 seeded with 0 (from the published
  // reference implementation).
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(sm.next(), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(sm.next(), 0x06C45D188009454FULL);
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256Test, DeterministicForFixedSeed) {
  Xoshiro256ss a(12345);
  Xoshiro256ss b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Xoshiro256Test, NoShortCycles) {
  Xoshiro256ss gen(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    seen.insert(gen.next());
  }
  EXPECT_EQ(seen.size(), 10000u);  // no repeats in 10k draws
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanAndVariance) {
  Rng rng(11);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    sum += u;
    sum_sq += u * u;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.01);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.01);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.5, 2.25);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 2.25);
  }
}

TEST(RngTest, UniformIndexCoversRangeWithoutBias) {
  Rng rng(17);
  std::vector<int> counts(10, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    ++counts[rng.uniform_index(10)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kN, 0.1, 0.01);
  }
}

TEST(RngTest, UniformIndexRejectsZero) {
  Rng rng(19);
  EXPECT_THROW((void)rng.uniform_index(0), std::invalid_argument);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(23);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMomentsMatchStandardNormal) {
  Rng rng(29);
  double sum = 0.0;
  double sum_sq = 0.0;
  double sum_cu = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double z = rng.normal();
    sum += z;
    sum_sq += z * z;
    sum_cu += z * z * z;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.01);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.02);
  EXPECT_NEAR(sum_cu / kN, 0.0, 0.05);  // symmetry
}

TEST(RngTest, NormalWithParamsShiftsAndScales) {
  Rng rng(31);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const double z = rng.normal(5.0, 2.0);
    sum += z;
    sum_sq += z * z;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(RngTest, BernoulliFrequencyTracksProbability) {
  Rng rng(37);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    hits += rng.bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(RngTest, RademacherBalanced) {
  Rng rng(41);
  int sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const int r = rng.rademacher();
    ASSERT_TRUE(r == 1 || r == -1);
    sum += r;
  }
  EXPECT_NEAR(static_cast<double>(sum) / kN, 0.0, 0.02);
}

TEST(RngTest, PhaseWithinTwoPi) {
  Rng rng(43);
  for (int i = 0; i < 1000; ++i) {
    const double p = rng.phase();
    EXPECT_GE(p, 0.0);
    EXPECT_LT(p, 2.0 * std::numbers::pi);
  }
}

TEST(RngTest, SplitProducesIndependentStreams) {
  Rng parent(47);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  // Children differ from each other and from the parent's continued stream.
  EXPECT_NE(child1.bits(), child2.bits());
}

TEST(RngTest, SplitIsDeterministic) {
  Rng a(53);
  Rng b(53);
  Rng ca = a.split();
  Rng cb = b.split();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(ca.bits(), cb.bits());
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(59);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ShuffleHandlesTinyContainers) {
  Rng rng(61);
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  rng.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(RngTest, ShuffleIsUniformOverPositions) {
  // Each element should land in each position with probability ~1/n.
  constexpr int kN = 5;
  constexpr int kTrials = 60000;
  std::array<std::array<int, kN>, kN> counts{};
  Rng rng(67);
  for (int t = 0; t < kTrials; ++t) {
    std::array<int, kN> v{};
    std::iota(v.begin(), v.end(), 0);
    rng.shuffle(v);
    for (int pos = 0; pos < kN; ++pos) {
      ++counts[static_cast<std::size_t>(v[static_cast<std::size_t>(pos)])]
              [static_cast<std::size_t>(pos)];
    }
  }
  for (const auto& row : counts) {
    for (const int c : row) {
      EXPECT_NEAR(static_cast<double>(c) / kTrials, 0.2, 0.02);
    }
  }
}

}  // namespace
}  // namespace reghd::util
