// Tests for the support vector regression baseline.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/svr.hpp"
#include "data/synthetic.hpp"
#include "util/metrics.hpp"
#include "util/random.hpp"

namespace reghd::baselines {
namespace {

TEST(SvrTest, LinearKernelRecoversLine) {
  util::Rng rng(1);
  data::Dataset d;
  for (int i = 0; i < 400; ++i) {
    const double x0 = rng.normal();
    const double x1 = rng.normal();
    const double f[] = {x0, x1};
    d.add_sample(f, 2.0 * x0 - x1 + 3.0);
  }
  SvrConfig cfg;
  cfg.kernel = SvrKernel::kLinear;
  cfg.epochs = 120;
  Svr model(cfg);
  model.fit(d);
  util::Rng probe(2);
  for (int i = 0; i < 10; ++i) {
    const double x[] = {probe.normal(), probe.normal()};
    const double expected = 2.0 * x[0] - x[1] + 3.0;
    // ε-insensitive loss tolerates a tube around the target.
    EXPECT_NEAR(model.predict(x), expected, 0.5);
  }
}

TEST(SvrTest, RbfKernelLearnsSine) {
  util::Rng rng(3);
  data::Dataset train;
  data::Dataset test;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 3.0);
    const double f[] = {x};
    const double y = std::sin(2.0 * x);
    (i < 800 ? train : test).add_sample(f, y);
  }
  SvrConfig cfg;
  cfg.kernel = SvrKernel::kRbf;
  cfg.rbf_features = 256;
  cfg.gamma = 1.0;
  cfg.epochs = 120;
  Svr model(cfg);
  model.fit(train);
  const std::vector<double> pred = model.predict_batch(test);
  EXPECT_LT(util::mse(pred, test.targets()), 0.1);  // target variance ≈ 0.5
}

TEST(SvrTest, RbfBeatsLinearOnNonlinearTask) {
  util::Rng rng(5);
  data::Dataset d;
  for (int i = 0; i < 800; ++i) {
    const double x = rng.uniform(-2.0, 2.0);
    const double f[] = {x};
    d.add_sample(f, x * x);  // symmetric: useless for a linear model
  }
  SvrConfig lin_cfg;
  lin_cfg.kernel = SvrKernel::kLinear;
  SvrConfig rbf_cfg;
  rbf_cfg.kernel = SvrKernel::kRbf;
  rbf_cfg.gamma = 1.0;
  Svr linear(lin_cfg);
  Svr rbf(rbf_cfg);
  linear.fit(d);
  rbf.fit(d);
  const std::vector<double> p_lin = linear.predict_batch(d);
  const std::vector<double> p_rbf = rbf.predict_batch(d);
  EXPECT_LT(util::mse(p_rbf, d.targets()), 0.5 * util::mse(p_lin, d.targets()));
}

TEST(SvrTest, DeterministicForFixedSeed) {
  const data::Dataset d = data::make_friedman1(300, 7);
  Svr m1;
  Svr m2;
  m1.fit(d);
  m2.fit(d);
  EXPECT_DOUBLE_EQ(m1.predict(d.row(0)), m2.predict(d.row(0)));
}

TEST(SvrTest, EpsilonTubeToleratesSmallNoise) {
  // With a wide tube, a noisy constant signal should fit to ~the mean and
  // not chase noise.
  util::Rng rng(9);
  data::Dataset d;
  for (int i = 0; i < 300; ++i) {
    const double f[] = {rng.normal()};
    d.add_sample(f, 5.0 + rng.normal(0.0, 0.05));
  }
  SvrConfig cfg;
  cfg.kernel = SvrKernel::kLinear;
  cfg.epsilon = 0.5;
  Svr model(cfg);
  model.fit(d);
  const double x[] = {0.0};
  EXPECT_NEAR(model.predict(x), 5.0, 0.5);
}

TEST(SvrTest, ConfigValidationAndMisuse) {
  SvrConfig cfg;
  cfg.epsilon = -0.1;
  EXPECT_THROW(Svr{cfg}, std::invalid_argument);
  cfg = {};
  cfg.c = 0.0;
  EXPECT_THROW(Svr{cfg}, std::invalid_argument);
  cfg = {};
  cfg.gamma = -0.5;
  EXPECT_THROW(Svr{cfg}, std::invalid_argument);
  cfg = {};
  cfg.rbf_features = 0;
  EXPECT_THROW(Svr{cfg}, std::invalid_argument);

  Svr model;
  EXPECT_THROW((void)model.predict(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(SvrTest, NameIsStable) { EXPECT_EQ(Svr().name(), "SVR"); }

}  // namespace
}  // namespace reghd::baselines
