// Tests for the Regressor interface contract itself.
#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "model/regressor.hpp"

namespace reghd::model {
namespace {

/// Minimal stub: predicts feature[0] doubled, counts calls.
class StubRegressor final : public Regressor {
 public:
  [[nodiscard]] std::string name() const override { return "Stub"; }

  void fit(const data::Dataset& train) override { fitted_samples_ = train.size(); }

  [[nodiscard]] double predict(std::span<const double> features) const override {
    ++predict_calls_;
    return 2.0 * features[0];
  }

  std::size_t fitted_samples_ = 0;
  mutable std::size_t predict_calls_ = 0;
};

TEST(RegressorInterfaceTest, DefaultPredictBatchLoopsOverPredict) {
  data::Dataset d;
  for (int i = 0; i < 7; ++i) {
    const double f[] = {static_cast<double>(i)};
    d.add_sample(f, 0.0);
  }
  StubRegressor stub;
  stub.fit(d);
  EXPECT_EQ(stub.fitted_samples_, 7u);

  const std::vector<double> out = stub.predict_batch(d);
  ASSERT_EQ(out.size(), 7u);
  EXPECT_EQ(stub.predict_calls_, 7u);
  for (int i = 0; i < 7; ++i) {
    EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(i)], 2.0 * i);
  }
}

TEST(RegressorInterfaceTest, PredictBatchOnEmptyDatasetIsEmpty) {
  StubRegressor stub;
  EXPECT_TRUE(stub.predict_batch(data::Dataset{}).empty());
  EXPECT_EQ(stub.predict_calls_, 0u);
}

}  // namespace
}  // namespace reghd::model
