// Tests for the synthetic workload generators, including the calibration
// properties the Table 1 substitution relies on (DESIGN.md §3).
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "data/synthetic.hpp"
#include "util/statistics.hpp"

namespace reghd::data {
namespace {

TEST(PaperDatasetsTest, AllSevenNamesProduceMatchingShapes) {
  struct Expected {
    const char* name;
    std::size_t samples;
    std::size_t features;
  };
  // Shapes of the original public datasets.
  const Expected expected[] = {
      {"diabetes", 442, 10}, {"boston", 506, 13},  {"airfoil", 1503, 5},
      {"wine", 4898, 11},    {"facebook", 500, 18}, {"ccpp", 9568, 4},
      {"forest", 517, 12},
  };
  ASSERT_EQ(paper_dataset_names().size(), 7u);
  for (const auto& e : expected) {
    const Dataset d = make_paper_dataset(e.name, 1);
    EXPECT_EQ(d.size(), e.samples) << e.name;
    EXPECT_EQ(d.num_features(), e.features) << e.name;
    EXPECT_EQ(d.name(), e.name);
  }
}

TEST(PaperDatasetsTest, UnknownNameThrows) {
  EXPECT_THROW((void)paper_dataset_spec("mnist"), std::invalid_argument);
}

TEST(PaperDatasetsTest, DeterministicInSeed) {
  const Dataset a = make_paper_dataset("boston", 42);
  const Dataset b = make_paper_dataset("boston", 42);
  const Dataset c = make_paper_dataset("boston", 43);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.target(i), b.target(i));
  }
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size() && !any_diff; ++i) {
    any_diff = a.target(i) != c.target(i);
  }
  EXPECT_TRUE(any_diff);
}

TEST(PaperDatasetsTest, TargetLocationAndScaleMatchSpec) {
  for (const std::string& name : paper_dataset_names()) {
    const SyntheticSpec spec = paper_dataset_spec(name);
    const Dataset d = make_paper_dataset(name, 3);
    std::vector<double> t(d.targets().begin(), d.targets().end());
    const double m = util::mean(t);
    const double sd = util::stddev(t);
    if (spec.zero_inflation == 0.0 && spec.tail_power == 1.0) {
      EXPECT_NEAR(m, spec.target_offset, 0.15 * spec.target_scale) << name;
      // Total stddev = scale·√(1 + noise²).
      const double expected_sd =
          spec.target_scale * std::sqrt(1.0 + spec.noise_stddev * spec.noise_stddev);
      EXPECT_NEAR(sd, expected_sd, 0.2 * expected_sd) << name;
    } else {
      EXPECT_GT(sd, 0.0) << name;
    }
  }
}

TEST(PaperDatasetsTest, ForestIsZeroInflated) {
  const SyntheticSpec spec = paper_dataset_spec("forest");
  const Dataset d = make_paper_dataset("forest", 5);
  const double floor = spec.target_offset - spec.target_scale;
  std::size_t at_floor = 0;
  for (const double y : d.targets()) {
    EXPECT_GE(y, floor - 1e-9);
    if (std::abs(y - floor) < 1e-9) {
      ++at_floor;
    }
  }
  const double fraction = static_cast<double>(at_floor) / static_cast<double>(d.size());
  EXPECT_GT(fraction, spec.zero_inflation * 0.7);
}

TEST(TeacherDatasetTest, NoiseFloorIsRespected) {
  // With zero noise, the target is a deterministic function of the features:
  // two draws with the same seed agree, and the target variance comes
  // entirely from the teacher.
  SyntheticSpec spec;
  spec.name = "clean";
  spec.samples = 300;
  spec.features = 4;
  spec.noise_stddev = 0.0;
  spec.target_scale = 2.0;
  const Dataset d = make_teacher_dataset(spec, 9);
  std::vector<double> t(d.targets().begin(), d.targets().end());
  // Teacher output was standardized before scaling: stddev ≈ target_scale.
  EXPECT_NEAR(util::stddev(t), 2.0, 0.05);
}

TEST(TeacherDatasetTest, CorrelatedFeaturesActuallyCorrelate) {
  SyntheticSpec spec;
  spec.name = "corr";
  spec.samples = 2000;
  spec.features = 2;
  spec.feature_correlation = 0.8;
  const Dataset d = make_teacher_dataset(spec, 13);
  std::vector<double> f0;
  std::vector<double> f1;
  for (std::size_t i = 0; i < d.size(); ++i) {
    f0.push_back(d.row(i)[0]);
    f1.push_back(d.row(i)[1]);
  }
  EXPECT_GT(util::pearson(f0, f1), 0.6);

  spec.feature_correlation = 0.0;
  const Dataset ind = make_teacher_dataset(spec, 13);
  f0.clear();
  f1.clear();
  for (std::size_t i = 0; i < ind.size(); ++i) {
    f0.push_back(ind.row(i)[0]);
    f1.push_back(ind.row(i)[1]);
  }
  EXPECT_LT(std::abs(util::pearson(f0, f1)), 0.1);
}

TEST(TeacherDatasetTest, ValidatesSpec) {
  SyntheticSpec spec;
  spec.samples = 2;
  EXPECT_THROW((void)make_teacher_dataset(spec, 1), std::invalid_argument);
  spec = {};
  spec.feature_correlation = 1.0;
  EXPECT_THROW((void)make_teacher_dataset(spec, 1), std::invalid_argument);
  spec = {};
  spec.target_scale = 0.0;
  EXPECT_THROW((void)make_teacher_dataset(spec, 1), std::invalid_argument);
  spec = {};
  spec.tail_power = 0.5;
  EXPECT_THROW((void)make_teacher_dataset(spec, 1), std::invalid_argument);
}

TEST(TeacherDatasetTest, RegimeStructureSeparatesFeatureSpace) {
  SyntheticSpec spec;
  spec.name = "regimes";
  spec.samples = 2000;
  spec.features = 3;
  spec.noise_stddev = 0.0;
  spec.regimes = 4;
  spec.regime_separation = 3.0;
  const Dataset with = make_teacher_dataset(spec, 21);
  spec.regimes = 1;
  const Dataset without = make_teacher_dataset(spec, 21);

  auto feature_variance = [](const Dataset& d) {
    std::vector<double> f0;
    for (std::size_t i = 0; i < d.size(); ++i) {
      f0.push_back(d.row(i)[0]);
    }
    return util::variance(f0);
  };
  // Regime centers at 3σ spread add ≈ separation² to the feature variance.
  EXPECT_GT(feature_variance(with), 3.0 * feature_variance(without));
}

TEST(TeacherDatasetTest, RegimeSpecsAreDeterministic) {
  SyntheticSpec spec;
  spec.name = "regimes";
  spec.samples = 200;
  spec.features = 4;
  spec.regimes = 3;
  const Dataset a = make_teacher_dataset(spec, 33);
  const Dataset b = make_teacher_dataset(spec, 33);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.target(i), b.target(i));
  }
  spec.regimes = 0;
  EXPECT_THROW((void)make_teacher_dataset(spec, 33), std::invalid_argument);
}

TEST(PaperDatasetsTest, AllSpecsDeclareRegimeStructure) {
  // Every Table 1 workload mixes latent sub-populations (DESIGN.md §6.11) —
  // the heterogeneity the multi-model experiments rely on.
  for (const std::string& name : paper_dataset_names()) {
    EXPECT_GE(paper_dataset_spec(name).regimes, 4u) << name;
  }
}

TEST(SineTaskTest, FollowsTheFormulaUpToNoise) {
  const Dataset d = make_sine_task(500, 7, 0.0);
  EXPECT_EQ(d.num_features(), 1u);
  for (std::size_t i = 0; i < d.size(); ++i) {
    const double x = d.row(i)[0];
    EXPECT_GE(x, -std::numbers::pi);
    EXPECT_LT(x, std::numbers::pi);
    EXPECT_NEAR(d.target(i), std::sin(4.0 * x) + 0.5 * x, 1e-12);
  }
}

TEST(MultimodalTaskTest, RegimesAreSeparatedInFeatureSpace) {
  const Dataset d = make_multimodal_task(600, 3, 4, 11, 0.01);
  EXPECT_EQ(d.size(), 600u);
  EXPECT_EQ(d.num_features(), 3u);
  // Feature variance across the dataset must far exceed within-regime
  // variance (0.6² per the generator) — i.e. the regimes are distinct blobs.
  std::vector<double> f0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    f0.push_back(d.row(i)[0]);
  }
  EXPECT_GT(util::variance(f0), 2.0 * 0.36);
}

TEST(MultimodalTaskTest, ValidatesParameters) {
  EXPECT_THROW((void)make_multimodal_task(1, 3, 4, 1), std::invalid_argument);
  EXPECT_THROW((void)make_multimodal_task(100, 3, 1, 1), std::invalid_argument);
  EXPECT_THROW((void)make_multimodal_task(100, 0, 4, 1), std::invalid_argument);
}

TEST(Friedman1Test, MatchesClosedFormWithoutNoise) {
  const Dataset d = make_friedman1(200, 3, 0.0);
  EXPECT_EQ(d.num_features(), 10u);
  for (std::size_t i = 0; i < d.size(); ++i) {
    const auto x = d.row(i);
    const double expected = 10.0 * std::sin(std::numbers::pi * x[0] * x[1]) +
                            20.0 * (x[2] - 0.5) * (x[2] - 0.5) + 10.0 * x[3] + 5.0 * x[4];
    EXPECT_NEAR(d.target(i), expected, 1e-12);
  }
}

TEST(Friedman1Test, FeaturesAreInUnitCube) {
  const Dataset d = make_friedman1(300, 5);
  for (std::size_t i = 0; i < d.size(); ++i) {
    for (const double v : d.row(i)) {
      EXPECT_GE(v, 0.0);
      EXPECT_LT(v, 1.0);
    }
  }
}

}  // namespace
}  // namespace reghd::data
