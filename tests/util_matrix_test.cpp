// Tests for the small dense linear algebra used by the baselines.
#include <gtest/gtest.h>

#include <vector>

#include "util/matrix.hpp"
#include "util/random.hpp"

namespace reghd::util {
namespace {

TEST(MatrixTest, ConstructionAndIndexing) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(MatrixTest, IdentityHasOnesOnDiagonal) {
  const Matrix i = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(i(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, RejectsZeroDimensions) {
  EXPECT_THROW(Matrix(0, 3), std::invalid_argument);
  EXPECT_THROW(Matrix(3, 0), std::invalid_argument);
}

TEST(MatvecTest, HandComputed) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 3.0;
  a(1, 1) = 4.0;
  const std::vector<double> x = {5.0, 6.0};
  const std::vector<double> y = matvec(a, x);
  EXPECT_DOUBLE_EQ(y[0], 17.0);
  EXPECT_DOUBLE_EQ(y[1], 39.0);
}

TEST(MatvecTest, RejectsDimensionMismatch) {
  Matrix a(2, 2);
  EXPECT_THROW((void)matvec(a, std::vector<double>{1.0}), std::invalid_argument);
}

TEST(GramTest, SymmetricAndCorrect) {
  Matrix a(3, 2);
  a(0, 0) = 1.0;
  a(1, 0) = 2.0;
  a(2, 0) = 3.0;
  a(0, 1) = 4.0;
  a(1, 1) = 5.0;
  a(2, 1) = 6.0;
  const Matrix g = gram(a);
  EXPECT_DOUBLE_EQ(g(0, 0), 14.0);   // 1+4+9
  EXPECT_DOUBLE_EQ(g(1, 1), 77.0);   // 16+25+36
  EXPECT_DOUBLE_EQ(g(0, 1), 32.0);   // 4+10+18
  EXPECT_DOUBLE_EQ(g(1, 0), g(0, 1));
}

TEST(CholeskyTest, SolvesKnownSpdSystem) {
  // S = [[4,2],[2,3]], b = [10, 9] → x = [1.5, 2].
  Matrix s(2, 2);
  s(0, 0) = 4.0;
  s(0, 1) = 2.0;
  s(1, 0) = 2.0;
  s(1, 1) = 3.0;
  const std::vector<double> x = cholesky_solve(s, std::vector<double>{10.0, 9.0});
  EXPECT_NEAR(x[0], 1.5, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(CholeskyTest, RejectsIndefiniteMatrix) {
  Matrix s(2, 2);
  s(0, 0) = 1.0;
  s(0, 1) = 2.0;
  s(1, 0) = 2.0;
  s(1, 1) = 1.0;  // eigenvalues 3, −1
  EXPECT_THROW((void)cholesky_solve(s, std::vector<double>{1.0, 1.0}), std::runtime_error);
}

TEST(RidgeTest, RecoversExactCoefficientsWithoutNoise) {
  // y = 2x₀ − 3x₁ + 0.5, 50 random rows, λ → 0.
  Rng rng(3);
  Matrix a(50, 3);
  std::vector<double> b(50);
  for (std::size_t i = 0; i < 50; ++i) {
    const double x0 = rng.normal();
    const double x1 = rng.normal();
    a(i, 0) = x0;
    a(i, 1) = x1;
    a(i, 2) = 1.0;
    b[i] = 2.0 * x0 - 3.0 * x1 + 0.5;
  }
  const std::vector<double> w = ridge_solve(a, b, 1e-10);
  EXPECT_NEAR(w[0], 2.0, 1e-6);
  EXPECT_NEAR(w[1], -3.0, 1e-6);
  EXPECT_NEAR(w[2], 0.5, 1e-6);
}

TEST(RidgeTest, RegularizationShrinksWeights) {
  Rng rng(5);
  Matrix a(30, 2);
  std::vector<double> b(30);
  for (std::size_t i = 0; i < 30; ++i) {
    const double x = rng.normal();
    a(i, 0) = x;
    a(i, 1) = 1.0;
    b[i] = 4.0 * x;
  }
  const std::vector<double> w_small = ridge_solve(a, b, 1e-8);
  const std::vector<double> w_large = ridge_solve(a, b, 1e3);
  EXPECT_LT(std::abs(w_large[0]), std::abs(w_small[0]));
}

TEST(RidgeTest, RejectsNegativeLambda) {
  Matrix a(2, 1);
  a(0, 0) = 1.0;
  a(1, 0) = 2.0;
  EXPECT_THROW((void)ridge_solve(a, std::vector<double>{1.0, 2.0}, -1.0),
               std::invalid_argument);
}

TEST(FitLineTest, ExactLine) {
  const std::vector<double> x = {0.0, 1.0, 2.0, 3.0};
  const std::vector<double> y = {1.0, 3.0, 5.0, 7.0};
  const LinearFit fit = fit_line(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
}

TEST(FitLineTest, ConstantXFallsBackToMean) {
  const std::vector<double> x = {2.0, 2.0, 2.0};
  const std::vector<double> y = {1.0, 2.0, 3.0};
  const LinearFit fit = fit_line(x, y);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 2.0);
}

}  // namespace
}  // namespace reghd::util
