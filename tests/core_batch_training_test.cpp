// Deterministic mini-batch training contract:
//
//  * batch_size = 1 must reproduce the sequential online fit() bit for bit —
//    every epoch record, every accumulator component, every snapshot — for
//    both regressors and for quantized configurations with mid-epoch
//    requantization, because a one-sample batch freezes nothing.
//  * For a fixed batch size, results must be identical for any thread count
//    (batch-frozen phase 1 is embarrassingly parallel; the Eq. 7/8 apply
//    phase is ordered per accumulator chain).
//  * OnlineRegHD::update_batch with one-reading blocks must equal update(),
//    and a mid-stream checkpoint taken between blocks must resume
//    bit-identically.
//  * The quantized predict_batch bank scan (dot_rows_binary) must equal
//    per-row predict(), including at a dim that is not a multiple of 64.
//
// The suite runs on whatever kernel backend is live; CI runs it twice
// (default dispatch and REGHD_KERNEL=scalar).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <tuple>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/encoded.hpp"
#include "core/multi_model.hpp"
#include "core/online.hpp"
#include "core/single_model.hpp"
#include "data/dataset.hpp"
#include "hdc/encoding.hpp"
#include "util/random.hpp"

namespace reghd::core {
namespace {

data::Dataset make_dataset(std::size_t rows, std::size_t features, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> flat(rows * features);
  std::vector<double> targets(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    double sum = 0.0;
    for (std::size_t f = 0; f < features; ++f) {
      const double x = rng.normal(0.0, 1.0);
      flat[i * features + f] = x;
      sum += x * (f % 2 == 0 ? 0.7 : -0.4);
    }
    targets[i] = std::tanh(sum);
  }
  return {"batch-training", features, std::move(flat), std::move(targets)};
}

EncodedDataset encode(const data::Dataset& dataset, std::size_t dim) {
  hdc::EncoderConfig cfg;
  cfg.input_dim = dataset.num_features();
  cfg.dim = dim;
  const auto encoder = hdc::make_encoder(cfg);
  return EncodedDataset::from(*encoder, dataset, 1);
}

template <typename SpanA, typename SpanB>
void expect_spans_eq(SpanA a, SpanB b, const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t j = 0; j < a.size(); ++j) {
    ASSERT_EQ(a[j], b[j]) << what << " component " << j;
  }
}

void expect_same_state(const MultiModelRegressor& a, const MultiModelRegressor& b) {
  ASSERT_EQ(a.num_models(), b.num_models());
  for (std::size_t i = 0; i < a.num_models(); ++i) {
    const RegressionModel& ma = a.model(i);
    const RegressionModel& mb = b.model(i);
    const std::string tag = "model " + std::to_string(i);
    expect_spans_eq(ma.accumulator.values(), mb.accumulator.values(), tag + " accumulator");
    expect_spans_eq(ma.binary.words(), mb.binary.words(), tag + " binary");
    expect_spans_eq(ma.ternary_mask.words(), mb.ternary_mask.words(), tag + " ternary mask");
    EXPECT_EQ(ma.gamma, mb.gamma) << tag;
    EXPECT_EQ(ma.gamma_ternary, mb.gamma_ternary) << tag;

    const ClusterCenter& ca = a.cluster(i);
    const ClusterCenter& cb = b.cluster(i);
    const std::string ctag = "cluster " + std::to_string(i);
    expect_spans_eq(ca.accumulator.values(), cb.accumulator.values(), ctag + " accumulator");
    expect_spans_eq(ca.binary.words(), cb.binary.words(), ctag + " binary");
    EXPECT_EQ(ca.norm2, cb.norm2) << ctag;
  }
}

void expect_same_report(const TrainingReport& a, const TrainingReport& b) {
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t e = 0; e < a.history.size(); ++e) {
    EXPECT_EQ(a.history[e].train_mse, b.history[e].train_mse) << "epoch " << e;
    EXPECT_EQ(a.history[e].val_mse, b.history[e].val_mse) << "epoch " << e;
  }
  EXPECT_EQ(a.epochs_run, b.epochs_run);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.best_val_mse, b.best_val_mse);
}

// Configurations that exercise every train_batch branch: the full-precision
// bank fast path, the generic quantized/binary phase 1 (with mid-epoch
// requantization and error clipping), and the winner-only apply chains.
std::vector<RegHDConfig> batch_configs() {
  RegHDConfig full;
  full.dim = 256;
  full.models = 4;
  full.max_epochs = 5;

  RegHDConfig quant = full;
  quant.cluster_mode = ClusterMode::kQuantized;
  quant.query_precision = QueryPrecision::kBinary;
  quant.model_precision = ModelPrecision::kBinary;
  quant.requantize_interval = 7;
  quant.error_clip = 0.5;

  RegHDConfig winner = full;
  winner.update_rule = UpdateRule::kWinnerOnly;

  RegHDConfig naive = full;
  naive.cluster_mode = ClusterMode::kNaiveBinary;
  naive.query_precision = QueryPrecision::kBinary;

  return {full, quant, winner, naive};
}

// ---------------------------------------------------------------------------
// batch_size = 1 vs the sequential online trainer.
// ---------------------------------------------------------------------------

TEST(BatchTrainingTest, MultiModelBatchSizeOneBitIdenticalToSequentialFit) {
  const data::Dataset train_ds = make_dataset(50, 6, 0xB47C1);
  const data::Dataset val_ds = make_dataset(16, 6, 0xB47C2);

  for (const RegHDConfig& base : batch_configs()) {
    const EncodedDataset train = encode(train_ds, base.dim);
    const EncodedDataset val = encode(val_ds, base.dim);

    MultiModelRegressor sequential(base);
    const TrainingReport seq_report = sequential.fit(train, val);

    RegHDConfig batched_cfg = base;
    batched_cfg.batch_size = 1;
    batched_cfg.threads = 3;  // thread count must not matter
    MultiModelRegressor batched(batched_cfg);
    const TrainingReport batch_report = batched.fit(train, val);

    expect_same_report(seq_report, batch_report);
    expect_same_state(sequential, batched);
    for (std::size_t i = 0; i < val.size(); ++i) {
      EXPECT_EQ(sequential.predict(val.sample(i)), batched.predict(val.sample(i)));
    }
  }
}

TEST(BatchTrainingTest, SingleModelBatchSizeOneBitIdenticalToSequentialFit) {
  const data::Dataset train_ds = make_dataset(50, 6, 0x517B1);
  const data::Dataset val_ds = make_dataset(16, 6, 0x517B2);

  RegHDConfig base;
  base.dim = 256;
  base.max_epochs = 5;
  for (const bool binary : {false, true}) {
    RegHDConfig cfg = base;
    if (binary) {
      cfg.query_precision = QueryPrecision::kBinary;
      cfg.model_precision = ModelPrecision::kBinary;
      cfg.error_clip = 0.5;
    }
    const EncodedDataset train = encode(train_ds, cfg.dim);
    const EncodedDataset val = encode(val_ds, cfg.dim);

    SingleModelRegressor sequential(cfg);
    const TrainingReport seq_report = sequential.fit(train, val);

    RegHDConfig batched_cfg = cfg;
    batched_cfg.batch_size = 1;
    batched_cfg.threads = 3;
    SingleModelRegressor batched(batched_cfg);
    const TrainingReport batch_report = batched.fit(train, val);

    expect_same_report(seq_report, batch_report);
    expect_spans_eq(sequential.model().accumulator.values(),
                    batched.model().accumulator.values(), "accumulator");
    expect_spans_eq(sequential.model().binary.words(), batched.model().binary.words(),
                    "binary snapshot");
    EXPECT_EQ(sequential.model().gamma, batched.model().gamma);
  }
}

// ---------------------------------------------------------------------------
// Thread invariance at a fixed batch size (ragged final batch included).
// ---------------------------------------------------------------------------

TEST(BatchTrainingTest, MultiModelFixedBatchIsThreadInvariant) {
  // 50 samples at B = 16 → batches of 16, 16, 16, 2: the ragged tail is part
  // of the contract.
  const data::Dataset train_ds = make_dataset(50, 6, 0x7F2E1);
  const data::Dataset val_ds = make_dataset(16, 6, 0x7F2E2);

  for (const RegHDConfig& base : batch_configs()) {
    const EncodedDataset train = encode(train_ds, base.dim);
    const EncodedDataset val = encode(val_ds, base.dim);

    RegHDConfig ref_cfg = base;
    ref_cfg.batch_size = 16;
    ref_cfg.threads = 1;
    MultiModelRegressor reference(ref_cfg);
    const TrainingReport ref_report = reference.fit(train, val);

    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
      RegHDConfig cfg = base;
      cfg.batch_size = 16;
      cfg.threads = threads;
      MultiModelRegressor candidate(cfg);
      const TrainingReport report = candidate.fit(train, val);
      expect_same_report(ref_report, report);
      expect_same_state(reference, candidate);
    }
  }
}

TEST(BatchTrainingTest, SingleModelFixedBatchIsThreadInvariant) {
  const data::Dataset train_ds = make_dataset(50, 6, 0x9A3F1);
  const data::Dataset val_ds = make_dataset(16, 6, 0x9A3F2);
  RegHDConfig base;
  base.dim = 256;
  base.max_epochs = 4;
  base.batch_size = 16;
  const EncodedDataset train = encode(train_ds, base.dim);
  const EncodedDataset val = encode(val_ds, base.dim);

  RegHDConfig ref_cfg = base;
  ref_cfg.threads = 1;
  SingleModelRegressor reference(ref_cfg);
  const TrainingReport ref_report = reference.fit(train, val);

  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    RegHDConfig cfg = base;
    cfg.threads = threads;
    SingleModelRegressor candidate(cfg);
    const TrainingReport report = candidate.fit(train, val);
    expect_same_report(ref_report, report);
    expect_spans_eq(reference.model().accumulator.values(),
                    candidate.model().accumulator.values(), "accumulator");
  }
}

// ---------------------------------------------------------------------------
// The on_batch hook.
// ---------------------------------------------------------------------------

TEST(BatchTrainingTest, OnBatchHookFiresPerAppliedBatch) {
  const data::Dataset train_ds = make_dataset(50, 6, 0x51DE1);
  const data::Dataset val_ds = make_dataset(16, 6, 0x51DE2);
  RegHDConfig cfg;
  cfg.dim = 256;
  cfg.models = 2;
  cfg.max_epochs = 2;
  cfg.batch_size = 20;
  const EncodedDataset train = encode(train_ds, cfg.dim);
  const EncodedDataset val = encode(val_ds, cfg.dim);

  std::vector<std::tuple<std::size_t, std::size_t, std::size_t>> calls;
  TrainingHooks hooks;
  hooks.on_batch = [&](std::size_t epoch, std::size_t batch, std::size_t samples_done) {
    calls.emplace_back(epoch, batch, samples_done);
  };
  MultiModelRegressor model(cfg);
  const TrainingReport report = model.fit(train, val, &hooks);

  // 50 samples at B = 20 → batches finishing 20, 40, 50 samples per epoch.
  ASSERT_EQ(calls.size(), 3 * report.epochs_run);
  for (std::size_t e = 0; e < report.epochs_run; ++e) {
    EXPECT_EQ(calls[3 * e], std::make_tuple(e, std::size_t{0}, std::size_t{20}));
    EXPECT_EQ(calls[3 * e + 1], std::make_tuple(e, std::size_t{1}, std::size_t{40}));
    EXPECT_EQ(calls[3 * e + 2], std::make_tuple(e, std::size_t{2}, std::size_t{50}));
  }

  // The sequential mode never fires it.
  calls.clear();
  RegHDConfig seq_cfg = cfg;
  seq_cfg.batch_size = 0;
  MultiModelRegressor sequential(seq_cfg);
  sequential.fit(train, val, &hooks);
  EXPECT_TRUE(calls.empty());
}

// ---------------------------------------------------------------------------
// train_batch's explicit threads parameter.
// ---------------------------------------------------------------------------

TEST(BatchTrainingTest, TrainBatchThreadsParameterDoesNotChangeResults) {
  const data::Dataset train_ds = make_dataset(40, 6, 0x7EAD5);
  for (const RegHDConfig& base : batch_configs()) {
    const EncodedDataset train = encode(train_ds, base.dim);
    std::vector<std::size_t> order(train.size());
    std::iota(order.begin(), order.end(), 0);
    // Reversed order: the apply phase must follow the list order, not the
    // dataset row order.
    std::reverse(order.begin(), order.end());

    MultiModelRegressor reference(base);
    std::vector<double> ref_preds(order.size());
    reference.train_batch(train, order, ref_preds, 1);

    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
      MultiModelRegressor candidate(base);
      std::vector<double> preds(order.size());
      candidate.train_batch(train, order, preds, threads);
      expect_spans_eq(std::span<const double>(ref_preds), std::span<const double>(preds),
                      "batch predictions");
      expect_same_state(reference, candidate);
    }
  }
}

// ---------------------------------------------------------------------------
// OnlineRegHD::update_batch.
// ---------------------------------------------------------------------------

OnlineConfig online_config() {
  OnlineConfig cfg;
  cfg.reghd.dim = 256;
  cfg.reghd.models = 4;
  cfg.reghd.cluster_mode = ClusterMode::kQuantized;
  cfg.reghd.query_precision = QueryPrecision::kBinary;
  cfg.requantize_every = 9;
  cfg.decay = 0.995;
  cfg.warmup = 5;
  return cfg;
}

TEST(BatchTrainingTest, UpdateBatchSingleReadingBlocksBitIdenticalToUpdate) {
  const std::size_t features = 5;
  const data::Dataset stream = make_dataset(40, features, 0x0B5E7);

  OnlineRegHD sequential(online_config(), features);
  OnlineRegHD blocked(online_config(), features);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const double expected = sequential.update(stream.row(i), stream.target(i));
    const std::vector<double> got =
        blocked.update_batch(stream.row(i), std::span<const double>(&stream.targets()[i], 1));
    ASSERT_EQ(got.size(), 1U);
    EXPECT_EQ(got[0], expected) << "reading " << i;
  }
  EXPECT_EQ(sequential.samples_seen(), blocked.samples_seen());
  EXPECT_EQ(sequential.since_requantize(), blocked.since_requantize());
  expect_same_state(sequential.model(), blocked.model());
}

TEST(BatchTrainingTest, UpdateBatchIsThreadInvariantAndCheckpointResumable) {
  const std::size_t features = 5;
  const std::size_t block = 8;
  const data::Dataset stream = make_dataset(64, features, 0xC4EC2);

  const auto run_blocks = [&](OnlineRegHD& learner, std::size_t from, std::size_t to) {
    std::vector<double> preds;
    for (std::size_t b0 = from; b0 < to; b0 += block) {
      const std::size_t bn = std::min(to, b0 + block);
      const std::vector<double> p = learner.update_batch(
          std::span<const double>(stream.row(b0).data(), (bn - b0) * features),
          stream.targets().subspan(b0, bn - b0));
      preds.insert(preds.end(), p.begin(), p.end());
    }
    return preds;
  };

  OnlineConfig cfg1 = online_config();
  cfg1.reghd.threads = 1;
  OnlineConfig cfg8 = online_config();
  cfg8.reghd.threads = 8;

  OnlineRegHD learner1(cfg1, features);
  OnlineRegHD learner8(cfg8, features);
  const std::vector<double> preds1 = run_blocks(learner1, 0, stream.size());
  const std::vector<double> preds8 = run_blocks(learner8, 0, stream.size());
  expect_spans_eq(std::span<const double>(preds1), std::span<const double>(preds8),
                  "blocked predictions across thread counts");
  expect_same_state(learner1.model(), learner8.model());

  // Mid-stream checkpoint between blocks: the resumed learner must finish
  // the stream bit-identically to the uninterrupted one.
  OnlineRegHD original(online_config(), features);
  run_blocks(original, 0, 32);
  std::stringstream bytes(std::ios::in | std::ios::out | std::ios::binary);
  save_online_checkpoint(bytes, original);
  OnlineRegHD resumed = load_online_checkpoint(bytes);
  EXPECT_EQ(resumed.samples_seen(), original.samples_seen());

  const std::vector<double> tail_original = run_blocks(original, 32, stream.size());
  const std::vector<double> tail_resumed = run_blocks(resumed, 32, stream.size());
  expect_spans_eq(std::span<const double>(tail_original),
                  std::span<const double>(tail_resumed), "post-checkpoint predictions");
  expect_same_state(original.model(), resumed.model());
  EXPECT_EQ(original.since_requantize(), resumed.since_requantize());
}

// ---------------------------------------------------------------------------
// Quantized predict_batch bank scan at a padded (non-multiple-of-64) dim.
// ---------------------------------------------------------------------------

TEST(BatchTrainingTest, QuantizedPredictBatchMatchesPerRowAtPaddedDim) {
  const data::Dataset dataset = make_dataset(48, 6, 0xAD001);
  for (const std::size_t dim : {std::size_t{200}, std::size_t{256}}) {
    RegHDConfig cfg;
    cfg.dim = dim;
    cfg.models = 4;
    cfg.cluster_mode = ClusterMode::kQuantized;
    cfg.query_precision = QueryPrecision::kBinary;
    cfg.model_precision = ModelPrecision::kBinary;
    const EncodedDataset enc = encode(dataset, dim);

    MultiModelRegressor multi(cfg);
    RegHDConfig scfg = cfg;
    SingleModelRegressor single(scfg);
    for (std::size_t i = 0; i < enc.size(); ++i) {
      multi.train_step(enc.sample(i), enc.target(i));
      single.train_step(enc.sample(i), enc.target(i));
    }
    multi.requantize();
    single.requantize();

    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      const std::vector<double> mb = multi.predict_batch(enc, threads);
      const std::vector<double> sb = single.predict_batch(enc, threads);
      for (std::size_t i = 0; i < enc.size(); ++i) {
        EXPECT_EQ(mb[i], multi.predict(enc.sample(i))) << "multi row " << i;
        EXPECT_EQ(sb[i], single.predict(enc.sample(i))) << "single row " << i;
      }
    }
  }
}

}  // namespace
}  // namespace reghd::core
