// Golden-file format pinning: the committed blobs under tests/golden/ were
// written by a past build (tools/make_golden — see DESIGN.md for the
// regeneration workflow). If loading them, or predicting with them, ever
// changes, the on-disk format or the numeric semantics drifted.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/model_io.hpp"
#include "util/atomic_file.hpp"

#ifndef REGHD_GOLDEN_DIR
#error "REGHD_GOLDEN_DIR must be defined by the build"
#endif

namespace reghd::core {
namespace {

std::string golden(const std::string& name) {
  return std::string(REGHD_GOLDEN_DIR) + "/" + name;
}

struct GoldenQueries {
  std::vector<std::vector<double>> rows;
  std::vector<double> pipeline_expected;
  std::vector<double> online_expected;
};

// operator>> does not portably parse hexfloat (LWG 2381); strtod does.
double next_double(std::istream& in) {
  std::string token;
  EXPECT_TRUE(static_cast<bool>(in >> token)) << "golden text file truncated";
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  EXPECT_EQ(end, token.c_str() + token.size()) << "bad token '" << token << "'";
  return value;
}

GoldenQueries load_queries() {
  GoldenQueries q;
  std::ifstream qf(golden("queries.txt"));
  std::ifstream pf(golden("predictions.txt"));
  EXPECT_TRUE(qf.good() && pf.good()) << "golden text files missing";
  std::size_t count = 0;
  std::size_t features = 0;
  qf >> count >> features;
  for (std::size_t i = 0; i < count; ++i) {
    std::vector<double> row(features);
    for (double& x : row) {
      x = next_double(qf);
    }
    q.rows.push_back(std::move(row));
    q.pipeline_expected.push_back(next_double(pf));
    q.online_expected.push_back(next_double(pf));
  }
  return q;
}

// hexfloat round-trips exactly, so the only slack needed is for kernel
// reduction-order differences between builds (SIMD vs. scalar backend).
constexpr double kRelTol = 1e-9;

void expect_close(double actual, double expected, std::size_t i) {
  EXPECT_NEAR(actual, expected, kRelTol * std::max(1.0, std::abs(expected)))
      << "query " << i;
}

TEST(GoldenModelTest, V1PipelineBlobLoadsAndPredicts) {
  std::istringstream in(util::read_file_bytes(golden("pipeline_v1.reghd")),
                        std::ios::binary);
  const RegHDPipeline pipeline = load_pipeline(in);
  const GoldenQueries q = load_queries();
  for (std::size_t i = 0; i < q.rows.size(); ++i) {
    expect_close(pipeline.predict(q.rows[i]), q.pipeline_expected[i], i);
  }
}

TEST(GoldenModelTest, V2PipelineBlobLoadsAndPredicts) {
  std::istringstream in(util::read_file_bytes(golden("pipeline_v2.reghd")),
                        std::ios::binary);
  const RegHDPipeline pipeline = load_pipeline(in);
  const GoldenQueries q = load_queries();
  for (std::size_t i = 0; i < q.rows.size(); ++i) {
    expect_close(pipeline.predict(q.rows[i]), q.pipeline_expected[i], i);
  }
}

TEST(GoldenModelTest, V1AndV2BlobsDecodeToTheSameModel) {
  std::istringstream v1(util::read_file_bytes(golden("pipeline_v1.reghd")),
                        std::ios::binary);
  std::istringstream v2(util::read_file_bytes(golden("pipeline_v2.reghd")),
                        std::ios::binary);
  const RegHDPipeline p1 = load_pipeline(v1);
  const RegHDPipeline p2 = load_pipeline(v2);
  const GoldenQueries q = load_queries();
  for (std::size_t i = 0; i < q.rows.size(); ++i) {
    // Same process, same backend: exact equality, no tolerance.
    EXPECT_EQ(p1.predict(q.rows[i]), p2.predict(q.rows[i])) << "query " << i;
  }
}

TEST(GoldenModelTest, OnlineCheckpointBlobLoadsAndPredicts) {
  std::istringstream in(util::read_file_bytes(golden("online_v2.reghd")),
                        std::ios::binary);
  const OnlineRegHD learner = load_online_checkpoint(in);
  EXPECT_EQ(learner.samples_seen(), 200u);
  const GoldenQueries q = load_queries();
  for (std::size_t i = 0; i < q.rows.size(); ++i) {
    expect_close(learner.predict(q.rows[i]), q.online_expected[i], i);
  }
}

TEST(GoldenModelTest, OnlineBlobReserializesByteIdentically) {
  // Load → save must reproduce the file exactly: proof that no field is
  // dropped, defaulted, or re-derived on the way through.
  const std::string original = util::read_file_bytes(golden("online_v2.reghd"));
  std::istringstream in(original, std::ios::binary);
  const OnlineRegHD learner = load_online_checkpoint(in);
  std::ostringstream out(std::ios::binary);
  save_online_checkpoint(out, learner);
  EXPECT_EQ(out.str(), original);
}

}  // namespace
}  // namespace reghd::core
