// Tests for grid search and the mean-predictor floor.
#include <gtest/gtest.h>

#include "baselines/decision_tree.hpp"
#include "baselines/grid_search.hpp"
#include "data/synthetic.hpp"

namespace reghd::baselines {
namespace {

TEST(MeanPredictorTest, PredictsTheTrainingMean) {
  data::Dataset d;
  const double f[] = {0.0};
  d.add_sample(f, 2.0);
  d.add_sample(f, 4.0);
  MeanPredictor mean;
  mean.fit(d);
  EXPECT_DOUBLE_EQ(mean.predict(f), 3.0);
  EXPECT_EQ(mean.name(), "Mean");
}

TEST(GridSearchTest, PicksTheObviouslyBetterCandidate) {
  const data::Dataset d = data::make_friedman1(800, 1);
  // Candidate 0: depth-1 stump. Candidate 1: depth-8 tree. The tree wins.
  const auto factory = [](std::size_t index) -> std::unique_ptr<model::Regressor> {
    DecisionTreeConfig cfg;
    cfg.max_depth = index == 0 ? 1 : 8;
    return std::make_unique<DecisionTree>(cfg);
  };
  const GridSearchResult result = grid_search(factory, 2, d, 0.25, 7);
  EXPECT_EQ(result.best_index, 1u);
  ASSERT_EQ(result.val_mse.size(), 2u);
  EXPECT_LT(result.val_mse[1], result.val_mse[0]);
  EXPECT_DOUBLE_EQ(result.best_val_mse, result.val_mse[1]);
}

TEST(GridSearchTest, DeterministicForFixedSeed) {
  const data::Dataset d = data::make_friedman1(400, 3);
  const auto factory = [](std::size_t index) -> std::unique_ptr<model::Regressor> {
    DecisionTreeConfig cfg;
    cfg.max_depth = index + 2;
    return std::make_unique<DecisionTree>(cfg);
  };
  const GridSearchResult a = grid_search(factory, 3, d, 0.25, 11);
  const GridSearchResult b = grid_search(factory, 3, d, 0.25, 11);
  EXPECT_EQ(a.best_index, b.best_index);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(a.val_mse[i], b.val_mse[i]);
  }
}

TEST(GridSearchTest, SingleCandidateTrivially) {
  const data::Dataset d = data::make_friedman1(200, 5);
  const auto factory = [](std::size_t) -> std::unique_ptr<model::Regressor> {
    return std::make_unique<MeanPredictor>();
  };
  const GridSearchResult result = grid_search(factory, 1, d, 0.25, 13);
  EXPECT_EQ(result.best_index, 0u);
  // Mean predictor on standardized Friedman validation: MSE near the target
  // variance (≈ 24).
  EXPECT_GT(result.best_val_mse, 10.0);
}

TEST(GridSearchTest, RejectsBadArguments) {
  const data::Dataset d = data::make_friedman1(100, 7);
  const auto factory = [](std::size_t) -> std::unique_ptr<model::Regressor> {
    return std::make_unique<MeanPredictor>();
  };
  EXPECT_THROW((void)grid_search(factory, 0, d, 0.25, 1), std::invalid_argument);
  EXPECT_THROW((void)grid_search(nullptr, 2, d, 0.25, 1), std::invalid_argument);
  const auto null_factory = [](std::size_t) -> std::unique_ptr<model::Regressor> {
    return nullptr;
  };
  EXPECT_THROW((void)grid_search(null_factory, 1, d, 0.25, 1), std::invalid_argument);
}

}  // namespace
}  // namespace reghd::baselines
