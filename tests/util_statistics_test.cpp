// Tests for scalar statistics: moments, quantiles, softmax, and the normal
// distribution functions behind the capacity model.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/random.hpp"
#include "util/statistics.hpp"

namespace reghd::util {
namespace {

TEST(MeanVarianceTest, HandComputedValues) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_NEAR(variance(v), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(stddev(v), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(MeanVarianceTest, RejectsDegenerateInputs) {
  EXPECT_THROW((void)mean(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW((void)variance(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(MedianQuantileTest, OddAndEvenLengths) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(MedianQuantileTest, QuantileInterpolatesLinearly) {
  const std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 10.0);
}

TEST(MedianQuantileTest, QuantileRejectsOutOfRangeFraction) {
  const std::vector<double> v = {1.0, 2.0};
  EXPECT_THROW((void)quantile(v, -0.1), std::invalid_argument);
  EXPECT_THROW((void)quantile(v, 1.1), std::invalid_argument);
}

TEST(PearsonTest, PerfectPositiveAndNegativeCorrelation) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y_pos = {2.0, 4.0, 6.0, 8.0};
  const std::vector<double> y_neg = {8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(x, y_pos), 1.0, 1e-12);
  EXPECT_NEAR(pearson(x, y_neg), -1.0, 1e-12);
}

TEST(PearsonTest, ConstantSideYieldsZero) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const std::vector<double> c = {5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(pearson(x, c), 0.0);
}

TEST(MinMaxTest, FindsExtremes) {
  const std::vector<double> v = {3.0, -1.5, 7.25, 0.0};
  EXPECT_DOUBLE_EQ(min_value(v), -1.5);
  EXPECT_DOUBLE_EQ(max_value(v), 7.25);
}

TEST(SoftmaxTest, SumsToOneAndPreservesOrder) {
  const std::vector<double> logits = {1.0, 3.0, 2.0};
  const std::vector<double> p = softmax(logits);
  EXPECT_NEAR(p[0] + p[1] + p[2], 1.0, 1e-12);
  EXPECT_GT(p[1], p[2]);
  EXPECT_GT(p[2], p[0]);
}

TEST(SoftmaxTest, ShiftInvariance) {
  const std::vector<double> a = softmax(std::vector<double>{1.0, 2.0, 3.0});
  const std::vector<double> b = softmax(std::vector<double>{101.0, 102.0, 103.0});
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-12);
  }
}

TEST(SoftmaxTest, StableForExtremeLogits) {
  const std::vector<double> p = softmax(std::vector<double>{1e4, 0.0, -1e4});
  EXPECT_NEAR(p[0], 1.0, 1e-12);
  EXPECT_NEAR(p[1], 0.0, 1e-12);
  EXPECT_FALSE(std::isnan(p[2]));
}

TEST(SoftmaxTest, TemperatureSharpensTowardArgmax) {
  const std::vector<double> logits = {0.1, 0.2, 0.15};
  const std::vector<double> soft = softmax(logits, 1.0);
  const std::vector<double> sharp = softmax(logits, 0.01);
  EXPECT_GT(sharp[1], soft[1]);
  // Runner-up logit is 0.05/0.01 = 5 nats behind: p ≈ 1/(1 + e⁻⁵ + e⁻¹⁰).
  EXPECT_NEAR(sharp[1], 1.0, 1e-2);
}

TEST(SoftmaxTest, RejectsBadInputs) {
  EXPECT_THROW((void)softmax(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW((void)softmax(std::vector<double>{1.0}, 0.0), std::invalid_argument);
  EXPECT_THROW((void)softmax(std::vector<double>{1.0}, -1.0), std::invalid_argument);
}

TEST(NormalDistTest, CdfKnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(normal_cdf(-1.96), 0.025, 1e-3);
}

TEST(NormalDistTest, TailComplementsCdf) {
  for (const double x : {-3.0, -1.0, 0.0, 0.5, 2.5}) {
    EXPECT_NEAR(normal_cdf(x) + normal_tail(x), 1.0, 1e-12);
  }
}

TEST(NormalDistTest, PdfIntegratesToCdfNumerically) {
  // Trapezoidal integration of the pdf over [−5, 1] should match Φ(1).
  double acc = 0.0;
  const double h = 1e-4;
  for (double x = -5.0; x < 1.0; x += h) {
    acc += 0.5 * (normal_pdf(x) + normal_pdf(x + h)) * h;
  }
  EXPECT_NEAR(acc, normal_cdf(1.0), 1e-5);
}

TEST(NormalDistTest, QuantileInvertsCdf) {
  for (const double p : {0.001, 0.025, 0.2, 0.5, 0.9, 0.999}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-9);
  }
}

TEST(NormalDistTest, QuantileRejectsBoundaries) {
  EXPECT_THROW((void)normal_quantile(0.0), std::invalid_argument);
  EXPECT_THROW((void)normal_quantile(1.0), std::invalid_argument);
}

TEST(RunningStatsTest, MatchesBatchStatistics) {
  Rng rng(5);
  std::vector<double> values;
  RunningStats stats;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    values.push_back(x);
    stats.add(x);
  }
  EXPECT_NEAR(stats.mean(), mean(values), 1e-10);
  EXPECT_NEAR(stats.variance(), variance(values), 1e-8);
  EXPECT_DOUBLE_EQ(stats.min(), min_value(values));
  EXPECT_DOUBLE_EQ(stats.max(), max_value(values));
  EXPECT_EQ(stats.count(), values.size());
}

TEST(RunningStatsTest, VarianceZeroForFewObservations) {
  RunningStats stats;
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  stats.add(5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(RunningStatsTest, MergeEqualsSinglePass) {
  Rng rng(9);
  RunningStats a;
  RunningStats b;
  RunningStats whole;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-1.0, 4.0);
    (i < 200 ? a : b).add(x);
    whole.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStatsTest, MergeWithEmptySides) {
  RunningStats a;
  RunningStats b;
  b.add(1.0);
  b.add(2.0);
  a.merge(b);  // empty ← non-empty
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);
  RunningStats c;
  a.merge(c);  // non-empty ← empty
  EXPECT_EQ(a.count(), 2u);
}

}  // namespace
}  // namespace reghd::util
