// PublishCadence: the trainer's snapshot-publication policy, driven with
// synthetic clocks so the interval anchoring is asserted deterministically.
// The regression this pins: the interval must restart from the instant a
// publish *returned*, not the instant it was decided — anchoring at the
// pre-publish reading silently shortened every cycle by the publish's own
// cost, firing the timer early under load.
#include "serve/cadence.hpp"

#include <gtest/gtest.h>

namespace reghd::serve {
namespace {

TEST(ServeCadenceTest, CountTriggerFiresAtThreshold) {
  PublishCadence c;
  c.every = 10;
  c.interval_ns = 0;  // timer off
  c.applied(9);
  EXPECT_FALSE(c.due(1'000));
  c.applied(1);
  EXPECT_TRUE(c.due(1'000));
  c.published(2'000);
  EXPECT_FALSE(c.due(999'999));  // reset
}

TEST(ServeCadenceTest, TimeTriggerNeedsPendingUpdates) {
  PublishCadence c;
  c.every = 0;  // count trigger off
  c.interval_ns = 1'000;
  c.last_ns = 0;
  EXPECT_FALSE(c.due(5'000));  // interval long past, but nothing dirty
  c.applied(1);
  EXPECT_FALSE(c.due(999));
  EXPECT_TRUE(c.due(1'000));
}

TEST(ServeCadenceTest, IntervalAnchorsAtPublishReturnNotDecision) {
  PublishCadence c;
  c.every = 0;
  c.interval_ns = 1'000;
  c.last_ns = 0;
  c.applied(1);
  ASSERT_TRUE(c.due(1'000));  // decided at t=1000…

  // …but the publish itself took 700 ns. Re-stamping with the post-publish
  // clock gives the next cycle its full 1000 ns budget:
  c.published(1'700);
  c.applied(1);
  EXPECT_FALSE(c.due(2'000));  // the buggy pre-publish stamp would fire here
  EXPECT_FALSE(c.due(2'699));
  EXPECT_TRUE(c.due(2'700));  // exactly one full interval after the publish ended
}

TEST(ServeCadenceTest, EitherTriggerAloneSuffices) {
  PublishCadence c;
  c.every = 5;
  c.interval_ns = 1'000;
  c.last_ns = 0;
  c.applied(5);
  EXPECT_TRUE(c.due(1));  // count fires long before the timer
  c.published(1);
  c.applied(1);
  EXPECT_FALSE(c.due(500));
  EXPECT_TRUE(c.due(1'001));  // timer fires long before the count
}

TEST(ServeCadenceTest, DisabledTriggersNeverFire) {
  PublishCadence c;
  c.every = 0;
  c.interval_ns = 0;
  c.applied(1'000'000);
  EXPECT_FALSE(c.due(~0ULL));
}

}  // namespace
}  // namespace reghd::serve
