// Allocation-free invariants of the serving hot paths, asserted by replacing
// global operator new in this test binary and arming the serve/alloc_probe
// seam. Three paths are probed after warmup:
//
//   * the trainer drain (OnlineRegHD::update per sample) — the regression
//     this pins: update() used to delegate to predict(), constructing a
//     fresh standardization vector per sample on the trainer thread;
//   * the classic predict worker (both admission paths — already covered by
//     bench/serving, re-asserted here as a test);
//   * the tenant-mode resident predict path (store active).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

#include "core/online.hpp"
#include "data/synthetic.hpp"
#include "serve/alloc_probe.hpp"
#include "serve/server.hpp"

namespace {

thread_local bool tls_in_probed_path = false;
std::atomic<std::uint64_t> g_probed_allocs{0};

void* counted_alloc(std::size_t size, std::size_t align) {
  if (tls_in_probed_path) {
    g_probed_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = nullptr;
  if (align > alignof(std::max_align_t)) {
    const std::size_t rounded = (size + align - 1) / align * align;
    p = std::aligned_alloc(align, rounded);
  } else {
    p = std::malloc(size == 0 ? 1 : size);
  }
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size, 0); }
void* operator new[](std::size_t size) { return counted_alloc(size, 0); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace reghd::serve {
namespace {

core::OnlineConfig steady_config() {
  core::OnlineConfig cfg;
  cfg.reghd.dim = 128;
  cfg.reghd.models = 2;
  cfg.requantize_every = 0;  // requantize rebuilds snapshots; keep the drain pure
  cfg.warmup = 4;
  return cfg;
}

void arm() {
  g_probed_allocs.store(0, std::memory_order_relaxed);
  set_predict_path_probe(+[](bool entering) { tls_in_probed_path = entering; });
}

std::uint64_t disarm() {
  set_predict_path_probe(nullptr);
  return g_probed_allocs.load(std::memory_order_relaxed);
}

TEST(ServeAllocTest, TrainerDrainIsAllocationFreeAfterWarmup) {
  const data::Dataset d = data::make_friedman1(256, 8);
  ServeConfig sc;
  sc.shards = 1;
  sc.publish_every_updates = 0;   // publishes allocate by design…
  sc.publish_interval_ms = 0.0;   // …so keep them out of the window
  Server server(sc, steady_config(), d.num_features());
  server.start();

  // Warmup: grow update()'s member scratch and the one-reading encode arena.
  for (std::size_t i = 0; i < 32; ++i) {
    while (!server.try_train(0, d.row(i), d.target(i))) {
      std::this_thread::yield();
    }
  }
  while (server.train_applied(0) < 32) {
    std::this_thread::yield();
  }

  arm();
  for (std::size_t i = 32; i < 160; ++i) {
    while (!server.try_train(0, d.row(i % d.size()), d.target(i % d.size()))) {
      std::this_thread::yield();
    }
  }
  while (server.train_applied(0) < 160) {
    std::this_thread::yield();
  }
  const std::uint64_t allocs = disarm();
  server.stop();
  EXPECT_EQ(allocs, 0U) << "trainer drain allocated on the steady-state path";
}

TEST(ServeAllocTest, PredictWorkerPathsAreAllocationFree) {
  const data::Dataset d = data::make_friedman1(256, 8);
  core::OnlineRegHD learner(steady_config(), d.num_features());
  for (std::size_t i = 0; i < 64; ++i) {
    learner.update(d.row(i), d.target(i));
  }
  ServeConfig sc;
  sc.shards = 1;
  sc.batch_threshold = 4;
  Server server(sc, steady_config(), d.num_features());
  server.bootstrap(0, learner);
  server.start();

  const auto drive = [&](std::size_t inflight, std::size_t rounds) {
    std::vector<RequestSlot> slots(inflight);
    for (std::size_t r = 0; r < rounds; ++r) {
      for (std::size_t i = 0; i < inflight; ++i) {
        while (!server.try_predict(i, d.row((r + i) % d.size()), &slots[i])) {
          std::this_thread::yield();
        }
      }
      for (std::size_t i = 0; i < inflight; ++i) {
        slots[i].wait();
        ASSERT_EQ(slots[i].error, 0U);
      }
    }
  };

  drive(32, 4);  // warm both admission paths
  drive(1, 4);
  arm();
  drive(32, 8);  // batched bank-scan groups
  drive(1, 8);   // fused single-query groups
  const std::uint64_t allocs = disarm();
  server.stop();
  EXPECT_EQ(allocs, 0U) << "predict worker allocated on a probed path";
}

TEST(ServeAllocTest, TenantResidentPredictPathIsAllocationFree) {
  const data::Dataset d = data::make_friedman1(256, 8);
  TenantStoreConfig tc;
  tc.resident_budget = 8;
  tc.tiered_dims = false;
  ServeConfig sc;
  sc.shards = 1;
  sc.tenant = tc;
  Server server(sc, steady_config(), d.num_features());
  server.start();

  // Warm four tenants well past residency and the fused path's scratch.
  std::vector<RequestSlot> slots(4);
  for (std::size_t r = 0; r < 16; ++r) {
    for (std::uint64_t t = 0; t < 4; ++t) {
      while (!server.try_train(t, d.row(r), d.target(r))) {
        std::this_thread::yield();
      }
      while (!server.try_predict(t, d.row(r), &slots[t])) {
        std::this_thread::yield();
      }
    }
    for (auto& s : slots) {
      s.wait();
    }
  }
  while (server.train_applied(0) < 64) {
    std::this_thread::yield();
  }

  // Probed window: resident hits only (no new tenants, so no activations —
  // the probe brackets exactly the resident predict; the store stays active).
  arm();
  for (std::size_t r = 0; r < 64; ++r) {
    for (std::uint64_t t = 0; t < 4; ++t) {
      while (!server.try_predict(t, d.row(r % d.size()), &slots[t])) {
        std::this_thread::yield();
      }
    }
    for (auto& s : slots) {
      s.wait();
      ASSERT_EQ(s.error, 0U);
    }
  }
  const std::uint64_t allocs = disarm();
  server.stop();
  EXPECT_EQ(allocs, 0U) << "tenant-mode resident predict allocated";
}

}  // namespace
}  // namespace reghd::serve
