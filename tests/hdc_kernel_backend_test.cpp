// Backend-equivalence properties for the SIMD kernel dispatch layer.
//
// Every kernel in the scalar table is compared against (a) a naive reference
// loop written independently here, and (b) every other table the host can
// run, discovered through available_backends() — scalar, AVX2, AVX-512 and
// NEON all pass through the same assertions, so adding a backend
// automatically enrolls it here. Integer kernels must agree bit-for-bit
// across backends; per-component real kernels must be bit-identical; real
// reductions may differ by summation order only, pinned to a 1e-9 relative
// tolerance. Dimensions cover the packing edge cases: a single component,
// one bit short of a word, exactly one word, one bit past a word, a
// non-multiple of 64, and the default D = 4096.
#include "hdc/kernel_backend.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "hdc/hypervector.hpp"
#include "hdc/ops.hpp"
#include "hdc/random_hv.hpp"
#include "util/fast_trig.hpp"
#include "util/random.hpp"

namespace reghd::hdc {
namespace {

constexpr std::size_t kDims[] = {1, 63, 64, 65, 1000, 4096};

// |x − y| ≤ tol·max(|x|, |y|, 1): relative for large values, absolute near 0.
void expect_close(double x, double y, double tol = 1e-9) {
  const double scale = std::max({std::abs(x), std::abs(y), 1.0});
  EXPECT_NEAR(x, y, tol * scale);
}

struct TestVectors {
  RealHV ra, rb;
  BipolarHV pa, pb;
  BinaryHV ba, bb, mask;
};

TestVectors make_vectors(std::size_t dim, std::uint64_t seed) {
  util::Rng rng(seed);
  TestVectors v;
  v.ra = random_gaussian(dim, rng);
  v.rb = random_gaussian(dim, rng);
  v.pa = random_bipolar(dim, rng);
  v.pb = random_bipolar(dim, rng);
  v.ba = random_binary(dim, rng);
  v.bb = random_binary(dim, rng);
  v.mask = random_binary(dim, rng);
  return v;
}

// Naive references, deliberately written the pedestrian way.
double ref_dot_real_binary(const RealHV& a, const BinaryHV& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.dim(); ++i) {
    acc += b.bit(i) ? a[i] : -a[i];
  }
  return acc;
}

double ref_masked_dot(const RealHV& a, const BinaryHV& signs, const BinaryHV& mask) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.dim(); ++i) {
    if (mask.bit(i)) {
      acc += signs.bit(i) ? a[i] : -a[i];
    }
  }
  return acc;
}

std::int64_t ref_hamming(const BinaryHV& a, const BinaryHV& b) {
  std::int64_t h = 0;
  for (std::size_t i = 0; i < a.dim(); ++i) {
    h += a.bit(i) != b.bit(i) ? 1 : 0;
  }
  return h;
}

std::int64_t ref_masked_bipolar_dot(const BinaryHV& a, const BinaryHV& b,
                                    const BinaryHV& mask) {
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < a.dim(); ++i) {
    if (mask.bit(i)) {
      acc += a.bipolar(i) * b.bipolar(i);
    }
  }
  return acc;
}

/// Every table the host can actually run, scalar first. Cross-backend loops
/// below iterate this so a host without SIMD still exercises scalar
/// self-consistency and a host with AVX-512 (or an aarch64 runner with NEON)
/// gets the full matrix without the test naming any backend explicitly.
std::vector<const KernelBackend*> all_available() {
  const BackendList list = available_backends();
  return {list.tables, list.tables + list.count};
}

/// The non-scalar tables, each paired with scalar by the calling test.
std::vector<const KernelBackend*> simd_backends() {
  std::vector<const KernelBackend*> out = all_available();
  std::erase(out, &scalar_backend());
  return out;
}

class KernelBackendTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KernelBackendTest, ScalarMatchesNaiveReference) {
  const std::size_t dim = GetParam();
  const TestVectors v = make_vectors(dim, 0xBAC0 + dim);
  const KernelBackend& kb = scalar_backend();

  // The scalar backend sums the same values in the same order as the
  // reference loops, so these are exact, not approximate.
  EXPECT_DOUBLE_EQ(kb.dot_real_binary(v.ra.values().data(), v.ba.words().data(), dim),
                   ref_dot_real_binary(v.ra, v.ba));
  EXPECT_DOUBLE_EQ(kb.masked_dot(v.ra.values().data(), v.ba.words().data(),
                                 v.mask.words().data(), dim),
                   ref_masked_dot(v.ra, v.ba, v.mask));
  EXPECT_EQ(kb.hamming(v.ba.words().data(), v.bb.words().data(), v.ba.word_count()),
            ref_hamming(v.ba, v.bb));
  EXPECT_EQ(kb.masked_bipolar_dot(v.ba.words().data(), v.bb.words().data(),
                                  v.mask.words().data(), v.ba.word_count()),
            ref_masked_bipolar_dot(v.ba, v.bb, v.mask));

  double ref_rr = 0.0;
  double ref_rp = 0.0;
  std::int64_t ref_pp = 0;
  for (std::size_t i = 0; i < dim; ++i) {
    ref_rr += v.ra[i] * v.rb[i];
    ref_rp += v.ra[i] * static_cast<double>(v.pa[i]);
    ref_pp += static_cast<std::int64_t>(v.pa[i]) * static_cast<std::int64_t>(v.pb[i]);
  }
  EXPECT_DOUBLE_EQ(kb.dot_real_real(v.ra.values().data(), v.rb.values().data(), dim),
                   ref_rr);
  EXPECT_DOUBLE_EQ(kb.dot_real_bipolar(v.ra.values().data(), v.pa.values().data(), dim),
                   ref_rp);
  EXPECT_EQ(kb.bipolar_dot_dense(v.pa.values().data(), v.pb.values().data(), dim), ref_pp);
}

TEST_P(KernelBackendTest, SimdBackendsMatchScalar) {
  if (simd_backends().empty()) {
    GTEST_SKIP() << "no SIMD backend available on this host/build";
  }
  const std::size_t dim = GetParam();
  const TestVectors v = make_vectors(dim, 0xA0B2 + dim);
  const KernelBackend& sc = scalar_backend();

  for (const KernelBackend* kb : simd_backends()) {
    // Integer kernels: bit-exact across backends.
    EXPECT_EQ(kb->hamming(v.ba.words().data(), v.bb.words().data(), v.ba.word_count()),
              sc.hamming(v.ba.words().data(), v.bb.words().data(), v.ba.word_count()))
        << kb->name;
    EXPECT_EQ(kb->masked_bipolar_dot(v.ba.words().data(), v.bb.words().data(),
                                     v.mask.words().data(), v.ba.word_count()),
              sc.masked_bipolar_dot(v.ba.words().data(), v.bb.words().data(),
                                    v.mask.words().data(), v.ba.word_count()))
        << kb->name;
    EXPECT_EQ(kb->bipolar_dot_dense(v.pa.values().data(), v.pb.values().data(), dim),
              sc.bipolar_dot_dense(v.pa.values().data(), v.pb.values().data(), dim))
        << kb->name;

    // Real kernels: summation order may differ; values must agree to 1e-9
    // relative.
    expect_close(kb->dot_real_real(v.ra.values().data(), v.rb.values().data(), dim),
                 sc.dot_real_real(v.ra.values().data(), v.rb.values().data(), dim));
    expect_close(kb->dot_real_bipolar(v.ra.values().data(), v.pa.values().data(), dim),
                 sc.dot_real_bipolar(v.ra.values().data(), v.pa.values().data(), dim));
    expect_close(kb->dot_real_binary(v.ra.values().data(), v.ba.words().data(), dim),
                 sc.dot_real_binary(v.ra.values().data(), v.ba.words().data(), dim));
    expect_close(kb->masked_dot(v.ra.values().data(), v.ba.words().data(),
                                v.mask.words().data(), dim),
                 sc.masked_dot(v.ra.values().data(), v.ba.words().data(),
                               v.mask.words().data(), dim));
  }
}

TEST_P(KernelBackendTest, AccumulationMatchesScalarBitExact) {
  if (simd_backends().empty()) {
    GTEST_SKIP() << "no SIMD backend available on this host/build";
  }
  const std::size_t dim = GetParam();
  const TestVectors v = make_vectors(dim, 0xACC + dim);
  const double c = 0.37;
  const KernelBackend& sc = scalar_backend();

  for (const KernelBackend* kb : simd_backends()) {
    // add_scaled touches each slot independently (no cross-lane
    // accumulation), so every backend must produce bit-identical results.
    // scale_real likewise.
    std::vector<double> sc_buf(v.ra.values().begin(), v.ra.values().end());
    std::vector<double> vx_buf = sc_buf;

    sc.add_scaled_real(sc_buf.data(), v.rb.values().data(), c, dim);
    kb->add_scaled_real(vx_buf.data(), v.rb.values().data(), c, dim);
    EXPECT_EQ(sc_buf, vx_buf) << kb->name;

    sc.add_scaled_bipolar(sc_buf.data(), v.pa.values().data(), c, dim);
    kb->add_scaled_bipolar(vx_buf.data(), v.pa.values().data(), c, dim);
    EXPECT_EQ(sc_buf, vx_buf) << kb->name;

    sc.add_scaled_binary(sc_buf.data(), v.ba.words().data(), c, dim);
    kb->add_scaled_binary(vx_buf.data(), v.ba.words().data(), c, dim);
    EXPECT_EQ(sc_buf, vx_buf) << kb->name;

    // merge_accumulate (acc += rep − base) is likewise per-component — the
    // shard-merge order-invariance proofs rely on it being bit-identical.
    sc.merge_accumulate(sc_buf.data(), v.rb.values().data(), v.ra.values().data(), dim);
    kb->merge_accumulate(vx_buf.data(), v.rb.values().data(), v.ra.values().data(), dim);
    EXPECT_EQ(sc_buf, vx_buf) << kb->name;

    sc.scale_real(sc_buf.data(), 0.91, dim);
    kb->scale_real(vx_buf.data(), 0.91, dim);
    EXPECT_EQ(sc_buf, vx_buf) << kb->name;
  }
}

TEST_P(KernelBackendTest, TrigMapMatchesScalarBitExact) {
  // The RFF trig map must be bit-identical across backends — the encoder's
  // binarization would otherwise flip sign bits between REGHD_KERNEL
  // settings. The scalar kernel itself must match the plain fast_sin formula.
  const std::size_t dim = GetParam();
  util::Rng rng(0x7816 + dim);
  std::vector<double> z(dim);
  std::vector<double> phase(dim);
  std::vector<double> sin_phase(dim);
  for (std::size_t j = 0; j < dim; ++j) {
    z[j] = rng.normal(0.0, 3.0);
    phase[j] = rng.phase();
    sin_phase[j] = util::fast_sin(phase[j]);
  }
  if (dim >= 64) {
    // Poke lanes into the std::sin fallback path (|2z+b| ≥ 2^30), mixed into
    // otherwise in-range groups of four.
    z[1] = 3.0e9;
    z[17] = -7.5e11;
  }

  std::vector<double> sc_buf = z;
  scalar_backend().rff_trig_map(sc_buf.data(), phase.data(), sin_phase.data(), dim);
  for (std::size_t j = 0; j < dim; ++j) {
    EXPECT_EQ(sc_buf[j], 0.5 * (util::fast_sin(2.0 * z[j] + phase[j]) - sin_phase[j]))
        << "j = " << j;
  }

  for (const KernelBackend* kb : simd_backends()) {
    std::vector<double> vx_buf = z;
    kb->rff_trig_map(vx_buf.data(), phase.data(), sin_phase.data(), dim);
    EXPECT_EQ(sc_buf, vx_buf) << kb->name;
  }
}

TEST_P(KernelBackendTest, GemmAccumulateMatchesAxpyChainBitExact) {
  // gemm_accumulate is contracted to reproduce the per-row axpy chain of the
  // RFF encoder (ascending k, separate multiply then add) bit-for-bit, on
  // every backend — cache blocking may only reorder independent outputs,
  // never a single reduction.
  const std::size_t n = GetParam();
  util::Rng rng(0x63E7 + n);
  constexpr std::size_t kRows = 3;
  constexpr std::size_t kInner = 5;
  std::vector<double> a(kRows * kInner);
  std::vector<double> b(kInner * n);
  std::vector<double> c0(kRows * n);
  for (double& x : a) {
    x = rng.normal(0.0, 1.0);
  }
  for (double& x : b) {
    x = rng.normal(0.0, 1.0);
  }
  for (double& x : c0) {
    x = rng.normal(0.0, 1.0);
  }

  const KernelBackend& sc = scalar_backend();
  std::vector<double> ref = c0;
  for (std::size_t r = 0; r < kRows; ++r) {
    for (std::size_t k = 0; k < kInner; ++k) {
      sc.add_scaled_real(ref.data() + r * n, b.data() + k * n, a[r * kInner + k], n);
    }
  }

  std::vector<double> out = c0;
  sc.gemm_accumulate(a.data(), kInner, b.data(), n, out.data(), n, kRows, kInner, n);
  EXPECT_EQ(out, ref);

  for (const KernelBackend* kb : simd_backends()) {
    std::vector<double> vx = c0;
    kb->gemm_accumulate(a.data(), kInner, b.data(), n, vx.data(), n, kRows, kInner, n);
    EXPECT_EQ(vx, ref) << kb->name;
  }
}

TEST_P(KernelBackendTest, DotRowsMatchesPerRowDotExactly) {
  // Each dot_rows output must be reduced in exactly its backend's
  // dot_real_real order (the batch-vs-per-row EXPECT_EQ tests in core/ rely
  // on this), including the odd trailing row of the paired-row AVX2 kernel.
  const std::size_t n = GetParam();
  util::Rng rng(0xD075 + n);
  constexpr std::size_t kRows = 5;  // odd: exercises the unpaired final row
  std::vector<double> q(n);
  std::vector<double> bank(kRows * n);
  for (double& x : q) {
    x = rng.normal(0.0, 1.0);
  }
  for (double& x : bank) {
    x = rng.normal(0.0, 1.0);
  }

  for (const KernelBackend* kb : all_available()) {
    std::vector<double> out(kRows);
    kb->dot_rows(q.data(), bank.data(), n, kRows, n, out.data());
    for (std::size_t r = 0; r < kRows; ++r) {
      EXPECT_EQ(out[r], kb->dot_real_real(bank.data() + r * n, q.data(), n))
          << kb->name << " row " << r;
    }
  }
}

TEST_P(KernelBackendTest, DotRowsBlockMatchesDotRowsExactly) {
  // The fused single-query path feeds dot_rows_block one L1-sized slice of
  // the query at a time; the contract is that any split into 64-multiple
  // blocks reproduces the backend's own dot_rows output bit-for-bit, because
  // the carried state preserves each row's lane-accumulator phase across
  // block boundaries.
  const std::size_t n = GetParam();
  util::Rng rng(0xB10C + n);
  constexpr std::size_t kRows = 5;
  std::vector<double> q(n);
  std::vector<double> bank(kRows * n);
  for (double& x : q) {
    x = rng.normal(0.0, 1.0);
  }
  for (double& x : bank) {
    x = rng.normal(0.0, 1.0);
  }

  for (const KernelBackend* kb : all_available()) {
    std::vector<double> want(kRows);
    kb->dot_rows(q.data(), bank.data(), n, kRows, n, want.data());

    for (const std::size_t block : {std::size_t{64}, std::size_t{128},
                                    std::size_t{1024}, n}) {
      if (block == 0) {
        continue;
      }
      std::vector<double> state(kRows * kDotRowsBlockState, 0.0);
      std::vector<double> out(kRows, -12345.0);
      std::vector<const double*> rows(kRows);
      std::size_t j0 = 0;
      while (true) {
        const std::size_t len = std::min(block, n - j0);
        const bool last = j0 + len == n;
        for (std::size_t r = 0; r < kRows; ++r) {
          rows[r] = bank.data() + r * n + j0;
        }
        kb->dot_rows_block(q.data() + j0, rows.data(), kRows, len, last,
                           state.data(), out.data());
        j0 += len;
        if (last) {
          break;
        }
      }
      for (std::size_t r = 0; r < kRows; ++r) {
        EXPECT_EQ(out[r], want[r])
            << kb->name << " block " << block << " row " << r;
      }
    }

    // A single last=true call is the degenerate one-block split: exactly
    // dot_real_real per row.
    std::vector<double> state(kRows * kDotRowsBlockState, 0.0);
    std::vector<double> out(kRows, -12345.0);
    std::vector<const double*> rows(kRows);
    for (std::size_t r = 0; r < kRows; ++r) {
      rows[r] = bank.data() + r * n;
    }
    kb->dot_rows_block(q.data(), rows.data(), kRows, n, true, state.data(),
                       out.data());
    for (std::size_t r = 0; r < kRows; ++r) {
      EXPECT_EQ(out[r], kb->dot_real_real(bank.data() + r * n, q.data(), n))
          << kb->name << " row " << r;
    }
  }
}

TEST_P(KernelBackendTest, DotRowsBinaryMatchesPerRowHammingChainExactly) {
  // out[r] = n − 2·popcount(q XOR row) — integer-exact, so every backend must
  // agree bit-for-bit with the per-row hamming/bipolar_dot chain (the
  // quantized predict_batch bank scan in core/ relies on recovering the exact
  // Hamming distance as (n − out[r]) / 2). Rows include the query itself
  // (distance 0) and its complement-within-dim (distance n) as extremes.
  const std::size_t n = GetParam();
  util::Rng rng(0xB17B + n);
  const std::size_t words = (n + 63) / 64;
  constexpr std::size_t kRows = 5;  // odd: exercises the unpaired final row
  const BinaryHV q = random_binary(n, rng);

  std::vector<std::vector<std::uint64_t>> rows;
  rows.emplace_back(q.words().begin(), q.words().end());  // distance 0
  {
    // Complement within dim (distance n); padding bits stay zero.
    std::vector<std::uint64_t> comp(q.words().begin(), q.words().end());
    for (std::uint64_t& w : comp) {
      w = ~w;
    }
    if (n % 64 != 0) {
      comp.back() &= ~0ULL >> (64 - n % 64);
    }
    rows.push_back(std::move(comp));
  }
  while (rows.size() < kRows) {
    const BinaryHV r = random_binary(n, rng);
    rows.emplace_back(r.words().begin(), r.words().end());
  }

  std::vector<std::uint64_t> bank(kRows * words);
  for (std::size_t r = 0; r < kRows; ++r) {
    std::copy(rows[r].begin(), rows[r].end(), bank.begin() + r * words);
  }

  for (const KernelBackend* kb : all_available()) {
    std::vector<std::int64_t> out(kRows, -12345);
    kb->dot_rows_binary(q.words().data(), bank.data(), words, kRows, n, out.data());
    for (std::size_t r = 0; r < kRows; ++r) {
      // Per-row chain: backend hamming kernel, then d = n − 2h; and the
      // library-level bipolar_dot over views of the same words.
      const std::int64_t h =
          kb->hamming(bank.data() + r * words, q.words().data(), words);
      EXPECT_EQ(out[r], static_cast<std::int64_t>(n) - 2 * h) << kb->name << " row " << r;
      EXPECT_EQ(out[r],
                bipolar_dot(BinaryHVView(n, {bank.data() + r * words, words}),
                            BinaryHVView(n, q.words())))
          << kb->name << " row " << r;
    }
    EXPECT_EQ(out[0], static_cast<std::int64_t>(n)) << kb->name << " self-dot";
    EXPECT_EQ(out[1], -static_cast<std::int64_t>(n)) << kb->name << " complement dot";
  }
}

TEST_P(KernelBackendTest, SignEncodeMatchesSignThenPackBitExact) {
  // sign_encode fuses RealHV::sign() + BipolarHV::pack(): bipolar −1 iff
  // v < 0 (so ±0 and NaN map to +1 / set bit) and zero padding bits. Must be
  // bit-exact on every backend.
  const std::size_t dim = GetParam();
  util::Rng rng(0x5167 + dim);
  RealHV v = random_gaussian(dim, rng);
  if (dim >= 4) {
    v[0] = 0.0;
    v[1] = -0.0;
    v[2] = std::nan("");
  }
  const BipolarHV expected_bipolar = v.sign();
  const BinaryHV expected_binary = expected_bipolar.pack();

  for (const KernelBackend* kb : all_available()) {
    std::vector<std::int8_t> bipolar(dim, 0);
    // Poison the word buffer: sign_encode must fully overwrite every word,
    // including zeroing the padding bits of the final one.
    std::vector<std::uint64_t> bits((dim + 63) / 64, ~0ULL);
    kb->sign_encode(v.values().data(), bipolar.data(), bits.data(), dim);
    EXPECT_TRUE(std::equal(bipolar.begin(), bipolar.end(),
                           expected_bipolar.values().begin()))
        << kb->name;
    EXPECT_TRUE(
        std::equal(bits.begin(), bits.end(), expected_binary.words().begin()))
        << kb->name;
  }
}

TEST_P(KernelBackendTest, DotRowsTernaryMatchesMaskedBipolarDotExactly) {
  // out[r] = Σ_{mask bit j set} signs_r[j]·q[j] over ±1 values — the packed
  // ternary bank scan. Integer-exact on every backend, and a full-mask row
  // must degenerate to the dot_rows_binary score of the same sign plane.
  const std::size_t n = GetParam();
  util::Rng rng(0x7E12 + n);
  const std::size_t words = (n + 63) / 64;
  constexpr std::size_t kRows = 5;  // odd: exercises any row pairing/tail
  const BinaryHV q = random_binary(n, rng);

  std::vector<BinaryHV> signs;
  std::vector<BinaryHV> masks;
  // Row 0: the query under a full mask (score n). Row 1: its
  // complement-within-dim under a full mask (score −n). Row 2: an all-zero
  // mask (score 0 no matter the signs). Rest: random signs and masks.
  signs.push_back(q);
  {
    BinaryHV full(n);
    for (std::uint64_t& w : full.words()) {
      w = ~0ULL;
    }
    if (n % 64 != 0) {
      full.words().back() &= ~0ULL >> (64 - n % 64);
    }
    masks.push_back(std::move(full));
  }
  {
    std::vector<std::uint64_t> comp(q.words().begin(), q.words().end());
    for (std::uint64_t& w : comp) {
      w = ~w;
    }
    if (n % 64 != 0) {
      comp.back() &= ~0ULL >> (64 - n % 64);
    }
    BinaryHV c(n);
    std::copy(comp.begin(), comp.end(), c.words().begin());
    signs.push_back(std::move(c));
    masks.push_back(masks[0]);
  }
  signs.push_back(random_binary(n, rng));
  masks.emplace_back(n);  // all-zero mask
  while (signs.size() < kRows) {
    signs.push_back(random_binary(n, rng));
    masks.push_back(random_binary(n, rng));
  }

  std::vector<std::uint64_t> sign_bank(kRows * words);
  std::vector<std::uint64_t> mask_bank(kRows * words);
  for (std::size_t r = 0; r < kRows; ++r) {
    std::copy(signs[r].words().begin(), signs[r].words().end(),
              sign_bank.begin() + r * words);
    std::copy(masks[r].words().begin(), masks[r].words().end(),
              mask_bank.begin() + r * words);
  }

  std::vector<std::int64_t> scalar_out;
  for (const KernelBackend* kb : all_available()) {
    std::vector<std::int64_t> out(kRows, -12345);
    kb->dot_rows_ternary(q.words().data(), sign_bank.data(), mask_bank.data(), words,
                         kRows, n, out.data());
    for (std::size_t r = 0; r < kRows; ++r) {
      EXPECT_EQ(out[r], ref_masked_bipolar_dot(signs[r], q, masks[r]))
          << kb->name << " row " << r;
      EXPECT_EQ(out[r], kb->masked_bipolar_dot(sign_bank.data() + r * words,
                                               q.words().data(),
                                               mask_bank.data() + r * words, words))
          << kb->name << " row " << r;
    }
    EXPECT_EQ(out[0], static_cast<std::int64_t>(n)) << kb->name << " self-dot";
    EXPECT_EQ(out[1], -static_cast<std::int64_t>(n)) << kb->name << " complement";
    EXPECT_EQ(out[2], 0) << kb->name << " all-masked row";
    if (kb == &scalar_backend()) {
      scalar_out = out;
    } else {
      EXPECT_EQ(out, scalar_out) << kb->name << " cross-backend mismatch";
    }
  }
}

TEST_P(KernelBackendTest, RffRematerializeMatchesScalarBitExact) {
  // Counter-based projection regeneration must be bit-identical across
  // backends — the encoder's bit-exactness contract (resident and
  // rematerialized storage produce the same encodings on any backend) rests
  // on this. Odd feature counts exercise the unpaired Box–Muller draw.
  if (simd_backends().empty()) {
    GTEST_SKIP() << "no SIMD backend available on this host/build";
  }
  const std::size_t rows = std::min<std::size_t>(GetParam(), 200);
  for (const KernelBackend* kb : simd_backends()) {
    for (const std::size_t n_features : {1u, 2u, 7u, 10u}) {
      std::vector<double> want(n_features * rows, -7.0);
      std::vector<double> got(n_features * rows, 7.0);
      scalar_backend().rff_rematerialize(0x5EED, 0.316, 3, rows, n_features,
                                         want.data(), rows);
      kb->rff_rematerialize(0x5EED, 0.316, 3, rows, n_features, got.data(), rows);
      for (std::size_t i = 0; i < want.size(); ++i) {
        ASSERT_EQ(want[i], got[i])
            << kb->name << " n_features " << n_features << " elem " << i;
      }
    }
  }
}

TEST(RffRematDotTest, MatchesRematerializePlusDotBitExact) {
  // The fused single-query kernel must produce the exact doubles of the
  // unfused pair: rematerialize the weight tile, then reduce each row with an
  // ascending-k mul-then-add chain from 0.0. That chain is the accumulation
  // order encode_real_block's materializing path uses, so bit-equality here is
  // what lets the encoder swap in the fused kernel without changing a single
  // output bit. Row counts straddle the 4- and 8-lane vector tails, feature
  // counts include the odd (unpaired Box–Muller) case, and row0 offsets prove
  // the counter-seeking is absolute, not tile-relative.
  constexpr std::uint64_t kSeed = 0xFACE5EED;
  constexpr double kStddev = 0.479;
  for (const std::size_t n_features : {1u, 2u, 7u, 10u}) {
    std::vector<double> x(n_features);
    for (std::size_t k = 0; k < n_features; ++k) {
      x[k] = 0.25 * static_cast<double>(k + 1) - 1.0;
    }
    for (const std::size_t row0 : {0u, 3u, 128u}) {
      for (const std::size_t rows : {1u, 5u, 8u, 16u, 37u, 64u}) {
        // Reference: scalar tile + plain mul-then-add reduction.
        std::vector<double> tile(n_features * rows);
        scalar_backend().rff_rematerialize(kSeed, kStddev, row0, rows,
                                           n_features, tile.data(), rows);
        std::vector<double> want(rows, 0.0);
        for (std::size_t k = 0; k < n_features; ++k) {
          for (std::size_t r = 0; r < rows; ++r) {
            want[r] += x[k] * tile[k * rows + r];
          }
        }
        for (const KernelBackend* kb : all_available()) {
          std::vector<double> got(rows, -99.0);
          kb->rff_remat_dot(kSeed, kStddev, row0, rows, x.data(), n_features,
                            got.data());
          for (std::size_t r = 0; r < rows; ++r) {
            ASSERT_EQ(want[r], got[r])
                << kb->name << " n_features " << n_features << " row0 " << row0
                << " rows " << rows << " row " << r;
          }
        }
      }
    }
  }
}

TEST(RffRematerializeTest, TilingIsInvariant) {
  // Any (row0, rows) tiling must reproduce the exact bytes of one full-range
  // call — each row's stream is derived from (seed, absolute row index), so
  // the encoder may regenerate in whatever tile size fits its cache budget.
  constexpr std::size_t kRows = 97;
  constexpr std::size_t kFeatures = 9;
  for (const KernelBackend* kb : all_available()) {
    std::vector<double> full(kFeatures * kRows);
    kb->rff_rematerialize(42, 1.5, 0, kRows, kFeatures, full.data(), kRows);
    for (const std::size_t tile : {1, 5, 16, 64}) {
      for (std::size_t r0 = 0; r0 < kRows; r0 += tile) {
        const std::size_t rn = std::min(kRows, r0 + tile);
        std::vector<double> part(kFeatures * (rn - r0));
        kb->rff_rematerialize(42, 1.5, r0, rn - r0, kFeatures, part.data(), rn - r0);
        for (std::size_t k = 0; k < kFeatures; ++k) {
          for (std::size_t r = r0; r < rn; ++r) {
            ASSERT_EQ(part[k * (rn - r0) + (r - r0)], full[k * kRows + r])
                << kb->name << " tile " << tile << " row " << r << " feature " << k;
          }
        }
      }
    }
  }
}

TEST(RffRematerializeTest, ScalesLinearlyWithStddevAndLooksGaussian) {
  // Weights are draws·stddev, so stddev only rescales the stream; and over
  // many rows the draws must look like the N(0, 1) Box–Muller output.
  constexpr std::size_t kRows = 4096;
  constexpr std::size_t kFeatures = 4;
  std::vector<double> unit(kFeatures * kRows);
  std::vector<double> half(kFeatures * kRows);
  scalar_backend().rff_rematerialize(7, 1.0, 0, kRows, kFeatures, unit.data(), kRows);
  scalar_backend().rff_rematerialize(7, 0.5, 0, kRows, kFeatures, half.data(), kRows);
  double sum = 0.0;
  double sum2 = 0.0;
  for (std::size_t i = 0; i < unit.size(); ++i) {
    ASSERT_EQ(half[i], unit[i] * 0.5) << "elem " << i;
    sum += unit[i];
    sum2 += unit[i] * unit[i];
  }
  const double count = static_cast<double>(unit.size());
  const double mean = sum / count;
  const double var = sum2 / count - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(PackingEdgeCases, KernelBackendTest, ::testing::ValuesIn(kDims),
                         [](const auto& param_info) {
                           return "dim" + std::to_string(param_info.param);
                         });

TEST(KernelDispatchTest, BackendByNameResolvesKnownNames) {
  const KernelBackend* scalar = backend_by_name("scalar");
  ASSERT_NE(scalar, nullptr);
  EXPECT_STREQ(scalar->name, "scalar");

  const KernelBackend* avx2 = backend_by_name("avx2");
  if (cpu_supports_avx2() && avx2_backend() != nullptr) {
    ASSERT_NE(avx2, nullptr);
    EXPECT_STREQ(avx2->name, "avx2");
  } else {
    EXPECT_EQ(avx2, nullptr);
  }

  const KernelBackend* avx512 = backend_by_name("avx512");
  if (avx512_backend() != nullptr) {
    ASSERT_NE(avx512, nullptr);
    EXPECT_STREQ(avx512->name, "avx512");
  } else {
    EXPECT_EQ(avx512, nullptr);
  }

  const KernelBackend* neon = backend_by_name("neon");
  if (neon_backend() != nullptr) {
    ASSERT_NE(neon, nullptr);
    EXPECT_STREQ(neon->name, "neon");
  } else {
    EXPECT_EQ(neon, nullptr);
  }

  EXPECT_EQ(backend_by_name("sse9"), nullptr);
  EXPECT_EQ(backend_by_name(""), nullptr);
}

TEST(KernelDispatchTest, AvailableBackendsListsScalarFirstAndRunnableTablesOnly) {
  const BackendList list = available_backends();
  ASSERT_GE(list.count, 1u);
  EXPECT_EQ(list.tables[0], &scalar_backend());
  for (std::size_t i = 0; i < list.count; ++i) {
    ASSERT_NE(list.tables[i], nullptr) << "slot " << i;
    // Every listed table must be reachable by name and report sane lanes.
    EXPECT_EQ(backend_by_name(list.tables[i]->name), list.tables[i])
        << list.tables[i]->name;
    EXPECT_GE(list.tables[i]->f64_lanes, 1u) << list.tables[i]->name;
  }
  // The optional tables appear iff their accessor says they are runnable.
  const bool has_avx2 =
      std::find(list.tables, list.tables + list.count, avx2_backend()) !=
      list.tables + list.count;
  EXPECT_EQ(has_avx2, avx2_backend() != nullptr);
  const bool has_avx512 =
      std::find(list.tables, list.tables + list.count, avx512_backend()) !=
      list.tables + list.count;
  EXPECT_EQ(has_avx512, avx512_backend() != nullptr);
}

TEST(KernelDispatchTest, ActiveBackendIsOneOfTheTables) {
  const std::string name = active_backend().name;
  EXPECT_TRUE(name == "scalar" || name == "avx2" || name == "avx512" ||
              name == "neon")
      << "unexpected backend " << name;
  // Whatever won dispatch must be one of the runtime-available tables.
  const BackendList list = available_backends();
  EXPECT_NE(std::find(list.tables, list.tables + list.count, &active_backend()),
            list.tables + list.count)
      << "active backend " << name << " not in available_backends()";
  // REGHD_KERNEL=scalar must force the portable table (the CI scalar job
  // runs the whole suite this way).
  if (const char* env = std::getenv("REGHD_KERNEL")) {
    if (std::string(env) == "scalar") {
      EXPECT_EQ(&active_backend(), &scalar_backend());
    }
  }
}

TEST(KernelDispatchTest, ResolveBackendRequestEnumeratesAvailableBackends) {
  // A known, runnable name resolves without a message.
  std::string message = "unset";
  EXPECT_EQ(resolve_backend_request("scalar", &message), &scalar_backend());
  EXPECT_EQ(message, "unset");

  // An unknown name fails with a diagnostic that names the request and
  // enumerates exactly the backends this host can actually run, in dispatch
  // listing order — so an operator who typos REGHD_KERNEL sees what their
  // machine supports, not a generic error.
  EXPECT_EQ(resolve_backend_request("sse9", &message), nullptr);
  EXPECT_NE(message.find("REGHD_KERNEL=sse9"), std::string::npos) << message;
  std::string expected_list;
  const BackendList list = available_backends();
  for (std::size_t i = 0; i < list.count; ++i) {
    if (i > 0) {
      expected_list += ", ";
    }
    expected_list += list.tables[i]->name;
  }
  EXPECT_NE(message.find("available: " + expected_list), std::string::npos)
      << message;
  EXPECT_NE(message.find("falling back to the scalar backend"), std::string::npos)
      << message;

  // A known-but-unavailable name gets the same enumerating diagnostic (e.g.
  // "neon" on x86, "avx512" on an older core).
  const char* unavailable =
      neon_backend() == nullptr ? "neon"
      : avx512_backend() == nullptr ? "avx512"
                                    : nullptr;
  if (unavailable != nullptr) {
    message.clear();
    EXPECT_EQ(resolve_backend_request(unavailable, &message), nullptr);
    EXPECT_NE(message.find("available: " + expected_list), std::string::npos)
        << message;
  }

  // A null message sink must be tolerated (the dispatcher's stderr path owns
  // the formatting).
  EXPECT_EQ(resolve_backend_request("sse9", nullptr), nullptr);
}

TEST(KernelDispatchTest, OpsRouteThroughActiveBackend) {
  // End-to-end sanity: the ops-layer entry points agree with naive
  // references regardless of which backend is live.
  const std::size_t dim = 1000;
  const TestVectors v = make_vectors(dim, 0x0975);
  expect_close(dot(v.ra, v.ba), ref_dot_real_binary(v.ra, v.ba));
  expect_close(masked_dot(v.ra, v.ba, v.mask), ref_masked_dot(v.ra, v.ba, v.mask));
  EXPECT_EQ(static_cast<std::int64_t>(hamming_distance(v.ba, v.bb)),
            ref_hamming(v.ba, v.bb));
  EXPECT_EQ(masked_bipolar_dot(v.ba, v.bb, v.mask),
            ref_masked_bipolar_dot(v.ba, v.bb, v.mask));
}

}  // namespace
}  // namespace reghd::hdc
