// Tests for the streaming OnlineRegHD learner: prequential learning,
// adaptive scaling, warm-up behaviour, and drift adaptation via decay.
#include <gtest/gtest.h>

#include <cmath>

#include "core/online.hpp"
#include "data/synthetic.hpp"
#include "util/random.hpp"

namespace reghd::core {
namespace {

OnlineConfig small_config(std::size_t dim = 1024, std::size_t models = 4) {
  OnlineConfig cfg;
  cfg.reghd.dim = dim;
  cfg.reghd.models = models;
  cfg.reghd.seed = 5;
  cfg.encoder.seed = 5;
  return cfg;
}

/// Prequential MSE over a window of the stream.
double window_mse(OnlineRegHD& learner, const data::Dataset& stream, std::size_t begin,
                  std::size_t end) {
  double acc = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    const double p = learner.update(stream.row(i), stream.target(i));
    const double e = p - stream.target(i);
    acc += e * e;
  }
  return acc / static_cast<double>(end - begin);
}

TEST(OnlineRegHDTest, PrequentialErrorDecreasesOverTheStream) {
  const data::Dataset stream = data::make_friedman1(3000, 11);
  OnlineRegHD learner(small_config(), stream.num_features());
  const double early = window_mse(learner, stream, 0, 500);
  (void)window_mse(learner, stream, 500, 2500);  // keep consuming the stream
  const double late = window_mse(learner, stream, 2500, 3000);
  EXPECT_LT(late, 0.6 * early);
  EXPECT_EQ(learner.samples_seen(), 3000u);
}

TEST(OnlineRegHDTest, PredictionsInOriginalUnits) {
  const data::Dataset stream = data::make_friedman1(2000, 13);  // targets ≈ [0, 30]
  OnlineRegHD learner(small_config(), stream.num_features());
  (void)window_mse(learner, stream, 0, 1500);
  double mean_pred = 0.0;
  for (std::size_t i = 1500; i < 1600; ++i) {
    mean_pred += learner.predict(stream.row(i));
  }
  mean_pred /= 100.0;
  EXPECT_GT(mean_pred, 5.0);
  EXPECT_LT(mean_pred, 25.0);
}

TEST(OnlineRegHDTest, WarmupReturnsRunningMean) {
  const data::Dataset stream = data::make_friedman1(100, 17);
  auto cfg = small_config();
  cfg.warmup = 20;
  OnlineRegHD learner(cfg, stream.num_features());
  // First prediction before any label: 0 (no statistics at all).
  EXPECT_DOUBLE_EQ(learner.predict(stream.row(0)), 0.0);
  (void)learner.update(stream.row(0), stream.target(0));
  // During warm-up the prediction is the running target mean.
  EXPECT_DOUBLE_EQ(learner.predict(stream.row(1)), stream.target(0));
}

TEST(OnlineRegHDTest, RecoversFromConceptDrift) {
  // One abrupt teacher change halfway. Prequential error must spike at the
  // drift point and return near the pre-drift level after adaptation — the
  // normalized-LMS update is inherently tracking, so recovery is fast.
  const data::Dataset stream =
      data::make_drift_stream(4000, 6, {2000}, 19, 0.02);
  OnlineRegHD learner(small_config(), stream.num_features());
  (void)window_mse(learner, stream, 0, 1500);
  const double pre_drift = window_mse(learner, stream, 1500, 2000);
  const double at_drift = window_mse(learner, stream, 2000, 2300);
  (void)window_mse(learner, stream, 2300, 3200);
  const double recovered = window_mse(learner, stream, 3200, 4000);
  EXPECT_GT(at_drift, 2.0 * pre_drift);        // the drift is visible
  EXPECT_LT(recovered, 0.5 * at_drift);        // and the learner adapts
}

TEST(OnlineRegHDTest, QuantizedStreamingStaysHealthy) {
  auto cfg = small_config();
  cfg.reghd.cluster_mode = ClusterMode::kQuantized;
  cfg.reghd.query_precision = QueryPrecision::kBinary;
  cfg.requantize_every = 64;
  const data::Dataset stream = data::make_friedman1(2500, 23);
  OnlineRegHD learner(cfg, stream.num_features());
  const double early = window_mse(learner, stream, 0, 500);
  const double late = window_mse(learner, stream, 2000, 2500);
  EXPECT_LT(late, early);
  EXPECT_TRUE(std::isfinite(late));
}

TEST(OnlineRegHDTest, WithoutAdaptiveScalingRawUnitsFlowThrough) {
  // Friedman features are already in [0, 1]; disabling scaling must still
  // learn (the encoder handles the raw range).
  auto cfg = small_config();
  cfg.adaptive_scaling = false;
  const data::Dataset stream = data::make_friedman1(2500, 29);
  OnlineRegHD learner(cfg, stream.num_features());
  const double early = window_mse(learner, stream, 0, 500);
  const double late = window_mse(learner, stream, 2000, 2500);
  EXPECT_LT(late, early);
}

TEST(OnlineRegHDTest, ValidatesConfigurationAndInput) {
  EXPECT_THROW(OnlineRegHD(small_config(), 0), std::invalid_argument);
  auto cfg = small_config();
  cfg.decay = 0.0;
  EXPECT_THROW(OnlineRegHD(cfg, 3), std::invalid_argument);
  cfg = small_config();
  cfg.decay = 1.5;
  EXPECT_THROW(OnlineRegHD(cfg, 3), std::invalid_argument);

  OnlineRegHD learner(small_config(), 3);
  EXPECT_THROW((void)learner.update(std::vector<double>{1.0}, 2.0), std::invalid_argument);
}

TEST(OnlineRegHDTest, DeterministicForFixedSeed) {
  const data::Dataset stream = data::make_friedman1(500, 31);
  OnlineRegHD a(small_config(), stream.num_features());
  OnlineRegHD b(small_config(), stream.num_features());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.update(stream.row(i), stream.target(i)),
                     b.update(stream.row(i), stream.target(i)));
  }
}

}  // namespace
}  // namespace reghd::core
