// Tests for the permutation-bound temporal (sequence) encoder.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "hdc/encoding.hpp"
#include "hdc/ops.hpp"
#include "util/random.hpp"

namespace reghd::hdc {
namespace {

EncoderConfig temporal_config(std::size_t window = 8, std::size_t dim = 2048) {
  EncoderConfig cfg;
  cfg.kind = EncoderKind::kTemporal;
  cfg.input_dim = window;
  cfg.dim = dim;
  cfg.seed = 42;
  cfg.levels = 32;
  cfg.level_min = -3.0;
  cfg.level_max = 3.0;
  return cfg;
}

std::vector<double> random_window(std::size_t n, util::Rng& rng) {
  std::vector<double> w(n);
  for (double& v : w) {
    v = rng.normal();
  }
  return w;
}

TEST(TemporalEncoderTest, FactoryAndNameRoundTrip) {
  EXPECT_EQ(encoder_kind_from_string("temporal"), EncoderKind::kTemporal);
  EXPECT_EQ(to_string(EncoderKind::kTemporal), "temporal");
  const auto enc = make_encoder(temporal_config());
  EXPECT_EQ(enc->dim(), 2048u);
  EXPECT_EQ(enc->input_dim(), 8u);
}

TEST(TemporalEncoderTest, OrderSensitivity) {
  // The same values in a different order must land far away — this is what
  // the position permutation adds over plain bundling.
  const auto enc = make_encoder(temporal_config());
  util::Rng rng(1);
  const std::vector<double> window = {-2.0, -1.0, 0.0, 1.0, 2.0, 1.0, 0.0, -1.0};
  std::vector<double> reversed(window.rbegin(), window.rend());
  const double self_sim = cosine(enc->encode(window).real, enc->encode(window).real);
  const double rev_sim = cosine(enc->encode(window).real, enc->encode(reversed).real);
  EXPECT_NEAR(self_sim, 1.0, 1e-12);
  EXPECT_LT(rev_sim, 0.8);
}

TEST(TemporalEncoderTest, SmallValueChangesStaySimilar) {
  const auto enc = make_encoder(temporal_config());
  util::Rng rng(3);
  const std::vector<double> window = random_window(8, rng);
  std::vector<double> nudged = window;
  for (double& v : nudged) {
    v += 0.05;
  }
  std::vector<double> scrambled = window;
  for (double& v : scrambled) {
    v = rng.normal() * 2.0;
  }
  const EncodedSample base = enc->encode(window);
  EXPECT_GT(cosine(base.real, enc->encode(nudged).real),
            cosine(base.real, enc->encode(scrambled).real));
  EXPECT_GT(cosine(base.real, enc->encode(nudged).real), 0.7);
}

TEST(TemporalEncoderTest, SingleChangedPositionMovesSimilarityProportionally) {
  // Changing one of w positions perturbs ≈ 1/w of the bundled mass.
  const auto enc = make_encoder(temporal_config(8));
  util::Rng rng(5);
  const std::vector<double> window = random_window(8, rng);
  std::vector<double> one_changed = window;
  one_changed[3] = -window[3] + 1.0;  // move to a distant level
  const double sim = cosine(enc->encode(window).real, enc->encode(one_changed).real);
  EXPECT_GT(sim, 0.6);   // 7 of 8 positions intact
  EXPECT_LT(sim, 0.99);  // but the change is visible
}

TEST(TemporalEncoderTest, LevelIndexClampsAndQuantizes) {
  const TemporalEncoder enc(temporal_config());
  EXPECT_EQ(enc.level_index(-3.0), 0u);
  EXPECT_EQ(enc.level_index(3.0), 31u);
  EXPECT_EQ(enc.level_index(-100.0), 0u);
  EXPECT_EQ(enc.level_index(0.0), 16u);
}

TEST(TemporalEncoderTest, DeterministicAndSeedSensitive) {
  const auto a = make_encoder(temporal_config());
  const auto b = make_encoder(temporal_config());
  auto cfg = temporal_config();
  cfg.seed += 1;
  const auto c = make_encoder(cfg);
  util::Rng rng(7);
  const std::vector<double> window = random_window(8, rng);
  EXPECT_EQ(a->encode_real(window), b->encode_real(window));
  EXPECT_NE(a->encode_real(window), c->encode_real(window));
}

TEST(TemporalEncoderTest, ValidatesConfiguration) {
  auto cfg = temporal_config();
  cfg.levels = 1;
  EXPECT_THROW((void)make_encoder(cfg), std::invalid_argument);
  cfg = temporal_config();
  cfg.level_min = 1.0;
  cfg.level_max = -1.0;
  EXPECT_THROW((void)make_encoder(cfg), std::invalid_argument);
  const auto enc = make_encoder(temporal_config(8));
  EXPECT_THROW((void)enc->encode_real(std::vector<double>(7, 0.0)), std::invalid_argument);
}

}  // namespace
}  // namespace reghd::hdc
