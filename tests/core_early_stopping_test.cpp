// Tests for the shared early-stopping rule.
#include <gtest/gtest.h>

#include "core/early_stopping.hpp"

namespace reghd::core {
namespace {

TEST(EarlyStopperTest, StopsAfterPatienceWithoutImprovement) {
  EarlyStopper stopper(1e-3, 3);
  EXPECT_FALSE(stopper.update(1.0));   // establishes best
  EXPECT_FALSE(stopper.update(1.0));   // stall 1
  EXPECT_FALSE(stopper.update(1.0));   // stall 2
  EXPECT_TRUE(stopper.update(1.0));    // stall 3 → stop
}

TEST(EarlyStopperTest, SufficientImprovementResetsPatience) {
  EarlyStopper stopper(1e-3, 2);
  EXPECT_FALSE(stopper.update(1.0));
  EXPECT_FALSE(stopper.update(1.0));        // stall 1
  EXPECT_FALSE(stopper.update(0.5));        // big improvement → reset
  EXPECT_EQ(stopper.stall(), 0u);
  EXPECT_FALSE(stopper.update(0.5));        // stall 1 again
  EXPECT_TRUE(stopper.update(0.5));         // stall 2 → stop
}

TEST(EarlyStopperTest, SubToleranceImprovementCountsAsStall) {
  EarlyStopper stopper(0.01, 2);
  EXPECT_FALSE(stopper.update(1.0));
  // 0.5% improvement < 1% tolerance: still a stall, but best is tracked.
  EXPECT_FALSE(stopper.update(0.995));
  EXPECT_EQ(stopper.stall(), 1u);
  EXPECT_DOUBLE_EQ(stopper.best(), 0.995);
  EXPECT_TRUE(stopper.update(0.994));
  EXPECT_DOUBLE_EQ(stopper.best(), 0.994);
}

TEST(EarlyStopperTest, BestTracksMinimumSeen) {
  EarlyStopper stopper(1e-3, 10);
  (void)stopper.update(3.0);
  (void)stopper.update(1.0);
  (void)stopper.update(2.0);
  EXPECT_DOUBLE_EQ(stopper.best(), 1.0);
}

TEST(EarlyStopperTest, PatienceOneStopsOnFirstStall) {
  EarlyStopper stopper(1e-3, 1);
  EXPECT_FALSE(stopper.update(1.0));
  EXPECT_TRUE(stopper.update(1.0));
}

TEST(EarlyStopperTest, MonotoneImprovementNeverStops) {
  EarlyStopper stopper(1e-3, 2);
  double v = 100.0;
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(stopper.update(v));
    v *= 0.9;
  }
}

}  // namespace
}  // namespace reghd::core
