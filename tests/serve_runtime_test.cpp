// Server end-to-end semantics: both admission paths (fused single-query and
// bank-scan batch) are bit-identical to the offline learner, training through
// the server replays the offline update sequence exactly, and the admission /
// shutdown / persistence protocols hold.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <limits>
#include <span>
#include <thread>
#include <vector>

#include "core/online.hpp"
#include "data/synthetic.hpp"
#include "obs/telemetry.hpp"
#include "util/fault_injection.hpp"

namespace reghd::serve {
namespace {

core::OnlineConfig online_config() {
  core::OnlineConfig cfg;
  cfg.reghd.dim = 256;
  cfg.reghd.models = 4;
  cfg.requantize_every = 64;
  return cfg;
}

core::OnlineConfig quantized_config() {
  core::OnlineConfig cfg = online_config();
  cfg.reghd.cluster_mode = core::ClusterMode::kQuantized;
  cfg.reghd.query_precision = core::QueryPrecision::kBinary;
  cfg.reghd.model_precision = core::ModelPrecision::kTernary;
  return cfg;
}

core::OnlineRegHD trained_learner(const core::OnlineConfig& cfg,
                                  const data::Dataset& d, std::size_t updates) {
  core::OnlineRegHD learner(cfg, d.num_features());
  for (std::size_t i = 0; i < updates; ++i) {
    learner.update(d.row(i % d.size()), d.target(i % d.size()));
  }
  return learner;
}

void expect_paths_match_offline(const core::OnlineConfig& cfg) {
  const data::Dataset d = data::make_friedman1(400, 9);
  const core::OnlineRegHD learner = trained_learner(cfg, d, 300);

  ServeConfig always_single;
  always_single.shards = 1;
  always_single.batch_threshold = std::numeric_limits<std::size_t>::max();
  ServeConfig always_batch;
  always_batch.shards = 1;
  always_batch.batch_threshold = 1;  // every drain group takes the bank scan

  Server single(always_single, cfg, d.num_features());
  Server batch(always_batch, cfg, d.num_features());
  single.bootstrap(0, learner);
  batch.bootstrap(0, learner);
  single.start();
  batch.start();

  for (std::size_t i = 300; i < 400; ++i) {
    const double want = learner.predict(d.row(i));
    EXPECT_EQ(single.predict(i, d.row(i)), want) << "single path row " << i;
    EXPECT_EQ(batch.predict(i, d.row(i)), want) << "batch path row " << i;
  }

  // Pipelined submission: whatever admission grouping the worker lands on,
  // every completion must still equal the offline prediction bit for bit.
  constexpr std::size_t kInflight = 64;
  std::vector<RequestSlot> slots(kInflight);
  for (std::size_t i = 0; i < kInflight; ++i) {
    while (!batch.try_predict(i, d.row(300 + i), &slots[i])) {
    }
  }
  for (std::size_t i = 0; i < kInflight; ++i) {
    slots[i].wait();
    ASSERT_EQ(slots[i].error, 0U);
    EXPECT_EQ(slots[i].result, learner.predict(d.row(300 + i)))
        << "pipelined row " << i;
  }

  single.stop();
  batch.stop();
}

TEST(ServeRuntimeTest, FullPrecisionPathsMatchOfflinePredict) {
  expect_paths_match_offline(online_config());
}

TEST(ServeRuntimeTest, QuantizedPathsMatchOfflinePredict) {
  expect_paths_match_offline(quantized_config());
}

TEST(ServeRuntimeTest, ColdServerMatchesColdOfflinePredict) {
  const data::Dataset d = data::make_friedman1(64, 9);
  const core::OnlineConfig cfg = online_config();
  const core::OnlineRegHD fresh(cfg, d.num_features());
  ServeConfig sc;
  sc.batch_threshold = 1;  // exercise the batch path's cold gate
  Server server(sc, cfg, d.num_features());
  server.start();
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(server.predict(i, d.row(i)), fresh.predict(d.row(i)));
  }
  server.stop();
}

TEST(ServeRuntimeTest, TrainingThroughServerReplaysOfflineSequenceExactly) {
  const data::Dataset d = data::make_friedman1(256, 9);
  const core::OnlineConfig cfg = online_config();

  // Offline reference: the exact same update sequence on a plain learner.
  core::OnlineRegHD offline(cfg, d.num_features());
  for (std::size_t i = 0; i < d.size(); ++i) {
    offline.update(d.row(i), d.target(i));
  }

  ServeConfig sc;
  sc.shards = 1;
  sc.publish_every_updates = 50;
  sc.publish_interval_ms = 5.0;
  Server server(sc, cfg, d.num_features());
  server.start();
  // One producer → the train ring is FIFO → the trainer applies the samples
  // in exactly this order.
  for (std::size_t i = 0; i < d.size(); ++i) {
    while (!server.try_train(0, d.row(i), d.target(i))) {
      std::this_thread::yield();
    }
  }
  while (server.train_applied(0) < d.size()) {
    std::this_thread::yield();
  }
  server.stop();

  const std::shared_ptr<const ModelSnapshot> snap = server.snapshot(0);
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->learner.samples_seen(), offline.samples_seen());
  EXPECT_EQ(snap->trained_updates, offline.samples_seen());
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_EQ(snap->learner.predict(d.row(i)), offline.predict(d.row(i)))
        << "post-training prediction " << i;
  }
}

TEST(ServeRuntimeTest, TrainingAdvancesSnapshotEpochWhilePredictsKeepFlowing) {
  const data::Dataset d = data::make_friedman1(512, 9);
  const core::OnlineConfig cfg = online_config();
  ServeConfig sc;
  sc.publish_every_updates = 32;
  sc.publish_interval_ms = 1.0;
  Server server(sc, cfg, d.num_features());
  server.start();
  const std::uint64_t initial_epoch = server.snapshot_epoch(0);
  EXPECT_GE(initial_epoch, 1U);
  for (std::size_t i = 0; i < 200; ++i) {
    while (!server.try_train(0, d.row(i), d.target(i))) {
      std::this_thread::yield();
    }
    (void)server.predict(i, d.row(i));  // predicts interleave with publishes
  }
  while (server.train_applied(0) < 200) {
    std::this_thread::yield();
  }
  server.stop();
  EXPECT_GT(server.snapshot_epoch(0), initial_epoch);
  EXPECT_EQ(server.snapshot(0)->learner.samples_seen(), 200U);
}

TEST(ServeRuntimeTest, ShardRoutingIsStableAndCoversAllShards) {
  ServeConfig sc;
  sc.shards = 4;
  const Server server(sc, online_config(), 9);
  std::vector<bool> hit(sc.shards, false);
  for (std::uint64_t key = 0; key < 256; ++key) {
    const std::size_t s = server.shard_of(key);
    ASSERT_LT(s, sc.shards);
    ASSERT_EQ(s, server.shard_of(key));  // stable
    hit[s] = true;
  }
  for (std::size_t s = 0; s < sc.shards; ++s) {
    EXPECT_TRUE(hit[s]) << "no key of 256 routed to shard " << s;
  }
}

TEST(ServeRuntimeTest, MultiShardServerMatchesOfflineAcrossKeys) {
  const data::Dataset d = data::make_friedman1(300, 9);
  const core::OnlineConfig cfg = online_config();
  const core::OnlineRegHD learner = trained_learner(cfg, d, 200);
  ServeConfig sc;
  sc.shards = 2;
  Server server(sc, cfg, d.num_features());
  server.bootstrap(0, learner);
  server.bootstrap(1, learner);
  server.start();
  for (std::size_t i = 200; i < 300; ++i) {
    EXPECT_EQ(server.predict(i * 7919, d.row(i)), learner.predict(d.row(i)));
  }
  server.stop();
}

TEST(ServeRuntimeTest, AdmissionClosedBeforeStartAndAfterStop) {
  const core::OnlineConfig cfg = online_config();
  Server server(ServeConfig{}, cfg, 9);
  const std::vector<double> row(9, 0.0);
  RequestSlot slot;
  EXPECT_FALSE(server.running());
  EXPECT_FALSE(server.try_predict(0, row, &slot));
  EXPECT_FALSE(server.try_train(0, row, 1.0));
  server.start();
  EXPECT_TRUE(server.running());
  EXPECT_TRUE(server.try_predict(0, row, &slot));
  slot.wait();
  server.stop();
  EXPECT_FALSE(server.running());
  EXPECT_FALSE(server.try_predict(0, row, &slot));
  EXPECT_THROW((void)server.predict(0, row), std::exception);
  server.stop();  // idempotent
}

TEST(ServeRuntimeTest, SnapshotsPreserveRematerializedProjectionStorage) {
  // Projection storage is deliberately absent from the checkpoint container,
  // so every serialize → deserialize hop (bootstrap, publish, recovery) would
  // silently come back resident — re-materializing the F×D matrix in every
  // published snapshot. The server must pin its configured mode through all
  // of them, with predictions bit-identical to the offline learner.
  const data::Dataset d = data::make_friedman1(300, 9);
  core::OnlineConfig cfg = online_config();
  cfg.encoder.projection_storage = hdc::ProjectionStorage::kRematerialized;
  const core::OnlineRegHD learner = trained_learner(cfg, d, 200);
  ASSERT_EQ(learner.encoder().config().projection_storage,
            hdc::ProjectionStorage::kRematerialized);

  ServeConfig sc;
  sc.publish_every_updates = 16;
  sc.publish_interval_ms = 1.0;
  Server server(sc, cfg, d.num_features());
  server.bootstrap(0, learner);  // roundtrip #1
  server.start();                // roundtrip #2 (initial publish)
  for (std::size_t i = 0; i < 64; ++i) {
    while (!server.try_train(0, d.row(i), d.target(i))) {
      std::this_thread::yield();
    }
  }
  while (server.train_applied(0) < 64) {
    std::this_thread::yield();
  }
  server.stop();

  const std::shared_ptr<const ModelSnapshot> snap = server.snapshot(0);
  ASSERT_NE(snap, nullptr);
  EXPECT_GT(snap->epoch, 1U);  // at least one trainer publish happened
  EXPECT_EQ(snap->learner.encoder().config().projection_storage,
            hdc::ProjectionStorage::kRematerialized);

  core::OnlineRegHD offline = trained_learner(cfg, d, 200);
  for (std::size_t i = 0; i < 64; ++i) {
    offline.update(d.row(i), d.target(i));
  }
  for (std::size_t i = 200; i < 232; ++i) {
    EXPECT_EQ(snap->learner.predict(d.row(i)), offline.predict(d.row(i)))
        << "rematerialized snapshot prediction " << i;
  }
}

TEST(ServeRuntimeTest, CheckpointDirPersistsAndRecoversShardState) {
  namespace fs = std::filesystem;
  const data::Dataset d = data::make_friedman1(128, 9);
  const core::OnlineConfig cfg = online_config();
  const fs::path dir =
      fs::temp_directory_path() / "reghd_serve_runtime_ckpt_test";
  fs::remove_all(dir);

  ServeConfig sc;
  sc.checkpoint_dir = dir.string();
  {
    Server server(sc, cfg, d.num_features());
    server.start();
    for (std::size_t i = 0; i < d.size(); ++i) {
      while (!server.try_train(0, d.row(i), d.target(i))) {
        std::this_thread::yield();
      }
    }
    while (server.train_applied(0) < d.size()) {
      std::this_thread::yield();
    }
    server.stop();  // persists shard_0
  }

  core::OnlineRegHD offline(cfg, d.num_features());
  for (std::size_t i = 0; i < d.size(); ++i) {
    offline.update(d.row(i), d.target(i));
  }

  Server revived(sc, cfg, d.num_features());
  revived.start();  // recovers shard_0 from the checkpoint
  EXPECT_EQ(revived.snapshot(0)->learner.samples_seen(), offline.samples_seen());
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(revived.predict(0, d.row(i)), offline.predict(d.row(i)));
  }
  revived.stop();
  fs::remove_all(dir);
}

TEST(ServeRuntimeTest, FailedFinalCheckpointSaveIsCountedNotThrown) {
  // stop() runs the final persistence pass and is also called from ~Server.
  // A save failure escaping stop() would therefore throw out of a destructor
  // → std::terminate. This pins the fix: arm a write fault on the final
  // save, let the Server go out of scope, and require that the process is
  // still here with the failure visible on the checkpoint-failure counter.
  namespace fs = std::filesystem;
  const data::Dataset d = data::make_friedman1(64, 9);
  const fs::path dir =
      fs::temp_directory_path() / "reghd_serve_runtime_fault_test";
  fs::remove_all(dir);

  obs::set_enabled(true);
  obs::reset();
  ServeConfig sc;
  sc.shards = 1;
  sc.checkpoint_dir = dir.string();
  {
    Server server(sc, online_config(), d.num_features());
    server.set_persist_fault_plan(
        util::FaultPlan{util::FaultMode::kFailAt, 0, 1});
    server.start();
    for (std::size_t i = 0; i < d.size(); ++i) {
      while (!server.try_train(0, d.row(i), d.target(i))) {
        std::this_thread::yield();
      }
    }
    while (server.train_applied(0) < d.size()) {
      std::this_thread::yield();
    }
  }  // ~Server → stop() → failing save; must NOT std::terminate

  const obs::TelemetrySnapshot snap = obs::snapshot();
  // ≥ 1, not == 1: the write layer counts the failure it detects and stop()'s
  // catch counts the escaped exception — one fault may register twice.
  EXPECT_GE(snap.counter(obs::Counter::kCkptSaveFailures), 1U);
  obs::set_enabled(false);
  fs::remove_all(dir);
}

TEST(ServeRuntimeTest, UnusableCheckpointDirAtStopIsCountedNotThrown) {
  // Same invariant, different failure stage: the CheckpointManager
  // *constructor* throws inside stop() (the checkpoint path has become a
  // regular file, so the shard directory cannot be created). The directory
  // is valid at start() and sabotaged while the server runs — the shape of
  // a real operational failure (volume yanked, path clobbered).
  namespace fs = std::filesystem;
  const data::Dataset d = data::make_friedman1(64, 9);
  const fs::path dir =
      fs::temp_directory_path() / "reghd_serve_runtime_baddir_test";
  fs::remove_all(dir);

  obs::set_enabled(true);
  obs::reset();
  ServeConfig sc;
  sc.shards = 1;
  sc.checkpoint_dir = dir.string();
  {
    Server server(sc, online_config(), d.num_features());
    server.start();
    for (std::size_t i = 0; i < 8; ++i) {
      while (!server.try_train(0, d.row(i), d.target(i))) {
        std::this_thread::yield();
      }
    }
    while (server.train_applied(0) < 8) {
      std::this_thread::yield();
    }
    // Clobber the checkpoint path: now a FILE, so stop() cannot create
    // <dir>/shard_0 and the manager constructor throws.
    fs::remove_all(dir);
    {
      std::ofstream blocker(dir);
      blocker << "x";
    }
  }  // ~Server: directory setup fails inside stop(); must not escape

  const obs::TelemetrySnapshot snap = obs::snapshot();
  EXPECT_GE(snap.counter(obs::Counter::kCkptSaveFailures), 1U);
  obs::set_enabled(false);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace reghd::serve
