// Corruption robustness of the model file format: a loader facing a
// damaged file must throw a typed exception — never crash, hang, or return
// a silently-wrong model.
#include <gtest/gtest.h>

#include <sstream>

#include "core/model_io.hpp"
#include "data/synthetic.hpp"
#include "util/random.hpp"

namespace reghd::core {
namespace {

std::string serialized_model() {
  static const std::string bytes = [] {
    const data::Dataset d = data::make_friedman1(300, 5);
    PipelineConfig cfg;
    cfg.reghd.dim = 512;
    cfg.reghd.models = 2;
    cfg.reghd.max_epochs = 5;
    RegHDPipeline pipeline(cfg);
    pipeline.fit(d);
    std::stringstream buf;
    save_pipeline(buf, pipeline);
    return buf.str();
  }();
  return bytes;
}

TEST(ModelIoFuzzTest, IntactBytesLoad) {
  std::stringstream in(serialized_model());
  EXPECT_NO_THROW((void)load_pipeline(in));
}

class TruncationSweep : public ::testing::TestWithParam<double> {};

TEST_P(TruncationSweep, TruncatedFilesThrow) {
  const std::string full = serialized_model();
  const auto keep = static_cast<std::size_t>(GetParam() * static_cast<double>(full.size()));
  std::stringstream in(full.substr(0, keep));
  EXPECT_THROW((void)load_pipeline(in), std::runtime_error);
}

INSTANTIATE_TEST_SUITE_P(KeepFractions, TruncationSweep,
                         ::testing::Values(0.0, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99));

TEST(ModelIoFuzzTest, RandomByteFlipsNeverCrash) {
  // Flip one byte at a time across many positions. Structural fields
  // usually make the load throw; flips inside the float payload may load
  // fine (and that is acceptable — checksums are out of scope) but must
  // never crash or hang.
  const std::string full = serialized_model();
  util::Rng rng(99);
  std::size_t loaded = 0;
  std::size_t rejected = 0;
  for (int trial = 0; trial < 60; ++trial) {
    std::string corrupted = full;
    // Half the flips target the structural prefix (header/config/lengths) —
    // the payload is megabytes of doubles, so purely uniform positions
    // would almost never exercise the validation paths.
    const auto pos = static_cast<std::size_t>(
        trial % 2 == 0 ? rng.uniform_index(std::min<std::size_t>(120, corrupted.size()))
                       : rng.uniform_index(corrupted.size()));
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ static_cast<char>(1 + rng.uniform_index(255)));
    std::stringstream in(corrupted);
    try {
      const RegHDPipeline p = load_pipeline(in);
      ++loaded;  // payload flip: structurally valid
    } catch (const std::exception&) {
      ++rejected;  // typed failure: the contract
    }
  }
  EXPECT_EQ(loaded + rejected, 60u);
  EXPECT_GT(rejected, 0u);  // at least some flips hit structural fields
}

TEST(ModelIoFuzzTest, HeaderCorruptionAlwaysRejected) {
  std::string corrupted = serialized_model();
  corrupted[0] = static_cast<char>(corrupted[0] ^ 0x55);  // magic byte
  std::stringstream in(corrupted);
  EXPECT_THROW((void)load_pipeline(in), std::runtime_error);
}

TEST(ModelIoFuzzTest, GiganticLengthPrefixRejected) {
  // Overwrite the model-count field region with huge values: the reader
  // must fail on validation or truncated payload, not attempt a huge
  // allocation loop that "succeeds".
  std::string corrupted = serialized_model();
  // The count sits after the fixed-size config block; saturating a span of
  // bytes guarantees some length/count prefix goes enormous.
  for (std::size_t i = 8; i < 48 && i < corrupted.size(); ++i) {
    corrupted[i] = static_cast<char>(0xFF);
  }
  std::stringstream in(corrupted);
  EXPECT_THROW((void)load_pipeline(in), std::exception);
}

}  // namespace
}  // namespace reghd::core
