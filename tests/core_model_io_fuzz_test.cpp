// Corruption robustness of the model file format: a loader facing a
// damaged file must throw a typed exception — never crash, hang, or return
// a silently-wrong model. Both container versions are swept: the legacy v1
// stream (structural validation only) and the v2 checksummed container
// (every flip detected). Runs under ASan/UBSan in CI, so any
// out-of-bounds read or overflow a corrupt file provokes is fatal.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <tuple>

#include "core/model_io.hpp"
#include "data/synthetic.hpp"
#include "util/framing.hpp"
#include "util/random.hpp"

namespace reghd::core {
namespace {

std::string serialized_model(std::uint32_t version) {
  static const RegHDPipeline* pipeline = [] {
    const data::Dataset d = data::make_friedman1(300, 5);
    PipelineConfig cfg;
    cfg.reghd.dim = 512;
    cfg.reghd.models = 2;
    cfg.reghd.max_epochs = 5;
    auto* p = new RegHDPipeline(cfg);
    p->fit(d);
    return p;
  }();
  std::stringstream buf;
  if (version == 1) {
    save_pipeline_v1(buf, *pipeline);
  } else {
    save_pipeline(buf, *pipeline);
  }
  return buf.str();
}

class FormatVersions : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(FormatVersions, IntactBytesLoad) {
  std::stringstream in(serialized_model(GetParam()));
  EXPECT_NO_THROW((void)load_pipeline(in));
}

TEST_P(FormatVersions, HeaderCorruptionAlwaysRejected) {
  std::string corrupted = serialized_model(GetParam());
  corrupted[0] = static_cast<char>(corrupted[0] ^ 0x55);  // magic byte
  std::stringstream in(corrupted);
  EXPECT_THROW((void)load_pipeline(in), std::runtime_error);
}

TEST_P(FormatVersions, GiganticLengthPrefixRejected) {
  // Overwrite the early structural region with huge values: the reader
  // must fail on validation or truncated payload, not attempt a huge
  // allocation loop that "succeeds".
  std::string corrupted = serialized_model(GetParam());
  for (std::size_t i = 8; i < 48 && i < corrupted.size(); ++i) {
    corrupted[i] = static_cast<char>(0xFF);
  }
  std::stringstream in(corrupted);
  EXPECT_THROW((void)load_pipeline(in), std::exception);
}

std::string version_name(const ::testing::TestParamInfo<std::uint32_t>& param_info) {
  return "v" + std::to_string(param_info.param);
}

INSTANTIATE_TEST_SUITE_P(Versions, FormatVersions, ::testing::Values(1u, 2u), version_name);

class TruncationSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, double>> {};

TEST_P(TruncationSweep, TruncatedFilesThrow) {
  const auto [version, fraction] = GetParam();
  const std::string full = serialized_model(version);
  const auto keep = static_cast<std::size_t>(fraction * static_cast<double>(full.size()));
  std::stringstream in(full.substr(0, keep));
  EXPECT_THROW((void)load_pipeline(in), std::runtime_error);
}

INSTANTIATE_TEST_SUITE_P(
    KeepFractions, TruncationSweep,
    ::testing::Combine(::testing::Values(1u, 2u),
                       ::testing::Values(0.0, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99)));

TEST(ModelIoFuzzTest, V1RandomByteFlipsNeverCrash) {
  // v1 predates checksums: flips inside the float payload may load fine
  // (acceptable for the legacy format) but must never crash or hang.
  const std::string full = serialized_model(1);
  util::Rng rng(99);
  std::size_t loaded = 0;
  std::size_t rejected = 0;
  for (int trial = 0; trial < 60; ++trial) {
    std::string corrupted = full;
    // Half the flips target the structural prefix (header/config/lengths) —
    // the payload is megabytes of doubles, so purely uniform positions
    // would almost never exercise the validation paths.
    const auto pos = static_cast<std::size_t>(
        trial % 2 == 0 ? rng.uniform_index(std::min<std::size_t>(120, corrupted.size()))
                       : rng.uniform_index(corrupted.size()));
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ static_cast<char>(1 + rng.uniform_index(255)));
    std::stringstream in(corrupted);
    try {
      const RegHDPipeline p = load_pipeline(in);
      ++loaded;  // payload flip: structurally valid
    } catch (const std::exception&) {
      ++rejected;  // typed failure: the contract
    }
  }
  EXPECT_EQ(loaded + rejected, 60u);
  EXPECT_GT(rejected, 0u);  // at least some flips hit structural fields
}

TEST(ModelIoFuzzTest, V2RandomByteFlipsAlwaysTypedRejection) {
  // v2 is fully checksummed: EVERY single-byte flip must be rejected with a
  // typed FormatError — there is no "harmless payload flip" any more.
  const std::string full = serialized_model(2);
  util::Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::string corrupted = full;
    const auto pos = static_cast<std::size_t>(rng.uniform_index(corrupted.size()));
    const auto mask = static_cast<char>(1 + rng.uniform_index(255));
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ mask);
    std::stringstream in(corrupted);
    EXPECT_THROW((void)load_pipeline(in), util::FormatError)
        << "flip at byte " << pos << " mask " << static_cast<int>(mask);
  }
}

}  // namespace
}  // namespace reghd::core
