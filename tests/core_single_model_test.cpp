// Tests for single-model RegHD (paper §2.3, Eq. 2): learning behaviour,
// iterative convergence, determinism, and the Fig. 3 learning-curve shape.
#include <gtest/gtest.h>

#include <memory>

#include "core/encoded.hpp"
#include "core/single_model.hpp"
#include "data/scaler.hpp"
#include "data/synthetic.hpp"
#include "hdc/encoding.hpp"
#include "util/random.hpp"

namespace reghd::core {
namespace {

struct EncodedTask {
  EncodedDataset train;
  EncodedDataset val;
  EncodedDataset test;
  std::unique_ptr<hdc::Encoder> encoder;
};

/// Builds standardized, pre-encoded splits of a dataset.
EncodedTask make_task(data::Dataset dataset, std::size_t dim, std::uint64_t seed) {
  data::StandardScaler fs;
  fs.fit(dataset);
  fs.transform(dataset);
  data::TargetScaler ts;
  ts.fit(dataset);
  ts.transform(dataset);

  util::Rng rng(seed);
  const data::TrainTestSplit outer = data::train_test_split(dataset, 0.25, rng);
  const data::TrainTestSplit inner = data::train_test_split(outer.train, 0.2, rng);

  hdc::EncoderConfig cfg;
  cfg.input_dim = dataset.num_features();
  cfg.dim = dim;
  cfg.seed = seed;
  EncodedTask task;
  task.encoder = hdc::make_encoder(cfg);
  task.train = EncodedDataset::from(*task.encoder, inner.train);
  task.val = EncodedDataset::from(*task.encoder, inner.test);
  task.test = EncodedDataset::from(*task.encoder, outer.test);
  return task;
}

RegHDConfig base_config(std::size_t dim) {
  RegHDConfig cfg;
  cfg.dim = dim;
  cfg.models = 1;
  cfg.seed = 77;
  return cfg;
}

TEST(SingleModelTest, LearnsSineTaskWellBeyondMeanPredictor) {
  // Flake guard: the bound must hold across a split/encoder seed sweep, not
  // at one lucky seed (an earlier bound of 0.4 held only for specific seeds
  // and a failing seed was once swapped for a passing one instead of fixing
  // the bound). Standardized targets put the mean predictor at MSE ≈ 1; the
  // auto RFF bandwidth (tuned for multi-feature data) underfits the
  // frequency-4 sine — see the tuned-bandwidth test below for the tight fit.
  // Measured test MSEs for seeds 1..5: 0.469, 0.227, 0.391, 0.290, 0.440
  // (max 0.469) → bound 0.55 with headroom, still far below the mean
  // predictor.
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const EncodedTask task = make_task(data::make_sine_task(600, 5), 2048, seed);
    SingleModelRegressor model(base_config(2048));
    const TrainingReport report = model.fit(task.train, task.val);
    EXPECT_GE(report.epochs_run, 2u);
    EXPECT_LT(model.evaluate_mse(task.test), 0.55);
  }
}

TEST(SingleModelTest, TunedBandwidthFitsSineTightly) {
  data::Dataset dataset = data::make_sine_task(600, 5);
  data::StandardScaler fs;
  fs.fit(dataset);
  fs.transform(dataset);
  data::TargetScaler ts;
  ts.fit(dataset);
  ts.transform(dataset);
  util::Rng rng(5);
  const data::TrainTestSplit outer = data::train_test_split(dataset, 0.25, rng);
  const data::TrainTestSplit inner = data::train_test_split(outer.train, 0.2, rng);
  hdc::EncoderConfig enc;
  enc.input_dim = 1;
  enc.dim = 2048;
  enc.seed = 5;
  enc.projection_stddev = 2.5;  // sharper kernel for the frequency-4 signal
  const auto encoder = hdc::make_encoder(enc);
  SingleModelRegressor model(base_config(2048));
  model.fit(EncodedDataset::from(*encoder, inner.train),
            EncodedDataset::from(*encoder, inner.test));
  EXPECT_LT(model.evaluate_mse(EncodedDataset::from(*encoder, outer.test)), 0.1);
}

TEST(SingleModelTest, IterativeTrainingImprovesOnSinglePass) {
  // Fig. 3a: quality improves over retraining iterations — the best
  // validation MSE must beat the single-pass (first-epoch) one, and the
  // model keeps the best-epoch state.
  const EncodedTask task = make_task(data::make_sine_task(600, 7), 2048, 7);
  SingleModelRegressor model(base_config(2048));
  const TrainingReport report = model.fit(task.train, task.val);
  ASSERT_GE(report.history.size(), 3u);
  EXPECT_LT(report.best_val_mse, report.history.front().val_mse);
  EXPECT_NEAR(model.evaluate_mse(task.val), report.best_val_mse, 1e-9);
}

TEST(SingleModelTest, TrainStepMovesPredictionTowardTarget) {
  const EncodedTask task = make_task(data::make_sine_task(100, 9), 1024, 9);
  auto cfg = base_config(1024);
  SingleModelRegressor model(cfg);
  const auto& s = task.train.sample(0);
  const double y = 2.0;
  const double before = model.predict(s);
  model.train_step(s, y);
  const double after = model.predict(s);
  EXPECT_NEAR(after - before, cfg.learning_rate * (y - before), 1e-9);
}

TEST(SingleModelTest, DeterministicForFixedSeed) {
  const EncodedTask task = make_task(data::make_sine_task(300, 11), 1024, 11);
  SingleModelRegressor m1(base_config(1024));
  SingleModelRegressor m2(base_config(1024));
  m1.fit(task.train, task.val);
  m2.fit(task.train, task.val);
  for (std::size_t i = 0; i < task.test.size(); ++i) {
    EXPECT_DOUBLE_EQ(m1.predict(task.test.sample(i)), m2.predict(task.test.sample(i)));
  }
}

TEST(SingleModelTest, FitIsIdempotent) {
  const EncodedTask task = make_task(data::make_sine_task(300, 13), 1024, 13);
  SingleModelRegressor model(base_config(1024));
  model.fit(task.train, task.val);
  const double first = model.predict(task.test.sample(0));
  model.fit(task.train, task.val);  // resets internally
  EXPECT_DOUBLE_EQ(model.predict(task.test.sample(0)), first);
}

TEST(SingleModelTest, ResetZerosTheModel) {
  const EncodedTask task = make_task(data::make_sine_task(200, 15), 512, 15);
  SingleModelRegressor model(base_config(512));
  model.fit(task.train, task.val);
  model.reset();
  EXPECT_DOUBLE_EQ(model.predict(task.test.sample(0)), 0.0);
}

TEST(SingleModelTest, BinaryQueryModeStillLearns) {
  auto cfg = base_config(2048);
  cfg.query_precision = QueryPrecision::kBinary;
  const EncodedTask task = make_task(data::make_sine_task(600, 17), 2048, 17);
  SingleModelRegressor model(cfg);
  model.fit(task.train, task.val);
  EXPECT_LT(model.evaluate_mse(task.test), 0.3);
}

TEST(SingleModelTest, BinaryModelModeDegradesButRemainsUseful) {
  auto full_cfg = base_config(2048);
  auto bin_cfg = full_cfg;
  bin_cfg.model_precision = ModelPrecision::kBinary;
  const EncodedTask task = make_task(data::make_sine_task(600, 19), 2048, 19);
  SingleModelRegressor full(full_cfg);
  SingleModelRegressor binary(bin_cfg);
  full.fit(task.train, task.val);
  binary.fit(task.train, task.val);
  const double mse_full = full.evaluate_mse(task.test);
  const double mse_bin = binary.evaluate_mse(task.test);
  EXPECT_LT(mse_bin, 1.0);        // far better than the mean predictor
  EXPECT_GE(mse_bin, mse_full * 0.8);  // quantization cannot magically help much
}

TEST(SingleModelTest, CapacityGrowsWithDimensionality) {
  // §2.3: a single hypervector's capacity scales with D. On the same task,
  // a cramped D must leave clearly more residual error than a roomy one.
  data::Dataset task_data = data::make_sine_task(800, 21, 0.02);
  const EncodedTask low_d = make_task(task_data, 128, 21);
  const EncodedTask high_d = make_task(std::move(task_data), 2048, 21);
  auto low_cfg = base_config(128);
  auto high_cfg = base_config(2048);
  SingleModelRegressor low(low_cfg);
  SingleModelRegressor high(high_cfg);
  low.fit(low_d.train, low_d.val);
  high.fit(high_d.train, high_d.val);
  EXPECT_GT(low.evaluate_mse(low_d.test), 1.5 * high.evaluate_mse(high_d.test));
}

TEST(SingleModelTest, ValidationRequiredAndShapesChecked) {
  const EncodedTask task = make_task(data::make_sine_task(100, 23), 512, 23);
  SingleModelRegressor model(base_config(512));
  EXPECT_THROW((void)model.fit(task.train, EncodedDataset{}), std::invalid_argument);
  EXPECT_THROW((void)model.fit(EncodedDataset{}, task.val), std::invalid_argument);

  SingleModelRegressor wrong_dim(base_config(256));
  EXPECT_THROW((void)wrong_dim.fit(task.train, task.val), std::invalid_argument);
  EXPECT_THROW((void)wrong_dim.predict(task.test.sample(0)), std::invalid_argument);
}

TEST(SingleModelTest, ConfigValidation) {
  RegHDConfig cfg;
  cfg.dim = 8;  // below the minimum
  EXPECT_THROW(SingleModelRegressor{cfg}, std::invalid_argument);
  cfg = {};
  cfg.learning_rate = 0.0;
  EXPECT_THROW(SingleModelRegressor{cfg}, std::invalid_argument);
  cfg = {};
  cfg.softmax_temperature = -1.0;
  EXPECT_THROW(SingleModelRegressor{cfg}, std::invalid_argument);
}

TEST(SingleModelTest, ReportSummaryMentionsOutcome) {
  const EncodedTask task = make_task(data::make_sine_task(300, 29), 512, 29);
  SingleModelRegressor model(base_config(512));
  const TrainingReport report = model.fit(task.train, task.val);
  const std::string s = report.summary();
  EXPECT_NE(s.find("epochs="), std::string::npos);
  EXPECT_NE(s.find("best_val_mse="), std::string::npos);
}

}  // namespace
}  // namespace reghd::core
