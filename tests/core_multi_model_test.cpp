// Tests for multi-model RegHD (paper §2.4 and §3): clustering behaviour,
// the multi-vs-single advantage on multi-modal tasks (Fig. 3b), quantized
// clustering (Fig. 6), prediction modes (Fig. 7), and update-rule ablation.
#include <gtest/gtest.h>

#include <bit>
#include <memory>
#include <set>

#include "core/multi_model.hpp"
#include "core/single_model.hpp"
#include "data/scaler.hpp"
#include "data/synthetic.hpp"
#include "hdc/encoding.hpp"
#include "hdc/random_hv.hpp"
#include "util/random.hpp"

namespace reghd::core {
namespace {

struct EncodedTask {
  EncodedDataset train;
  EncodedDataset val;
  EncodedDataset test;
  std::unique_ptr<hdc::Encoder> encoder;
};

EncodedTask make_task(data::Dataset dataset, std::size_t dim, std::uint64_t seed) {
  data::StandardScaler fs;
  fs.fit(dataset);
  fs.transform(dataset);
  data::TargetScaler ts;
  ts.fit(dataset);
  ts.transform(dataset);

  util::Rng rng(seed);
  const data::TrainTestSplit outer = data::train_test_split(dataset, 0.25, rng);
  const data::TrainTestSplit inner = data::train_test_split(outer.train, 0.2, rng);

  hdc::EncoderConfig cfg;
  cfg.input_dim = dataset.num_features();
  cfg.dim = dim;
  cfg.seed = seed;
  EncodedTask task;
  task.encoder = hdc::make_encoder(cfg);
  task.train = EncodedDataset::from(*task.encoder, inner.train);
  task.val = EncodedDataset::from(*task.encoder, inner.test);
  task.test = EncodedDataset::from(*task.encoder, outer.test);
  return task;
}

RegHDConfig config_k(std::size_t models, std::size_t dim = 2048) {
  RegHDConfig cfg;
  cfg.dim = dim;
  cfg.models = models;
  cfg.seed = 99;
  return cfg;
}

EncodedTask multimodal_task(std::uint64_t seed = 31, std::size_t dim = 2048) {
  return make_task(data::make_multimodal_task(1200, 4, 8, seed, 0.05), dim, seed);
}

TEST(MultiModelTest, BeatsSingleModelOnMultimodalTask) {
  // The paper's central multi-model claim (Fig. 3b): on a task with several
  // distinct regimes, RegHD-8 must clearly beat RegHD-1.
  const EncodedTask task = multimodal_task();
  MultiModelRegressor multi(config_k(8));
  SingleModelRegressor single(config_k(1));
  multi.fit(task.train, task.val);
  single.fit(task.train, task.val);
  const double mse_multi = multi.evaluate_mse(task.test);
  const double mse_single = single.evaluate_mse(task.test);
  EXPECT_LT(mse_multi, 0.6 * mse_single);
}

TEST(MultiModelTest, ClusersSpecializeAcrossRegimes) {
  const EncodedTask task = multimodal_task(37);
  MultiModelRegressor model(config_k(8));
  model.fit(task.train, task.val);
  std::set<std::size_t> used;
  for (std::size_t i = 0; i < task.test.size(); ++i) {
    used.insert(model.assign_cluster(task.test.sample(i)));
  }
  // With 8 regimes and 8 clusters, several distinct clusters must be in use.
  EXPECT_GE(used.size(), 4u);
}

TEST(MultiModelTest, ConfidencesFormADistribution) {
  const EncodedTask task = multimodal_task(41);
  MultiModelRegressor model(config_k(8));
  model.fit(task.train, task.val);
  const PredictionDetail detail = model.predict_detail(task.test.sample(0));
  ASSERT_EQ(detail.confidences.size(), 8u);
  double sum = 0.0;
  for (const double c : detail.confidences) {
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    sum += c;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(MultiModelTest, PredictDetailIsConsistentWithPredict) {
  const EncodedTask task = multimodal_task(43);
  MultiModelRegressor model(config_k(4));
  model.fit(task.train, task.val);
  for (std::size_t i = 0; i < 5; ++i) {
    const auto& s = task.test.sample(i);
    const PredictionDetail detail = model.predict_detail(s);
    EXPECT_NEAR(detail.prediction, model.predict(s), 1e-12);
    double mix = 0.0;
    for (std::size_t m = 0; m < detail.confidences.size(); ++m) {
      mix += detail.confidences[m] * detail.model_outputs[m];
    }
    EXPECT_NEAR(detail.prediction, mix, 1e-12);
    // best_cluster is the argmax of the similarities.
    const auto sims = model.similarities(s);
    EXPECT_EQ(detail.best_cluster,
              static_cast<std::size_t>(std::distance(
                  sims.begin(), std::max_element(sims.begin(), sims.end()))));
  }
}

TEST(MultiModelTest, SimilaritiesBoundedAndMatchMode) {
  const EncodedTask task = multimodal_task(47);
  auto cfg = config_k(4);
  cfg.cluster_mode = ClusterMode::kQuantized;
  MultiModelRegressor model(cfg);
  model.fit(task.train, task.val);
  const auto sims = model.similarities(task.test.sample(0));
  for (const double s : sims) {
    EXPECT_GE(s, -1.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(MultiModelTest, QuantizedClusteringMatchesFullPrecisionQuality) {
  // Fig. 6: the dual-copy framework must track the integer-cluster quality
  // closely (the paper reports ≤0.3% loss; we allow a loose 25% band to stay
  // robust across seeds), while naive binarization does much worse.
  const EncodedTask task = multimodal_task(53);
  auto full_cfg = config_k(8);
  auto quant_cfg = full_cfg;
  quant_cfg.cluster_mode = ClusterMode::kQuantized;
  auto naive_cfg = full_cfg;
  naive_cfg.cluster_mode = ClusterMode::kNaiveBinary;
  naive_cfg.cluster_init = ClusterInit::kRandom;  // the paper's naive foil

  MultiModelRegressor full(full_cfg);
  MultiModelRegressor quant(quant_cfg);
  MultiModelRegressor naive(naive_cfg);
  full.fit(task.train, task.val);
  quant.fit(task.train, task.val);
  naive.fit(task.train, task.val);

  const double mse_full = full.evaluate_mse(task.test);
  const double mse_quant = quant.evaluate_mse(task.test);
  const double mse_naive = naive.evaluate_mse(task.test);
  EXPECT_LT(mse_quant, mse_full * 1.25);
  EXPECT_GT(mse_naive, mse_quant * 1.3);
}

TEST(MultiModelTest, NaiveBinaryClustersNeverMove) {
  const EncodedTask task = multimodal_task(59);
  auto cfg = config_k(4);
  cfg.cluster_mode = ClusterMode::kNaiveBinary;
  cfg.cluster_init = ClusterInit::kRandom;
  MultiModelRegressor model(cfg);
  model.reset();
  const hdc::BinaryHV before = model.cluster(0).binary;
  model.fit(task.train, task.val);
  EXPECT_EQ(model.cluster(0).binary, before);
}

TEST(MultiModelTest, PredictionModesRankedByPrecision) {
  // Fig. 7 shape: full ≲ binary-query ≲ binary-model variants. We assert the
  // coarse ordering: every quantized mode stays useful (≪ mean predictor)
  // and binary-query/integer-model stays close to full precision.
  const EncodedTask task = multimodal_task(61);
  auto full_cfg = config_k(8);
  auto bq_im = full_cfg;
  bq_im.query_precision = QueryPrecision::kBinary;
  auto bq_bm = bq_im;
  bq_bm.model_precision = ModelPrecision::kBinary;

  MultiModelRegressor full(full_cfg);
  MultiModelRegressor bq(bq_im);
  MultiModelRegressor bb(bq_bm);
  full.fit(task.train, task.val);
  bq.fit(task.train, task.val);
  bb.fit(task.train, task.val);

  const double mse_full = full.evaluate_mse(task.test);
  const double mse_bq = bq.evaluate_mse(task.test);
  const double mse_bb = bb.evaluate_mse(task.test);
  EXPECT_LT(mse_full, 0.5);
  EXPECT_LT(mse_bq, mse_full * 1.5);
  EXPECT_LT(mse_bb, 1.0);           // still far better than predicting the mean
  EXPECT_GT(mse_bb, mse_full);      // but measurably worse than full precision
}

TEST(MultiModelTest, WinnerOnlyUpdateRuleAlsoLearns) {
  const EncodedTask task = multimodal_task(67);
  auto cfg = config_k(8);
  cfg.update_rule = UpdateRule::kWinnerOnly;
  MultiModelRegressor model(cfg);
  model.fit(task.train, task.val);
  EXPECT_LT(model.evaluate_mse(task.test), 0.5);
}

TEST(MultiModelTest, RandomClusterInitStillTrainsButUsesFewerClusters) {
  const EncodedTask task = multimodal_task(71);
  auto cfg = config_k(8);
  cfg.cluster_init = ClusterInit::kRandom;
  MultiModelRegressor random_init(cfg);
  random_init.fit(task.train, task.val);
  EXPECT_LT(random_init.evaluate_mse(task.test), 1.0);

  std::set<std::size_t> used;
  for (std::size_t i = 0; i < task.test.size(); ++i) {
    used.insert(random_init.assign_cluster(task.test.sample(i)));
  }
  MultiModelRegressor fps_init(config_k(8));
  fps_init.fit(task.train, task.val);
  std::set<std::size_t> used_fps;
  for (std::size_t i = 0; i < task.test.size(); ++i) {
    used_fps.insert(fps_init.assign_cluster(task.test.sample(i)));
  }
  EXPECT_LE(used.size(), used_fps.size());
}

TEST(MultiModelTest, DeterministicAcrossRuns) {
  const EncodedTask task = multimodal_task(73);
  MultiModelRegressor m1(config_k(4));
  MultiModelRegressor m2(config_k(4));
  m1.fit(task.train, task.val);
  m2.fit(task.train, task.val);
  for (std::size_t i = 0; i < task.test.size(); ++i) {
    EXPECT_DOUBLE_EQ(m1.predict(task.test.sample(i)), m2.predict(task.test.sample(i)));
  }
}

TEST(MultiModelTest, TrainStepReturnsPreUpdatePrediction) {
  const EncodedTask task = multimodal_task(79);
  MultiModelRegressor model(config_k(4));
  model.reset();
  const auto& s = task.train.sample(0);
  const double predicted_before = model.predict(s);
  const double returned = model.train_step(s, 1.0);
  EXPECT_DOUBLE_EQ(returned, predicted_before);
}

TEST(MultiModelTest, KEqualsOneMatchesSingleModelQuality) {
  const EncodedTask task = make_task(data::make_sine_task(600, 83), 1024, 83);
  MultiModelRegressor multi(config_k(1, 1024));
  SingleModelRegressor single(config_k(1, 1024));
  multi.fit(task.train, task.val);
  single.fit(task.train, task.val);
  const double m = multi.evaluate_mse(task.test);
  const double s = single.evaluate_mse(task.test);
  EXPECT_NEAR(m, s, 0.5 * std::max(m, s));
}

TEST(MultiModelTest, ErrorsOnMisuse) {
  MultiModelRegressor model(config_k(2, 512));
  EXPECT_THROW((void)model.evaluate_mse(EncodedDataset{}), std::invalid_argument);
  const EncodedTask task = make_task(data::make_sine_task(100, 89), 1024, 89);
  EXPECT_THROW((void)model.fit(task.train, task.val), std::invalid_argument);  // dim mismatch
  EXPECT_THROW((void)model.predict(task.test.sample(0)), std::invalid_argument);
}

TEST(MultiModelTest, SimilarityNormalizationSharpensCompressedSimilarities) {
  // With similarities compressed into a narrow band (as Eq. 1 encodings
  // produce), z-scoring must still differentiate the clusters while the raw
  // softmax at the same temperature stays near-uniform.
  util::Rng rng(6);
  hdc::EncodedSample query;
  query.real = hdc::random_bipolar(512, rng).to_real();
  query.bipolar = query.real.sign();
  query.binary = query.bipolar.pack();
  query.real_norm2 = 512.0;
  query.real_norm = std::sqrt(512.0);

  auto make = [&](bool normalize) {
    auto cfg = config_k(4, 512);
    cfg.normalize_similarities = normalize;
    MultiModelRegressor model(cfg);
    // Hand-craft clusters: C_i = base + eps_i * query with eps growing
    // slightly, so the four cosine similarities differ by a few hundredths.
    util::Rng base_rng(5);
    const hdc::RealHV base = hdc::random_bipolar(512, base_rng).to_real();
    for (std::size_t i = 0; i < 4; ++i) {
      auto& c = model.mutable_clusters()[i];
      c.accumulator = base;
      hdc::add_scaled(c.accumulator, query.real, 0.03 * static_cast<double>(i));
      double n2 = 0.0;
      for (const double v : c.accumulator.values()) {
        n2 += v * v;
      }
      c.norm2 = n2;
      c.requantize();
    }
    return model;
  };

  const MultiModelRegressor normalized = make(true);
  const MultiModelRegressor raw = make(false);
  const auto conf_norm = normalized.predict_detail(query).confidences;
  const auto conf_raw = raw.predict_detail(query).confidences;

  const auto max_of = [](const std::vector<double>& v) {
    return *std::max_element(v.begin(), v.end());
  };
  // Raw similarities differ by well under 0.1 -> raw softmax at tau=0.5 is
  // nearly uniform; z-scored confidences must be decisively sharper.
  EXPECT_LT(max_of(conf_raw), 0.32);
  EXPECT_GT(max_of(conf_norm), 0.45);
}

TEST(MultiModelTest, ClusterNormCacheStaysAccurate) {
  // After a full fit the incrementally-maintained ‖C‖² must match the exact
  // value (requantize() recomputes it; train steps maintain it in between).
  const EncodedTask task = multimodal_task(97);
  MultiModelRegressor model(config_k(4));
  model.fit(task.train, task.val);
  // Run extra raw train steps without an epoch-boundary requantize.
  for (std::size_t i = 0; i < 50; ++i) {
    model.train_step(task.train.sample(i), task.train.target(i));
  }
  for (std::size_t c = 0; c < model.num_models(); ++c) {
    double exact = 0.0;
    for (const double v : model.cluster(c).accumulator.values()) {
      exact += v * v;
    }
    EXPECT_NEAR(model.cluster(c).norm2, exact, 1e-6 * std::max(exact, 1.0));
  }
}

TEST(PackedBankTest, BuiltAfterFitAndMatchesSnapshotGeometry) {
  const EncodedTask task = multimodal_task(101);
  RegHDConfig cfg = config_k(4);
  cfg.query_precision = QueryPrecision::kBinary;
  cfg.model_precision = ModelPrecision::kTernary;
  MultiModelRegressor model(cfg);
  model.fit(task.train, task.val);

  const PackedTernaryBank& bank = model.packed_bank();
  ASSERT_TRUE(bank.valid);
  // k cluster rows + k model rows, one sign/mask word-row and one scale each.
  EXPECT_EQ(bank.rows, 2 * model.num_models());
  EXPECT_EQ(bank.words, (cfg.dim + 63) / 64);
  EXPECT_EQ(bank.signs.size(), bank.rows * bank.words);
  EXPECT_EQ(bank.masks.size(), bank.rows * bank.words);
  EXPECT_EQ(bank.scale.size(), bank.rows);
  // Cluster rows ride under a full mask with unit scale; model rows carry the
  // ternary mask and its γ_ternary.
  for (std::size_t c = 0; c < model.num_models(); ++c) {
    EXPECT_EQ(bank.scale[c], 1.0) << "cluster row " << c;
    std::size_t mask_bits = 0;
    for (std::size_t w = 0; w < bank.words; ++w) {
      mask_bits += static_cast<std::size_t>(
          std::popcount(bank.masks[c * bank.words + w]));
    }
    EXPECT_EQ(mask_bits, cfg.dim) << "cluster row " << c;
  }
  for (std::size_t m = 0; m < model.num_models(); ++m) {
    EXPECT_EQ(bank.scale[model.num_models() + m], model.model(m).gamma_ternary);
  }
  // The packed planes are 2 bits per component vs the 8-byte f64 bank row the
  // scan replaces — the ≥4× resident-bytes target with a wide margin.
  EXPECT_LE(bank.resident_bytes() * 4,
            bank.rows * cfg.dim * sizeof(double));
}

TEST(PackedBankTest, PredictBatchMatchesPerSamplePredictExactly) {
  // The bank sweep must replay predict()'s per-sample score arithmetic
  // bit-for-bit, for both quantized model precisions.
  for (const auto precision : {ModelPrecision::kBinary, ModelPrecision::kTernary}) {
    const EncodedTask task = multimodal_task(103);
    RegHDConfig cfg = config_k(4);
    cfg.query_precision = QueryPrecision::kBinary;
    cfg.model_precision = precision;
    MultiModelRegressor model(cfg);
    model.fit(task.train, task.val);

    const std::vector<double> batched = model.predict_batch(task.test);
    ASSERT_EQ(batched.size(), task.test.size());
    for (std::size_t i = 0; i < task.test.size(); ++i) {
      EXPECT_EQ(batched[i], model.predict(task.test.sample(i)))
          << to_string(precision) << " sample " << i;
    }
  }
}

TEST(PackedBankTest, MutableAccessInvalidatesAndRebuildRestores) {
  const EncodedTask task = multimodal_task(107);
  RegHDConfig cfg = config_k(4);
  cfg.query_precision = QueryPrecision::kBinary;
  cfg.model_precision = ModelPrecision::kBinary;
  MultiModelRegressor model(cfg);
  model.fit(task.train, task.val);
  ASSERT_TRUE(model.packed_bank().valid);
  const std::vector<double> before = model.predict_batch(task.test);

  // Touching mutable state marks the bank stale; predictions must not change
  // (predict_batch falls back to building a per-call bank) and an explicit
  // rebuild restores the cached one.
  (void)model.mutable_models();
  EXPECT_FALSE(model.packed_bank().valid);
  EXPECT_EQ(model.predict_batch(task.test), before);
  model.rebuild_packed_bank();
  EXPECT_TRUE(model.packed_bank().valid);
  EXPECT_EQ(model.predict_batch(task.test), before);
}

}  // namespace
}  // namespace reghd::core
