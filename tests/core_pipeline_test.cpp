// Tests for RegHDPipeline (the user-facing API) and model serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "core/model_io.hpp"
#include "core/pipeline.hpp"
#include "data/synthetic.hpp"
#include "util/metrics.hpp"
#include "util/random.hpp"

namespace reghd::core {
namespace {

PipelineConfig small_config(std::size_t models = 4, std::size_t dim = 1024) {
  PipelineConfig cfg;
  cfg.reghd.models = models;
  cfg.reghd.dim = dim;
  cfg.reghd.seed = 7;
  cfg.reghd.max_epochs = 30;
  return cfg;
}

data::TrainTestSplit friedman_split(std::uint64_t seed = 3) {
  const data::Dataset d = data::make_friedman1(1200, seed);
  util::Rng rng(seed);
  return data::train_test_split(d, 0.25, rng);
}

TEST(PipelineTest, FitPredictInOriginalUnits) {
  const auto split = friedman_split();
  RegHDPipeline pipeline(small_config());
  pipeline.fit(split.train);
  EXPECT_TRUE(pipeline.fitted());

  // Friedman targets live roughly in [0, 30]; predictions must be in
  // original units, not standardized ones.
  const std::vector<double> predictions = pipeline.predict_batch(split.test);
  double mean_pred = 0.0;
  for (const double p : predictions) {
    mean_pred += p;
  }
  mean_pred /= static_cast<double>(predictions.size());
  EXPECT_GT(mean_pred, 5.0);
  EXPECT_LT(mean_pred, 25.0);

  const double mse = util::mse(predictions, split.test.targets());
  // Mean-predictor MSE ≈ 25 on this task; the pipeline must beat it well.
  EXPECT_LT(mse, 12.0);
  EXPECT_NEAR(pipeline.evaluate_mse(split.test), mse, 1e-9);
}

TEST(PipelineTest, NamesEncodeConfiguration) {
  EXPECT_EQ(RegHDPipeline(small_config(8)).name(), "RegHD-8");
  auto cfg = small_config(2);
  cfg.reghd.cluster_mode = ClusterMode::kQuantized;
  EXPECT_EQ(RegHDPipeline(cfg).name(), "RegHD-2-qc");
  cfg = small_config(4);
  cfg.reghd.query_precision = QueryPrecision::kBinary;
  cfg.reghd.model_precision = ModelPrecision::kBinary;
  EXPECT_EQ(RegHDPipeline(cfg).name(), "RegHD-4-bqbm");
}

TEST(PipelineTest, ReportAvailableAfterFit) {
  const auto split = friedman_split(5);
  RegHDPipeline pipeline(small_config());
  EXPECT_THROW((void)pipeline.report(), std::invalid_argument);
  pipeline.fit(split.train);
  EXPECT_GE(pipeline.report().epochs_run, 1u);
}

TEST(PipelineTest, PredictDetailInOriginalUnits) {
  const auto split = friedman_split(7);
  RegHDPipeline pipeline(small_config());
  pipeline.fit(split.train);
  const PredictionDetail detail = pipeline.predict_detail(split.test.row(0));
  EXPECT_NEAR(detail.prediction, pipeline.predict(split.test.row(0)), 1e-9);
  ASSERT_EQ(detail.confidences.size(), 4u);
}

TEST(PipelineTest, UnfittedUseThrows) {
  RegHDPipeline pipeline(small_config());
  const std::vector<double> row(10, 0.0);
  EXPECT_THROW((void)pipeline.predict(row), std::invalid_argument);
  EXPECT_THROW((void)pipeline.regressor(), std::invalid_argument);
  EXPECT_THROW((void)pipeline.encoder(), std::invalid_argument);
}

TEST(PipelineTest, ValidatesConfigAtConstruction) {
  auto cfg = small_config();
  cfg.validation_fraction = 0.9;
  EXPECT_THROW(RegHDPipeline{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.reghd.models = 0;
  EXPECT_THROW(RegHDPipeline{cfg}, std::invalid_argument);
}

TEST(PipelineTest, RequiresMinimumTrainingData) {
  RegHDPipeline pipeline(small_config());
  data::Dataset tiny;
  const double f[] = {1.0};
  tiny.add_sample(f, 1.0);
  EXPECT_THROW(pipeline.fit(tiny), std::invalid_argument);
}

TEST(PipelineTest, DeterministicForFixedSeeds) {
  const auto split = friedman_split(11);
  RegHDPipeline p1(small_config());
  RegHDPipeline p2(small_config());
  p1.fit(split.train);
  p2.fit(split.train);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(p1.predict(split.test.row(i)), p2.predict(split.test.row(i)));
  }
}

TEST(PipelineTest, WorksWithoutStandardization) {
  auto cfg = small_config();
  cfg.standardize_features = false;
  cfg.standardize_target = false;
  // Friedman features are already in [0,1]; unstandardized learning should
  // still beat the mean, just in raw units.
  const auto split = friedman_split(13);
  RegHDPipeline pipeline(cfg);
  pipeline.fit(split.train);
  EXPECT_LT(pipeline.evaluate_mse(split.test), 26.0);
}

class PipelineEncoderKinds : public ::testing::TestWithParam<hdc::EncoderKind> {};

TEST_P(PipelineEncoderKinds, EndToEndLearnsWithEveryEncoder) {
  auto cfg = small_config(4, 2048);
  cfg.encoder.kind = GetParam();
  const auto split = friedman_split(31);
  RegHDPipeline pipeline(cfg);
  pipeline.fit(split.train);
  // Mean-predictor MSE ≈ 25 on Friedman; every encoder must clearly beat it
  // (the weaker discrete encoders by a smaller margin).
  EXPECT_LT(pipeline.evaluate_mse(split.test), 18.0) << hdc::to_string(GetParam());
}

TEST_P(PipelineEncoderKinds, SerializationRoundTripsForEveryEncoder) {
  auto cfg = small_config(2, 512);
  cfg.encoder.kind = GetParam();
  const auto split = friedman_split(37);
  RegHDPipeline original(cfg);
  original.fit(split.train);
  std::stringstream buffer;
  save_pipeline(buffer, original);
  const RegHDPipeline restored = load_pipeline(buffer);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(restored.predict(split.test.row(i)),
                     original.predict(split.test.row(i)));
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, PipelineEncoderKinds,
                         ::testing::Values(hdc::EncoderKind::kNonlinearFeature,
                                           hdc::EncoderKind::kRffProjection,
                                           hdc::EncoderKind::kIdLevel,
                                           hdc::EncoderKind::kTemporal),
                         [](const auto& info) { return hdc::to_string(info.param); });

TEST(ModelIoTest, RoundTripPreservesPredictionsExactly) {
  const auto split = friedman_split(17);
  RegHDPipeline original(small_config(4, 512));
  original.fit(split.train);

  std::stringstream buffer;
  save_pipeline(buffer, original);
  const RegHDPipeline restored = load_pipeline(buffer);

  for (std::size_t i = 0; i < split.test.size(); ++i) {
    EXPECT_DOUBLE_EQ(restored.predict(split.test.row(i)),
                     original.predict(split.test.row(i)));
  }
  EXPECT_EQ(restored.name(), original.name());
}

TEST(ModelIoTest, RoundTripPreservesQuantizedConfigurations) {
  auto cfg = small_config(4, 512);
  cfg.reghd.cluster_mode = ClusterMode::kQuantized;
  cfg.reghd.query_precision = QueryPrecision::kBinary;
  cfg.reghd.model_precision = ModelPrecision::kBinary;
  const auto split = friedman_split(19);
  RegHDPipeline original(cfg);
  original.fit(split.train);

  std::stringstream buffer;
  save_pipeline(buffer, original);
  const RegHDPipeline restored = load_pipeline(buffer);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(restored.predict(split.test.row(i)),
                     original.predict(split.test.row(i)));
  }
}

TEST(ModelIoTest, RejectsUnfittedPipelines) {
  RegHDPipeline pipeline(small_config());
  std::stringstream buffer;
  EXPECT_THROW(save_pipeline(buffer, pipeline), std::invalid_argument);
}

TEST(ModelIoTest, RejectsCorruptStreams) {
  std::stringstream garbage("this is not a model file");
  EXPECT_THROW((void)load_pipeline(garbage), std::runtime_error);

  // Valid header, truncated payload.
  const auto split = friedman_split(23);
  RegHDPipeline original(small_config(2, 512));
  original.fit(split.train);
  std::stringstream buffer;
  save_pipeline(buffer, original);
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW((void)load_pipeline(truncated), std::runtime_error);
}

TEST(ModelIoTest, FileRoundTrip) {
  const auto split = friedman_split(29);
  RegHDPipeline original(small_config(2, 512));
  original.fit(split.train);
  const std::string path = ::testing::TempDir() + "/reghd_model.bin";
  save_pipeline_file(path, original);
  const RegHDPipeline restored = load_pipeline_file(path);
  EXPECT_DOUBLE_EQ(restored.predict(split.test.row(0)), original.predict(split.test.row(0)));
  EXPECT_THROW((void)load_pipeline_file("/nonexistent/model.bin"), std::runtime_error);
}

}  // namespace
}  // namespace reghd::core
