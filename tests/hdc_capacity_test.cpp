// Tests for the hypervector capacity model (paper §2.3, Eq. 4), including
// the paper's worked example and a Monte-Carlo cross-check of the closed
// form.
#include <gtest/gtest.h>

#include <cmath>

#include "hdc/capacity.hpp"
#include "util/random.hpp"
#include "util/statistics.hpp"

namespace reghd::hdc {
namespace {

TEST(CapacityTest, PaperWorkedExample) {
  // "using D=100,000 and T=0.5, we can identify P=10,000 patterns with 5.7%
  // error" — Q(0.5·√10) = Q(1.5811) ≈ 0.0569.
  CapacityQuery q;
  q.dimension = 100000;
  q.patterns = 10000;
  q.threshold = 0.5;
  EXPECT_NEAR(false_positive_probability(q), 0.057, 0.001);
}

TEST(CapacityTest, ErrorGrowsWithPatternCount) {
  CapacityQuery q;
  q.dimension = 10000;
  q.threshold = 0.5;
  double prev = 0.0;
  for (const std::size_t p : {10u, 100u, 1000u, 10000u}) {
    q.patterns = p;
    const double err = false_positive_probability(q);
    EXPECT_GT(err, prev);
    prev = err;
  }
}

TEST(CapacityTest, ErrorShrinksWithDimension) {
  CapacityQuery q;
  q.patterns = 1000;
  q.threshold = 0.5;
  double prev = 1.0;
  for (const std::size_t d : {1000u, 4000u, 16000u, 64000u}) {
    q.dimension = d;
    const double err = false_positive_probability(q);
    EXPECT_LT(err, prev);
    prev = err;
  }
}

TEST(CapacityTest, HigherThresholdLowersError) {
  CapacityQuery q;
  q.dimension = 10000;
  q.patterns = 1000;
  q.threshold = 0.3;
  const double loose = false_positive_probability(q);
  q.threshold = 0.7;
  const double tight = false_positive_probability(q);
  EXPECT_LT(tight, loose);
}

TEST(CapacityTest, RejectsInvalidQueries) {
  CapacityQuery q;
  q.dimension = 0;
  EXPECT_THROW((void)false_positive_probability(q), std::invalid_argument);
  q = {};
  q.patterns = 0;
  EXPECT_THROW((void)false_positive_probability(q), std::invalid_argument);
  q = {};
  q.threshold = 1.5;
  EXPECT_THROW((void)false_positive_probability(q), std::invalid_argument);
}

TEST(CapacityInversionTest, MaxPatternsIsConsistentWithForwardModel) {
  const std::size_t p = max_patterns(100000, 0.5, 0.057);
  // The paper's example: ≈10k patterns at 5.7% error.
  EXPECT_NEAR(static_cast<double>(p), 10000.0, 300.0);

  // Forward-evaluating at the returned P must respect the error budget.
  CapacityQuery q;
  q.dimension = 100000;
  q.patterns = p;
  q.threshold = 0.5;
  EXPECT_LE(false_positive_probability(q), 0.0575);
}

TEST(CapacityInversionTest, MinDimensionIsConsistentWithForwardModel) {
  const std::size_t d = min_dimension(10000, 0.5, 0.057);
  EXPECT_NEAR(static_cast<double>(d), 100000.0, 3000.0);
  CapacityQuery q;
  q.dimension = d;
  q.patterns = 10000;
  q.threshold = 0.5;
  EXPECT_LE(false_positive_probability(q), 0.0575);
}

TEST(CapacityInversionTest, ZeroWhenBudgetUnreachable) {
  // A tiny dimension cannot store anything at a strict error budget.
  EXPECT_EQ(max_patterns(4, 0.5, 0.001), 0u);
}

// Monte-Carlo agreement sweep (validates the binomial→normal model the
// paper's Eq. 4 relies on).
struct McCase {
  std::size_t dimension;
  std::size_t patterns;
  double threshold;
};

class CapacityMonteCarloTest : public ::testing::TestWithParam<McCase> {};

TEST_P(CapacityMonteCarloTest, ClosedFormMatchesSimulation) {
  const McCase c = GetParam();
  CapacityQuery q;
  q.dimension = c.dimension;
  q.patterns = c.patterns;
  q.threshold = c.threshold;

  const double predicted = false_positive_probability(q);
  util::Rng rng(c.dimension * 7919 + c.patterns);
  constexpr std::size_t kTrials = 3000;
  const double simulated = simulate_false_positive_rate(q, kTrials, rng);

  // Binomial confidence band around the prediction (4σ) plus a small floor
  // for model error at low trial counts.
  const double sigma = std::sqrt(predicted * (1.0 - predicted) / kTrials);
  EXPECT_NEAR(simulated, predicted, 4.0 * sigma + 0.01)
      << "D=" << c.dimension << " P=" << c.patterns << " T=" << c.threshold;
}

INSTANTIATE_TEST_SUITE_P(Cases, CapacityMonteCarloTest,
                         ::testing::Values(McCase{2000, 200, 0.5},
                                           McCase{2000, 500, 0.5},
                                           McCase{4000, 400, 0.5},
                                           McCase{2000, 200, 0.3},
                                           McCase{1000, 400, 0.4}));

TEST(CapacitySimulationTest, RejectsZeroTrials) {
  CapacityQuery q;
  util::Rng rng(1);
  EXPECT_THROW((void)simulate_false_positive_rate(q, 0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace reghd::hdc
