// Tests for the linear regression baseline (closed-form ridge and SGD).
#include <gtest/gtest.h>

#include "baselines/linear.hpp"
#include "util/metrics.hpp"
#include "util/random.hpp"

namespace reghd::baselines {
namespace {

data::Dataset linear_dataset(std::size_t n, double noise, std::uint64_t seed) {
  util::Rng rng(seed);
  data::Dataset d;
  d.set_name("linear");
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = rng.normal();
    const double x1 = rng.normal();
    const double x2 = rng.normal();
    const double f[] = {x0, x1, x2};
    d.add_sample(f, 3.0 * x0 - 2.0 * x1 + 0.5 * x2 + 10.0 + rng.normal(0.0, noise));
  }
  return d;
}

TEST(LinearRegressionTest, RecoversNoiselessLinearFunction) {
  const data::Dataset d = linear_dataset(200, 0.0, 1);
  LinearRegression model;
  model.fit(d);
  util::Rng rng(2);
  for (int i = 0; i < 20; ++i) {
    const double x[] = {rng.normal(), rng.normal(), rng.normal()};
    const double expected = 3.0 * x[0] - 2.0 * x[1] + 0.5 * x[2] + 10.0;
    EXPECT_NEAR(model.predict(x), expected, 0.05);
  }
}

TEST(LinearRegressionTest, RobustToLabelNoise) {
  const data::Dataset train = linear_dataset(500, 1.0, 3);
  const data::Dataset test = linear_dataset(200, 0.0, 4);
  LinearRegression model;
  model.fit(train);
  const std::vector<double> pred = model.predict_batch(test);
  EXPECT_LT(util::mse(pred, test.targets()), 0.1);  // noise averages out
}

TEST(LinearRegressionTest, SgdPathApproachesClosedForm) {
  const data::Dataset d = linear_dataset(400, 0.1, 5);
  LinearConfig sgd_cfg;
  sgd_cfg.use_sgd = true;
  sgd_cfg.epochs = 100;
  sgd_cfg.learning_rate = 0.02;
  LinearRegression sgd(sgd_cfg);
  LinearRegression exact;
  sgd.fit(d);
  exact.fit(d);
  util::Rng rng(6);
  for (int i = 0; i < 10; ++i) {
    const double x[] = {rng.normal(), rng.normal(), rng.normal()};
    EXPECT_NEAR(sgd.predict(x), exact.predict(x), 0.5);
  }
}

TEST(LinearRegressionTest, HandlesCollinearFeaturesViaRidgeFloor) {
  // Duplicate feature columns make plain OLS singular; the ridge floor must
  // keep the solve well-posed.
  util::Rng rng(7);
  data::Dataset d;
  for (int i = 0; i < 100; ++i) {
    const double x = rng.normal();
    const double f[] = {x, x};  // perfectly collinear
    d.add_sample(f, 2.0 * x);
  }
  LinearConfig cfg;
  cfg.l2 = 0.0;  // exercise the internal floor
  LinearRegression model(cfg);
  model.fit(d);
  const double x[] = {1.0, 1.0};
  EXPECT_NEAR(model.predict(x), 2.0, 0.1);
}

TEST(LinearRegressionTest, WeightsExposedAfterFit) {
  const data::Dataset d = linear_dataset(100, 0.0, 9);
  LinearRegression model;
  model.fit(d);
  EXPECT_EQ(model.weights().size(), 4u);  // 3 features + bias
}

TEST(LinearRegressionTest, ErrorsOnMisuse) {
  LinearRegression model;
  EXPECT_THROW((void)model.predict(std::vector<double>{1.0}), std::invalid_argument);
  LinearConfig bad;
  bad.l2 = -1.0;
  EXPECT_THROW(LinearRegression{bad}, std::invalid_argument);
  data::Dataset one;
  const double f[] = {1.0};
  one.add_sample(f, 1.0);
  EXPECT_THROW(model.fit(one), std::invalid_argument);
}

TEST(LinearRegressionTest, NameIsStable) {
  EXPECT_EQ(LinearRegression().name(), "LinearRegression");
}

}  // namespace
}  // namespace reghd::baselines
