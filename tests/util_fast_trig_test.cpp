#include "util/fast_trig.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/random.hpp"

namespace reghd::util {
namespace {

// sin ∈ [−1, 1], so absolute error is the meaningful scale; ~2 ulp of 1.0.
constexpr double kTol = 5e-16;

TEST(FastSinTest, MatchesLibmOnEncoderRange) {
  // The RFF encoder evaluates sin(2z + b) with z a Gaussian projection and
  // b ∈ [0, 2π) — sweep well past that range densely.
  for (int i = -300000; i <= 300000; ++i) {
    const double x = static_cast<double>(i) * 1e-4;  // [−30, 30], step 1e-4
    ASSERT_NEAR(fast_sin(x), std::sin(x), kTol) << "x = " << x;
  }
}

TEST(FastSinTest, MatchesLibmOnRandomWideArguments) {
  Rng rng(0xFA57);
  for (int i = 0; i < 200000; ++i) {
    const double x = rng.normal(0.0, 1e4);
    ASSERT_NEAR(fast_sin(x), std::sin(x), kTol) << "x = " << x;
  }
}

TEST(FastSinTest, ExactAtZeroAndSymmetric) {
  EXPECT_EQ(fast_sin(0.0), 0.0);
  EXPECT_EQ(fast_sin(-0.0), -0.0);
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(0.0, 10.0);
    EXPECT_EQ(fast_sin(-x), -fast_sin(x)) << "x = " << x;
  }
}

TEST(FastSinTest, QuadrantBoundaries) {
  const double pi = std::acos(-1.0);
  for (int k = -16; k <= 16; ++k) {
    for (const double eps : {-1e-9, 0.0, 1e-9}) {
      const double x = static_cast<double>(k) * pi / 2.0 + eps;
      EXPECT_NEAR(fast_sin(x), std::sin(x), kTol) << "x = " << x;
    }
  }
}

TEST(FastSinTest, FallsBackBeyondReductionRange) {
  for (const double x : {1e10, -3e12, 1e300}) {
    EXPECT_EQ(fast_sin(x), std::sin(x)) << "x = " << x;
  }
  EXPECT_TRUE(std::isnan(fast_sin(std::numeric_limits<double>::quiet_NaN())));
  EXPECT_TRUE(std::isnan(fast_sin(std::numeric_limits<double>::infinity())));
}

TEST(FastCosTest, MatchesLibmOnEncoderRange) {
  // Box–Muller evaluates cos(2πu), u ∈ [0, 1) — sweep well past [0, 2π).
  for (int i = -300000; i <= 300000; ++i) {
    const double x = static_cast<double>(i) * 1e-4;
    ASSERT_NEAR(fast_cos(x), std::cos(x), kTol) << "x = " << x;
  }
}

TEST(FastCosTest, MatchesLibmOnRandomWideArguments) {
  Rng rng(0xC05);
  for (int i = 0; i < 200000; ++i) {
    const double x = rng.normal(0.0, 1e4);
    ASSERT_NEAR(fast_cos(x), std::cos(x), kTol) << "x = " << x;
  }
}

TEST(FastCosTest, ExactAtZeroAndEven) {
  EXPECT_EQ(fast_cos(0.0), 1.0);
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(0.0, 10.0);
    EXPECT_EQ(fast_cos(-x), fast_cos(x)) << "x = " << x;
  }
}

TEST(FastCosTest, QuadrantBoundaries) {
  const double pi = std::acos(-1.0);
  for (int k = -16; k <= 16; ++k) {
    for (const double eps : {-1e-9, 0.0, 1e-9}) {
      const double x = static_cast<double>(k) * pi / 2.0 + eps;
      EXPECT_NEAR(fast_cos(x), std::cos(x), kTol) << "x = " << x;
    }
  }
}

TEST(FastCosTest, FallsBackBeyondReductionRange) {
  for (const double x : {1e10, -3e12, 1e300}) {
    EXPECT_EQ(fast_cos(x), std::cos(x)) << "x = " << x;
  }
  EXPECT_TRUE(std::isnan(fast_cos(std::numeric_limits<double>::quiet_NaN())));
  EXPECT_TRUE(std::isnan(fast_cos(std::numeric_limits<double>::infinity())));
}

TEST(FastLogTest, MatchesLibmOnBoxMullerDomain) {
  // Rematerialization evaluates ln(u1), u1 ∈ (2⁻⁵³, 1] — relative accuracy is
  // the meaningful scale because √(−2·ln u1) amplifies nothing below ~1 ulp.
  Rng rng(0x106);
  for (int i = 0; i < 200000; ++i) {
    const double u = std::ldexp(static_cast<double>((rng.bits() >> 11) + 1), -53);
    const double want = std::log(u);
    ASSERT_NEAR(fast_log(u), want, 5e-16 * std::max(1.0, std::fabs(want)))
        << "u = " << u;
  }
}

TEST(FastLogTest, MatchesLibmOnWidePositiveRange) {
  Rng rng(0x107);
  for (int i = 0; i < 100000; ++i) {
    const double x = std::exp(rng.normal(0.0, 100.0));
    if (!std::isnormal(x)) {
      continue;  // the kernel's documented domain is positive normals
    }
    const double want = std::log(x);
    ASSERT_NEAR(fast_log(x), want, 5e-16 * std::max(1.0, std::fabs(want)))
        << "x = " << x;
  }
}

TEST(FastLogTest, ExactAtOneAndPowersOfTwo) {
  EXPECT_EQ(fast_log(1.0), 0.0);
  // log(2^k) = k·ln2 — the pure-exponent path of the kernel.
  for (int k = -100; k <= 100; ++k) {
    const double x = std::ldexp(1.0, k);
    EXPECT_NEAR(fast_log(x), std::log(x), 5e-16 * std::max(1.0, std::fabs(std::log(x))))
        << "k = " << k;
  }
}

}  // namespace
}  // namespace reghd::util
