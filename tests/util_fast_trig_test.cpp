#include "util/fast_trig.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/random.hpp"

namespace reghd::util {
namespace {

// sin ∈ [−1, 1], so absolute error is the meaningful scale; ~2 ulp of 1.0.
constexpr double kTol = 5e-16;

TEST(FastSinTest, MatchesLibmOnEncoderRange) {
  // The RFF encoder evaluates sin(2z + b) with z a Gaussian projection and
  // b ∈ [0, 2π) — sweep well past that range densely.
  for (int i = -300000; i <= 300000; ++i) {
    const double x = static_cast<double>(i) * 1e-4;  // [−30, 30], step 1e-4
    ASSERT_NEAR(fast_sin(x), std::sin(x), kTol) << "x = " << x;
  }
}

TEST(FastSinTest, MatchesLibmOnRandomWideArguments) {
  Rng rng(0xFA57);
  for (int i = 0; i < 200000; ++i) {
    const double x = rng.normal(0.0, 1e4);
    ASSERT_NEAR(fast_sin(x), std::sin(x), kTol) << "x = " << x;
  }
}

TEST(FastSinTest, ExactAtZeroAndSymmetric) {
  EXPECT_EQ(fast_sin(0.0), 0.0);
  EXPECT_EQ(fast_sin(-0.0), -0.0);
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(0.0, 10.0);
    EXPECT_EQ(fast_sin(-x), -fast_sin(x)) << "x = " << x;
  }
}

TEST(FastSinTest, QuadrantBoundaries) {
  const double pi = std::acos(-1.0);
  for (int k = -16; k <= 16; ++k) {
    for (const double eps : {-1e-9, 0.0, 1e-9}) {
      const double x = static_cast<double>(k) * pi / 2.0 + eps;
      EXPECT_NEAR(fast_sin(x), std::sin(x), kTol) << "x = " << x;
    }
  }
}

TEST(FastSinTest, FallsBackBeyondReductionRange) {
  for (const double x : {1e10, -3e12, 1e300}) {
    EXPECT_EQ(fast_sin(x), std::sin(x)) << "x = " << x;
  }
  EXPECT_TRUE(std::isnan(fast_sin(std::numeric_limits<double>::quiet_NaN())));
  EXPECT_TRUE(std::isnan(fast_sin(std::numeric_limits<double>::infinity())));
}

}  // namespace
}  // namespace reghd::util
