// Tests for hypervector algebra — in particular the exact identities that
// make the §3 quantized kernels faithful stand-ins for full precision:
//   bipolar_dot = D − 2·hamming,   dot(real, binary) = dot(real, bipolar).
#include <gtest/gtest.h>

#include <cmath>

#include "hdc/hypervector.hpp"
#include "hdc/ops.hpp"
#include "hdc/random_hv.hpp"
#include "util/random.hpp"

namespace reghd::hdc {
namespace {

class OpsIdentityTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OpsIdentityTest, BipolarDotEqualsDMinusTwoHamming) {
  const std::size_t dim = GetParam();
  util::Rng rng(dim);
  const BinaryHV a = random_binary(dim, rng);
  const BinaryHV b = random_binary(dim, rng);
  const std::int64_t packed = bipolar_dot(a, b);
  const std::int64_t dense = bipolar_dot(a.unpack(), b.unpack());
  EXPECT_EQ(packed, dense);
  EXPECT_EQ(packed, static_cast<std::int64_t>(dim) -
                        2 * static_cast<std::int64_t>(hamming_distance(a, b)));
}

TEST_P(OpsIdentityTest, RealBinaryDotEqualsRealBipolarDot) {
  const std::size_t dim = GetParam();
  util::Rng rng(dim + 1);
  const RealHV m = random_gaussian(dim, rng);
  const BipolarHV s = random_bipolar(dim, rng);
  EXPECT_NEAR(dot(m, s), dot(m, s.pack()), 1e-9);
}

TEST_P(OpsIdentityTest, HammingSimilarityEqualsBipolarCosine) {
  const std::size_t dim = GetParam();
  util::Rng rng(dim + 2);
  const BinaryHV a = random_binary(dim, rng);
  const BinaryHV b = random_binary(dim, rng);
  const double expected = static_cast<double>(bipolar_dot(a, b)) / static_cast<double>(dim);
  EXPECT_NEAR(hamming_similarity(a, b), expected, 1e-12);
}

// Odd sizes exercise the padded final word; 64/128 exercise exact word fits.
INSTANTIATE_TEST_SUITE_P(Dims, OpsIdentityTest,
                         ::testing::Values(1, 63, 64, 65, 128, 1000, 4096));

TEST(DotTest, HandComputedRealReal) {
  const RealHV a(std::vector<double>{1.0, 2.0, 3.0});
  const RealHV b(std::vector<double>{4.0, -5.0, 6.0});
  EXPECT_DOUBLE_EQ(dot(a, b), 4.0 - 10.0 + 18.0);
}

TEST(DotTest, RejectsDimensionMismatch) {
  const RealHV a(4);
  const RealHV b(5);
  EXPECT_THROW((void)dot(a, b), std::invalid_argument);
  EXPECT_THROW((void)dot(a, BipolarHV(5)), std::invalid_argument);
  EXPECT_THROW((void)dot(a, BinaryHV(5)), std::invalid_argument);
  EXPECT_THROW((void)hamming_distance(BinaryHV(4), BinaryHV(5)), std::invalid_argument);
}

TEST(HammingTest, SelfDistanceZeroComplementFull) {
  util::Rng rng(31);
  const BinaryHV a = random_binary(200, rng);
  EXPECT_EQ(hamming_distance(a, a), 0u);
  BinaryHV complement(200);
  for (std::size_t i = 0; i < 200; ++i) {
    complement.set_bit(i, !a.bit(i));
  }
  EXPECT_EQ(hamming_distance(a, complement), 200u);
  EXPECT_DOUBLE_EQ(hamming_similarity(a, a), 1.0);
  EXPECT_DOUBLE_EQ(hamming_similarity(a, complement), -1.0);
}

TEST(CosineTest, RangeAndKnownValues) {
  const RealHV a(std::vector<double>{1.0, 0.0});
  const RealHV b(std::vector<double>{0.0, 1.0});
  const RealHV c(std::vector<double>{2.0, 0.0});
  EXPECT_NEAR(cosine(a, b), 0.0, 1e-12);
  EXPECT_NEAR(cosine(a, c), 1.0, 1e-12);  // scale-invariant
}

TEST(CosineTest, ZeroVectorYieldsZero) {
  const RealHV zero(3);
  const RealHV v(std::vector<double>{1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(cosine(zero, v), 0.0);
}

TEST(CosineTest, MixedOverloadsAgreeWithRealReal) {
  util::Rng rng(37);
  const RealHV m = random_gaussian(512, rng);
  const BipolarHV s = random_bipolar(512, rng);
  const double reference = cosine(m, s.to_real());
  EXPECT_NEAR(cosine(m, s), reference, 1e-12);
  EXPECT_NEAR(cosine(m, s.pack()), reference, 1e-12);
}

TEST(NormTest, Euclidean) {
  const RealHV v(std::vector<double>{3.0, 4.0});
  EXPECT_DOUBLE_EQ(norm(v), 5.0);
}

TEST(AddScaledTest, AllSampleRepresentationsAgree) {
  util::Rng rng(41);
  const BipolarHV s = random_bipolar(300, rng);
  RealHV via_bipolar(300);
  RealHV via_binary(300);
  RealHV via_real(300);
  add_scaled(via_bipolar, s, 0.75);
  add_scaled(via_binary, s.pack(), 0.75);
  add_scaled(via_real, s.to_real(), 0.75);
  for (std::size_t i = 0; i < 300; ++i) {
    EXPECT_DOUBLE_EQ(via_bipolar[i], via_binary[i]);
    EXPECT_NEAR(via_bipolar[i], via_real[i], 1e-12);
  }
}

TEST(AddScaledTest, AccumulatesRepeatedUpdates) {
  RealHV acc(2);
  const RealHV s(std::vector<double>{1.0, -1.0});
  add_scaled(acc, s, 0.5);
  add_scaled(acc, s, 0.25);
  EXPECT_DOUBLE_EQ(acc[0], 0.75);
  EXPECT_DOUBLE_EQ(acc[1], -0.75);
}

TEST(ScaleTest, MultipliesComponents) {
  RealHV v(std::vector<double>{2.0, -4.0});
  scale(v, -0.5);
  EXPECT_DOUBLE_EQ(v[0], -1.0);
  EXPECT_DOUBLE_EQ(v[1], 2.0);
}

TEST(XorBindTest, EquivalentToBipolarMultiplication) {
  util::Rng rng(43);
  const BinaryHV a = random_binary(150, rng);
  const BinaryHV b = random_binary(150, rng);
  const BinaryHV bound = xor_bind(a, b);
  for (std::size_t i = 0; i < 150; ++i) {
    EXPECT_EQ(bound.bipolar(i), a.bipolar(i) * b.bipolar(i));
  }
}

TEST(XorBindTest, SelfBindIsIdentityVector) {
  util::Rng rng(47);
  const BinaryHV a = random_binary(128, rng);
  const BinaryHV self = xor_bind(a, a);
  EXPECT_EQ(self.popcount(), 128u);  // all +1
}

TEST(XorBindTest, BindingPreservesDistance) {
  // d(bind(a,c), bind(b,c)) = d(a,b): binding is an isometry.
  util::Rng rng(53);
  const BinaryHV a = random_binary(256, rng);
  const BinaryHV b = random_binary(256, rng);
  const BinaryHV c = random_binary(256, rng);
  EXPECT_EQ(hamming_distance(xor_bind(a, c), xor_bind(b, c)), hamming_distance(a, b));
}

TEST(MaskedDotTest, MatchesElementwiseReference) {
  util::Rng rng(61);
  const std::size_t dim = 300;
  const BinaryHV a = random_binary(dim, rng);
  const BinaryHV b = random_binary(dim, rng);
  const BinaryHV mask = random_binary(dim, rng);

  std::int64_t expected = 0;
  for (std::size_t j = 0; j < dim; ++j) {
    if (mask.bit(j)) {
      expected += a.bipolar(j) * b.bipolar(j);
    }
  }
  EXPECT_EQ(masked_bipolar_dot(a, b, mask), expected);

  const RealHV q = random_gaussian(dim, rng);
  double expected_real = 0.0;
  for (std::size_t j = 0; j < dim; ++j) {
    if (mask.bit(j)) {
      expected_real += a.bit(j) ? q[j] : -q[j];
    }
  }
  EXPECT_NEAR(masked_dot(q, a, mask), expected_real, 1e-9);
}

TEST(MaskedDotTest, FullMaskReducesToUnmaskedKernels) {
  util::Rng rng(67);
  const std::size_t dim = 256;
  const BinaryHV a = random_binary(dim, rng);
  const BinaryHV b = random_binary(dim, rng);
  BinaryHV full(dim);
  for (std::size_t j = 0; j < dim; ++j) {
    full.set_bit(j, true);
  }
  EXPECT_EQ(masked_bipolar_dot(a, b, full), bipolar_dot(a, b));
  const RealHV q = random_gaussian(dim, rng);
  EXPECT_NEAR(masked_dot(q, a, full), dot(q, a), 1e-9);
}

TEST(MaskedDotTest, EmptyMaskYieldsZero) {
  util::Rng rng(71);
  const BinaryHV a = random_binary(128, rng);
  const BinaryHV b = random_binary(128, rng);
  const BinaryHV empty(128);
  EXPECT_EQ(masked_bipolar_dot(a, b, empty), 0);
  EXPECT_DOUBLE_EQ(masked_dot(random_gaussian(128, rng), a, empty), 0.0);
}

TEST(MaskedDotTest, RejectsDimensionMismatch) {
  const BinaryHV a(64);
  const BinaryHV b(64);
  const BinaryHV mask(65);
  EXPECT_THROW((void)masked_bipolar_dot(a, b, mask), std::invalid_argument);
  EXPECT_THROW((void)masked_dot(RealHV(64), a, mask), std::invalid_argument);
}

TEST(PermuteTest, RotationAndInverse) {
  util::Rng rng(59);
  const BinaryHV a = random_binary(100, rng);
  const BinaryHV rotated = permute(a, 17);
  EXPECT_EQ(rotated.popcount(), a.popcount());
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(rotated.bit((i + 17) % 100), a.bit(i));
  }
  EXPECT_EQ(permute(rotated, 100 - 17), a);
  EXPECT_EQ(permute(a, 0), a);
  EXPECT_EQ(permute(a, 100), a);  // full cycle
}

TEST(MajorityTest, OddCountMajorityRules) {
  BinaryHV ones(4);
  for (std::size_t i = 0; i < 4; ++i) {
    ones.set_bit(i, true);
  }
  const BinaryHV zeros(4);
  const BinaryHV maj = majority({ones, ones, zeros});
  EXPECT_EQ(maj, ones);
}

TEST(MajorityTest, TieBreaksTowardOne) {
  BinaryHV ones(4);
  for (std::size_t i = 0; i < 4; ++i) {
    ones.set_bit(i, true);
  }
  const BinaryHV zeros(4);
  const BinaryHV maj = majority({ones, zeros});
  EXPECT_EQ(maj, ones);
}

TEST(MajorityTest, RejectsEmptyInput) {
  EXPECT_THROW((void)majority({}), std::invalid_argument);
}

}  // namespace
}  // namespace reghd::hdc
