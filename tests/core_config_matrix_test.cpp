// Configuration-matrix conformance: every combination of cluster mode ×
// query precision × model precision × update rule × model count must train
// without blowing up and beat the mean predictor on a learnable task. This
// is the grid a downstream user can reach through RegHDConfig — no
// combination is allowed to be silently broken.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>

#include "core/multi_model.hpp"
#include "data/scaler.hpp"
#include "data/synthetic.hpp"
#include "hdc/encoding.hpp"
#include "util/random.hpp"

namespace reghd::core {
namespace {

struct MatrixCase {
  ClusterMode cluster;
  QueryPrecision query;
  ModelPrecision model;
  UpdateRule rule;
  std::size_t k;
};

std::string case_label(const MatrixCase& c) {
  std::ostringstream oss;
  switch (c.cluster) {
    case ClusterMode::kFullPrecision:
      oss << "fp";
      break;
    case ClusterMode::kQuantized:
      oss << "qc";
      break;
    case ClusterMode::kNaiveBinary:
      oss << "nb";
      break;
  }
  oss << (c.query == QueryPrecision::kReal ? "_iq" : "_bq");
  switch (c.model) {
    case ModelPrecision::kReal:
      oss << "im";
      break;
    case ModelPrecision::kBinary:
      oss << "bm";
      break;
    case ModelPrecision::kTernary:
      oss << "tm";
      break;
  }
  oss << (c.rule == UpdateRule::kConfidenceWeighted ? "_cw" : "_wo");
  oss << "_k" << c.k;
  return oss.str();
}

std::string case_name(const ::testing::TestParamInfo<MatrixCase>& info) {
  return case_label(info.param);
}

class ConfigMatrixTest : public ::testing::TestWithParam<MatrixCase> {
 protected:
  struct Task {
    EncodedDataset train;
    EncodedDataset val;
    EncodedDataset test;
    std::unique_ptr<hdc::Encoder> encoder;
  };

  static const Task& shared_task() {
    static const Task task = [] {
      data::Dataset dataset = data::make_multimodal_task(900, 4, 4, 0xC0F16, 0.05);
      data::StandardScaler fs;
      fs.fit(dataset);
      fs.transform(dataset);
      data::TargetScaler ts;
      ts.fit(dataset);
      ts.transform(dataset);
      util::Rng rng(0xC0F16);
      const data::TrainTestSplit outer = data::train_test_split(dataset, 0.25, rng);
      const data::TrainTestSplit inner = data::train_test_split(outer.train, 0.2, rng);
      hdc::EncoderConfig enc;
      enc.input_dim = dataset.num_features();
      enc.dim = 1024;
      enc.seed = 0xC0F16;
      Task t;
      t.encoder = hdc::make_encoder(enc);
      t.train = EncodedDataset::from(*t.encoder, inner.train);
      t.val = EncodedDataset::from(*t.encoder, inner.test);
      t.test = EncodedDataset::from(*t.encoder, outer.test);
      return t;
    }();
    return task;
  }
};

TEST_P(ConfigMatrixTest, TrainsAndBeatsMeanPredictor) {
  const MatrixCase& c = GetParam();
  RegHDConfig cfg;
  cfg.dim = 1024;
  cfg.models = c.k;
  cfg.cluster_mode = c.cluster;
  cfg.query_precision = c.query;
  cfg.model_precision = c.model;
  cfg.update_rule = c.rule;
  cfg.max_epochs = 30;
  cfg.seed = 0xC0F16;
  if (c.cluster == ClusterMode::kNaiveBinary) {
    cfg.cluster_init = ClusterInit::kRandom;  // the paper's naive foil setup
  }

  const Task& task = shared_task();
  MultiModelRegressor model(cfg);
  const TrainingReport report = model.fit(task.train, task.val);

  EXPECT_GE(report.epochs_run, 1u);
  const double mse = model.evaluate_mse(task.test);
  EXPECT_TRUE(std::isfinite(mse)) << case_label(c);
  // Standardized targets: the mean predictor scores ≈ 1. Even the crudest
  // quantized configuration must clearly beat it.
  EXPECT_LT(mse, 0.85);

  // Predictions must be finite for arbitrary valid queries.
  const double p = model.predict(task.test.sample(0));
  EXPECT_TRUE(std::isfinite(p));
}

std::vector<MatrixCase> all_cases() {
  std::vector<MatrixCase> cases;
  for (const auto cluster : {ClusterMode::kFullPrecision, ClusterMode::kQuantized,
                             ClusterMode::kNaiveBinary}) {
    for (const auto query : {QueryPrecision::kReal, QueryPrecision::kBinary}) {
      for (const auto model : {ModelPrecision::kReal, ModelPrecision::kBinary,
                               ModelPrecision::kTernary}) {
        for (const auto rule :
             {UpdateRule::kConfidenceWeighted, UpdateRule::kWinnerOnly}) {
          for (const std::size_t k : {std::size_t{1}, std::size_t{4}}) {
            cases.push_back({cluster, query, model, rule, k});
          }
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllCombinations, ConfigMatrixTest,
                         ::testing::ValuesIn(all_cases()), case_name);

}  // namespace
}  // namespace reghd::core
