// Tests for the report rendering (tables and series charts).
#include <gtest/gtest.h>

#include <sstream>

#include "util/table.hpp"

namespace reghd::util {
namespace {

TEST(TableTest, RendersAlignedColumnsWithSeparator) {
  Table t({"name", "mse"});
  t.add_row({"DNN", "14.6"});
  t.add_row({"RegHD-32", "15.8"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("RegHD-32"), std::string::npos);
  EXPECT_NE(s.find("|----"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TableTest, RejectsWrongRowWidth) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(Table(std::vector<std::string>{}), std::invalid_argument);
}

TEST(TableTest, NumericCellFormatting) {
  EXPECT_EQ(Table::cell(3.14159, 2), "3.14");
  EXPECT_EQ(Table::cell(0.0), "0.0000");
  // Very large and very small values switch to scientific notation.
  EXPECT_NE(Table::cell(1.5e7).find('e'), std::string::npos);
  EXPECT_NE(Table::cell(1.5e-7).find('e'), std::string::npos);
}

TEST(TableTest, RatioAndPercentCells) {
  EXPECT_EQ(Table::cell_ratio(5.6), "5.60x");
  EXPECT_EQ(Table::cell_percent(0.3), "0.3%");
  EXPECT_EQ(Table::cell_percent(12.34, 2), "12.34%");
}

TEST(TableTest, StreamsViaOperator) {
  Table t({"x"});
  t.add_row({"1"});
  std::ostringstream oss;
  oss << t;
  EXPECT_EQ(oss.str(), t.to_string());
}

TEST(SeriesChartTest, RendersAllSeriesAndLabels) {
  SeriesChart chart("Fig 3a", "epoch", "mse");
  chart.add_series("single-model", {{"1", 10.0}, {"2", 5.0}});
  chart.add_series("multi-model", {{"1", 8.0}, {"2", 2.0}});
  const std::string s = chart.to_string();
  EXPECT_NE(s.find("Fig 3a"), std::string::npos);
  EXPECT_NE(s.find("single-model"), std::string::npos);
  EXPECT_NE(s.find("multi-model"), std::string::npos);
  EXPECT_NE(s.find("epoch"), std::string::npos);
}

TEST(SeriesChartTest, BarLengthProportionalToValue) {
  SeriesChart chart("t", "x", "y");
  chart.add_series("s", {{"big", 10.0}, {"small", 1.0}});
  const std::string s = chart.to_string();
  const auto count_hashes_after = [&](const std::string& label) {
    const auto pos = s.find(label);
    const auto eol = s.find('\n', pos);
    return static_cast<long>(std::count(s.begin() + static_cast<long>(pos),
                                        s.begin() + static_cast<long>(eol), '#'));
  };
  EXPECT_GT(count_hashes_after("big"), count_hashes_after("small") * 5);
}

TEST(SeriesChartTest, RejectsEmptySeries) {
  SeriesChart chart("t", "x", "y");
  EXPECT_THROW(chart.add_series("empty", {}), std::invalid_argument);
}

TEST(SectionBannerTest, ContainsTitle) {
  const std::string banner = section_banner("Table 1");
  EXPECT_NE(banner.find("Table 1"), std::string::npos);
  EXPECT_NE(banner.find("===="), std::string::npos);
}

}  // namespace
}  // namespace reghd::util
