// TenantStore semantics: residency budget + LRU order, checkpoint-backed
// eviction with bit-identical reactivation (the PR 2 guarantee applied per
// tenant), capacity-model tier sizing and promotion, spill budgets, disk
// spill, and the Server tenant-mode integration.
#include "serve/tenant_store.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <thread>
#include <vector>

#include "core/online.hpp"
#include "data/synthetic.hpp"
#include "serve/server.hpp"

namespace reghd::serve {
namespace {

core::OnlineConfig base_online(std::size_t dim = 256) {
  core::OnlineConfig cfg;
  cfg.reghd.dim = dim;
  cfg.reghd.models = 2;
  cfg.requantize_every = 32;
  return cfg;
}

/// Flat-dim store config (strict lifetime bit-identity: no tier rebuilds).
TenantStoreConfig flat_config(std::size_t budget) {
  TenantStoreConfig tc;
  tc.resident_budget = budget;
  tc.tiered_dims = false;
  return tc;
}

TEST(ServeTenantStoreTest, ResidentBudgetHoldsAndLruTailEvictsFirst) {
  const data::Dataset d = data::make_friedman1(32, 6);
  TenantStore store(flat_config(4), base_online(), d.num_features());

  for (std::uint64_t t = 0; t < 4; ++t) {
    (void)store.update(t, d.row(t), d.target(t));
  }
  EXPECT_EQ(store.resident_count(), 4U);
  EXPECT_EQ(store.stats().evictions, 0U);

  // Re-touch tenant 0 so tenant 1 is the LRU tail, then overflow the budget.
  (void)store.predict(0, d.row(0));
  (void)store.update(4, d.row(4), d.target(4));
  EXPECT_EQ(store.resident_count(), 4U);
  EXPECT_EQ(store.stats().evictions, 1U);
  EXPECT_FALSE(store.is_resident(1));  // the least recently used went first
  EXPECT_TRUE(store.is_resident(0));
  EXPECT_TRUE(store.is_resident(4));

  const TenantStoreStats s = store.stats();
  EXPECT_EQ(s.activations, 5U);
  EXPECT_EQ(s.spilled, 1U);
  EXPECT_GT(s.spill_bytes, 0U);
  EXPECT_GT(s.resident_bytes, 0U);
}

TEST(ServeTenantStoreTest, EvictedTenantResumesBitIdentically) {
  const data::Dataset d = data::make_friedman1(128, 6);
  const core::OnlineConfig cfg = base_online();
  TenantStore store(flat_config(2), cfg, d.num_features());

  // Control: an identical never-evicted learner driven with the same
  // sequence as tenant 7.
  core::OnlineRegHD control(cfg, d.num_features());
  for (std::size_t i = 0; i < 40; ++i) {
    const double via_store = store.update(7, d.row(i), d.target(i));
    const double via_control = control.update(d.row(i), d.target(i));
    ASSERT_EQ(via_store, via_control) << "pre-eviction step " << i;
  }

  // Force tenant 7 out through the checkpoint container…
  (void)store.predict(100, d.row(0));
  (void)store.predict(101, d.row(1));
  ASSERT_FALSE(store.is_resident(7));
  ASSERT_GE(store.stats().evictions, 1U);

  // …and back. Every prediction and every continued training step must be
  // bit-identical to the control — residency is invisible to the math.
  for (std::size_t i = 40; i < 80; ++i) {
    ASSERT_EQ(store.predict(7, d.row(i)), control.predict(d.row(i)))
        << "post-reactivation predict " << i;
    ASSERT_EQ(store.update(7, d.row(i), d.target(i)),
              control.update(d.row(i), d.target(i)))
        << "post-reactivation update " << i;
  }
  EXPECT_GE(store.stats().reactivations, 1U);
}

TEST(ServeTenantStoreTest, RepeatedEvictReactivateCyclesStayBitIdentical) {
  const data::Dataset d = data::make_friedman1(96, 6);
  const core::OnlineConfig cfg = base_online();
  TenantStore store(flat_config(1), cfg, d.num_features());  // every switch evicts
  core::OnlineRegHD control(cfg, d.num_features());

  // Alternating tenants with a budget of one: tenant 5 round-trips through
  // the container on every single appearance.
  for (std::size_t i = 0; i < 64; ++i) {
    ASSERT_EQ(store.update(5, d.row(i), d.target(i)),
              control.update(d.row(i), d.target(i)))
        << "cycle " << i;
    (void)store.update(6, d.row(i), 0.0);  // displaces tenant 5
  }
  EXPECT_GE(store.stats().evictions, 64U);
  EXPECT_GE(store.stats().reactivations, 63U);
}

TEST(ServeTenantStoreTest, TierDimsAscendFromCapacityModelAndClampToBase) {
  TenantStoreConfig tc;
  tc.resident_budget = 8;
  tc.tiered_dims = true;
  tc.tier_updates = {64, 512};
  TenantStore store(tc, base_online(2048), 6);

  const std::vector<std::size_t>& dims = store.tier_dims();
  ASSERT_EQ(dims.size(), 3U);
  EXPECT_LT(dims[0], 2048U);       // cold tier genuinely smaller
  EXPECT_EQ(dims[0] % 64, 0U);     // word-aligned
  EXPECT_GE(dims[0], 64U);
  EXPECT_LE(dims[0], dims[1]);     // monotone
  EXPECT_EQ(dims.back(), 2048U);   // hot tier = base configuration

  EXPECT_EQ(store.tier_of(0), 0U);
  EXPECT_EQ(store.tier_of(63), 0U);
  EXPECT_EQ(store.tier_of(64), 1U);
  EXPECT_EQ(store.tier_of(100000), 2U);
}

TEST(ServeTenantStoreTest, PromotionGrowsDimAndCarriesStatistics) {
  const data::Dataset d = data::make_friedman1(128, 6);
  TenantStoreConfig tc;
  tc.resident_budget = 4;
  tc.tiered_dims = true;
  tc.tier_updates = {64};
  TenantStore store(tc, base_online(512), d.num_features());
  ASSERT_LT(store.tier_dims()[0], 512U);

  for (std::size_t i = 0; i < 63; ++i) {
    (void)store.update(9, d.row(i % d.size()), d.target(i % d.size()));
  }
  EXPECT_EQ(store.activate(9).config().reghd.dim, store.tier_dims()[0]);
  EXPECT_EQ(store.stats().promotions, 0U);

  (void)store.update(9, d.row(63), d.target(63));  // crosses the boundary
  const core::OnlineRegHD& hot = store.activate(9);
  EXPECT_EQ(hot.config().reghd.dim, 512U);
  EXPECT_EQ(store.stats().promotions, 1U);
  // The running statistics and sample count carried verbatim.
  EXPECT_EQ(hot.samples_seen(), 64U);
  EXPECT_EQ(hot.target_stats().count(), 64U);
  EXPECT_EQ(hot.feature_stats()[0].count(), 64U);
}

TEST(ServeTenantStoreTest, SpillBudgetDiscardsOldestEvictions) {
  const data::Dataset d = data::make_friedman1(32, 6);
  TenantStoreConfig tc = flat_config(1);
  tc.spill_budget_bytes = 1;  // nothing survives spilling
  TenantStore store(tc, base_online(64), d.num_features());

  (void)store.update(1, d.row(0), d.target(0));
  (void)store.update(2, d.row(1), d.target(1));  // evicts 1 → discarded
  (void)store.update(3, d.row(2), d.target(2));  // evicts 2 → discarded
  const TenantStoreStats s = store.stats();
  EXPECT_GE(s.spill_discards, 2U);
  EXPECT_EQ(s.spilled, 0U);
  EXPECT_EQ(s.spill_bytes, 0U);

  // A discarded tenant restarts cold — loudly counted, never wrong.
  EXPECT_EQ(store.activate(1).samples_seen(), 0U);
}

TEST(ServeTenantStoreTest, DiskSpillPersistsAndReactivatesBitIdentically) {
  namespace fs = std::filesystem;
  const data::Dataset d = data::make_friedman1(64, 6);
  const core::OnlineConfig cfg = base_online();
  const fs::path dir = fs::temp_directory_path() / "reghd_tenant_spill_test";
  fs::remove_all(dir);

  TenantStoreConfig tc = flat_config(1);
  tc.spill_dir = dir.string();
  TenantStore store(tc, cfg, d.num_features());
  core::OnlineRegHD control(cfg, d.num_features());

  for (std::size_t i = 0; i < 30; ++i) {
    (void)store.update(42, d.row(i), d.target(i));
    (void)control.update(d.row(i), d.target(i));
  }
  (void)store.predict(43, d.row(0));  // evicts 42 to disk
  EXPECT_TRUE(fs::exists(dir / "tenant_42.reghd"));

  for (std::size_t i = 30; i < 50; ++i) {
    ASSERT_EQ(store.predict(42, d.row(i)), control.predict(d.row(i)));
    ASSERT_EQ(store.update(42, d.row(i), d.target(i)),
              control.update(d.row(i), d.target(i)));
  }

  // flush() is the persistence pass: everything resident lands on disk.
  store.flush();
  EXPECT_EQ(store.resident_count(), 0U);
  EXPECT_TRUE(fs::exists(dir / "tenant_42.reghd"));
  EXPECT_TRUE(fs::exists(dir / "tenant_43.reghd"));
  fs::remove_all(dir);
}

TEST(ServeTenantStoreTest, ServerTenantModeLearnsPerTenantModels) {
  const std::size_t nf = 6;
  ServeConfig sc;
  sc.shards = 2;
  sc.tenant = flat_config(64);
  core::OnlineConfig cfg = base_online(128);
  cfg.warmup = 4;
  Server server(sc, cfg, nf);
  server.start();

  // Two tenants with opposite target functions on the same features: only
  // per-tenant models can satisfy both.
  std::vector<double> row(nf, 0.0);
  for (std::size_t i = 0; i < 400; ++i) {
    for (std::size_t f = 0; f < nf; ++f) {
      row[f] = std::sin(static_cast<double>(i * (f + 1)));
    }
    const double y = row[0] + 0.5 * row[1];
    while (!server.try_train(100, row, y)) {
      std::this_thread::yield();
    }
    while (!server.try_train(200, row, -y)) {
      std::this_thread::yield();
    }
  }
  const std::size_t s100 = server.shard_of(100);
  const std::size_t s200 = server.shard_of(200);
  std::uint64_t applied = 0;
  while (applied < 800) {
    applied = server.train_applied(s100);
    if (s200 != s100) {
      applied += server.train_applied(s200);
    }
    std::this_thread::yield();
  }

  for (std::size_t f = 0; f < nf; ++f) {
    row[f] = std::sin(static_cast<double>(7 * (f + 1)));
  }
  const double p_pos = server.predict(100, row);
  const double p_neg = server.predict(200, row);
  // Per-tenant models must reproduce each tenant's sign, not a blend (the
  // query point was in both training streams; want ≈ ±1.15).
  EXPECT_GT(p_pos, 0.0);
  EXPECT_LT(p_neg, 0.0);
  EXPECT_GT(p_pos - p_neg, 1.0);

  server.stop();
  std::uint64_t activations = 0;
  for (std::size_t s = 0; s < sc.shards; ++s) {
    activations += server.tenant_stats(s).activations;
  }
  EXPECT_EQ(activations, 2U);
  EXPECT_EQ(server.snapshot(s100), nullptr);  // tenant mode publishes none
}

TEST(ServeTenantStoreTest, ServerTenantModeMatchesStandaloneStoreBitForBit) {
  const data::Dataset d = data::make_friedman1(128, 6);
  const core::OnlineConfig cfg = base_online(128);

  ServeConfig sc;
  sc.shards = 1;
  sc.tenant = flat_config(2);  // small budget: servers evict mid-run too
  Server server(sc, cfg, d.num_features());
  server.start();
  TenantStore reference(flat_config(2), cfg, d.num_features());

  // Same single-producer sequence into both: the server's combined drain
  // thread applies it in FIFO order, so state must match bit for bit.
  for (std::size_t i = 0; i < d.size(); ++i) {
    const std::uint64_t key = 1 + (i % 3);
    while (!server.try_train(key, d.row(i), d.target(i))) {
      std::this_thread::yield();
    }
    (void)reference.update(key, d.row(i), d.target(i));
  }
  while (server.train_applied(0) < d.size()) {
    std::this_thread::yield();
  }
  for (std::uint64_t key = 1; key <= 3; ++key) {
    for (std::size_t i = 0; i < 16; ++i) {
      EXPECT_EQ(server.predict(key, d.row(i)), reference.predict(key, d.row(i)))
          << "tenant " << key << " row " << i;
    }
  }
  server.stop();
}

TEST(ServeTenantStoreTest, StopFlushesTenantsToSpillDirAndTheyRecover) {
  namespace fs = std::filesystem;
  const data::Dataset d = data::make_friedman1(64, 6);
  const core::OnlineConfig cfg = base_online(128);
  const fs::path dir = fs::temp_directory_path() / "reghd_tenant_server_spill";
  fs::remove_all(dir);

  TenantStoreConfig tc = flat_config(16);
  tc.spill_dir = dir.string();
  ServeConfig sc;
  sc.shards = 1;
  sc.tenant = tc;

  core::OnlineRegHD control(cfg, d.num_features());
  {
    Server server(sc, cfg, d.num_features());
    server.start();
    for (std::size_t i = 0; i < d.size(); ++i) {
      while (!server.try_train(77, d.row(i), d.target(i))) {
        std::this_thread::yield();
      }
      (void)control.update(d.row(i), d.target(i));
    }
    while (server.train_applied(0) < d.size()) {
      std::this_thread::yield();
    }
    server.stop();  // flush: tenant 77 lands under <dir>/shard_0
  }
  EXPECT_TRUE(fs::exists(dir / "shard_0" / "tenant_77.reghd"));

  Server revived(sc, cfg, d.num_features());
  revived.start();
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(revived.predict(77, d.row(i)), control.predict(d.row(i)))
        << "revived tenant prediction " << i;
  }
  revived.stop();
  fs::remove_all(dir);
}

}  // namespace
}  // namespace reghd::serve
