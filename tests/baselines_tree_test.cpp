// Tests for the CART regression tree baseline.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/decision_tree.hpp"
#include "data/synthetic.hpp"
#include "util/metrics.hpp"
#include "util/random.hpp"

namespace reghd::baselines {
namespace {

TEST(DecisionTreeTest, FitsAStepFunctionExactly) {
  data::Dataset d;
  for (int i = 0; i < 100; ++i) {
    const double x = static_cast<double>(i) / 100.0;
    const double f[] = {x};
    d.add_sample(f, x < 0.5 ? 1.0 : 5.0);
  }
  DecisionTreeConfig cfg;
  cfg.max_depth = 2;
  cfg.min_samples_leaf = 1;
  cfg.min_samples_split = 2;
  DecisionTree tree(cfg);
  tree.fit(d);
  const double lo[] = {0.2};
  const double hi[] = {0.9};
  EXPECT_DOUBLE_EQ(tree.predict(lo), 1.0);
  EXPECT_DOUBLE_EQ(tree.predict(hi), 5.0);
  EXPECT_LE(tree.depth(), 2u);
}

TEST(DecisionTreeTest, PureNodeBecomesLeafEarly) {
  data::Dataset d;
  for (int i = 0; i < 50; ++i) {
    const double f[] = {static_cast<double>(i)};
    d.add_sample(f, 7.0);  // constant target ⇒ root is pure
  }
  DecisionTree tree;
  tree.fit(d);
  EXPECT_EQ(tree.node_count(), 1u);
  const double x[] = {25.0};
  EXPECT_DOUBLE_EQ(tree.predict(x), 7.0);
}

TEST(DecisionTreeTest, RespectsMaxDepth) {
  const data::Dataset d = data::make_friedman1(500, 1);
  DecisionTreeConfig cfg;
  cfg.max_depth = 3;
  cfg.min_samples_leaf = 1;
  DecisionTree tree(cfg);
  tree.fit(d);
  EXPECT_LE(tree.depth(), 3u);
}

TEST(DecisionTreeTest, RespectsMinSamplesLeaf) {
  data::Dataset d;
  util::Rng rng(3);
  for (int i = 0; i < 40; ++i) {
    const double f[] = {rng.uniform()};
    d.add_sample(f, rng.uniform());
  }
  DecisionTreeConfig cfg;
  cfg.max_depth = 20;
  cfg.min_samples_leaf = 10;
  cfg.min_samples_split = 20;
  DecisionTree tree(cfg);
  tree.fit(d);
  // 40 samples with ≥10 per leaf bounds the leaf count at 4 (7 nodes).
  EXPECT_LE(tree.node_count(), 7u);
}

TEST(DecisionTreeTest, DeeperTreesFitBetterOnTrain) {
  const data::Dataset d = data::make_friedman1(600, 5);
  DecisionTreeConfig shallow_cfg;
  shallow_cfg.max_depth = 2;
  DecisionTreeConfig deep_cfg;
  deep_cfg.max_depth = 10;
  deep_cfg.min_samples_leaf = 2;
  deep_cfg.min_samples_split = 4;
  DecisionTree shallow(shallow_cfg);
  DecisionTree deep(deep_cfg);
  shallow.fit(d);
  deep.fit(d);
  const std::vector<double> p_shallow = shallow.predict_batch(d);
  const std::vector<double> p_deep = deep.predict_batch(d);
  EXPECT_LT(util::mse(p_deep, d.targets()), util::mse(p_shallow, d.targets()));
}

TEST(DecisionTreeTest, GeneralizesOnFriedman) {
  const data::Dataset d = data::make_friedman1(1200, 7);
  util::Rng rng(7);
  const data::TrainTestSplit split = data::train_test_split(d, 0.25, rng);
  DecisionTreeConfig cfg;
  cfg.max_depth = 8;
  cfg.min_samples_leaf = 4;
  DecisionTree tree(cfg);
  tree.fit(split.train);
  const std::vector<double> pred = tree.predict_batch(split.test);
  EXPECT_LT(util::mse(pred, split.test.targets()), 15.0);  // mean predictor ≈ 25
}

TEST(DecisionTreeTest, MinImpurityDecreaseStopsWeakSplits) {
  util::Rng rng(9);
  data::Dataset d;
  for (int i = 0; i < 200; ++i) {
    const double f[] = {rng.uniform()};
    d.add_sample(f, rng.normal(0.0, 0.01));  // almost pure noise
  }
  DecisionTreeConfig cfg;
  cfg.min_impurity_decrease = 1.0;  // huge threshold: no split is worth it
  DecisionTree tree(cfg);
  tree.fit(d);
  EXPECT_EQ(tree.node_count(), 1u);
}

TEST(DecisionTreeTest, ConfigValidationAndMisuse) {
  DecisionTreeConfig cfg;
  cfg.max_depth = 0;
  EXPECT_THROW(DecisionTree{cfg}, std::invalid_argument);
  cfg = {};
  cfg.min_samples_split = 1;
  EXPECT_THROW(DecisionTree{cfg}, std::invalid_argument);

  DecisionTree tree;
  EXPECT_THROW((void)tree.predict(std::vector<double>{1.0}), std::invalid_argument);
  data::Dataset empty;
  EXPECT_THROW(tree.fit(empty), std::invalid_argument);
}

TEST(DecisionTreeTest, NameIsStable) { EXPECT_EQ(DecisionTree().name(), "DecisionTree"); }

}  // namespace
}  // namespace reghd::baselines
