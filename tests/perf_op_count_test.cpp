// Tests for the operation tally arithmetic.
#include <gtest/gtest.h>

#include "perf/op_count.hpp"

namespace reghd::perf {
namespace {

TEST(OpCountTest, DefaultIsZero) {
  const OpCount c;
  EXPECT_EQ(c.total(), 0u);
}

TEST(OpCountTest, AdditionIsFieldwise) {
  OpCount a;
  a.float_mul = 3;
  a.popcount_word = 2;
  OpCount b;
  b.float_mul = 4;
  b.int_add = 5;
  const OpCount sum = a + b;
  EXPECT_EQ(sum.float_mul, 7u);
  EXPECT_EQ(sum.popcount_word, 2u);
  EXPECT_EQ(sum.int_add, 5u);
  EXPECT_EQ(sum.total(), 14u);
}

TEST(OpCountTest, PlusEqualsAccumulates) {
  OpCount a;
  a.mem_read_word = 10;
  OpCount b;
  b.mem_read_word = 5;
  b.mem_write_word = 2;
  a += b;
  EXPECT_EQ(a.mem_read_word, 15u);
  EXPECT_EQ(a.mem_write_word, 2u);
}

TEST(OpCountTest, ScalarMultiplicationScalesEveryField) {
  OpCount a;
  a.float_mul = 2;
  a.float_add = 3;
  a.xor_word = 1;
  const OpCount scaled = a * 10;
  EXPECT_EQ(scaled.float_mul, 20u);
  EXPECT_EQ(scaled.float_add, 30u);
  EXPECT_EQ(scaled.xor_word, 10u);
  EXPECT_EQ((a * 0).total(), 0u);
  EXPECT_EQ(a * 1, a);
}

TEST(OpCountTest, MultiplicationDistributesOverAddition) {
  OpCount a;
  a.int_add = 3;
  OpCount b;
  b.int_add = 4;
  b.float_trig = 1;
  EXPECT_EQ((a + b) * 5, a * 5 + b * 5);
}

TEST(OpCountTest, ToStringListsNonZeroFields) {
  OpCount a;
  a.float_trig = 42;
  const std::string s = a.to_string();
  EXPECT_NE(s.find("ftrig=42"), std::string::npos);
}

TEST(OpCountTest, EqualityIsFieldwise) {
  OpCount a;
  a.int_cmp = 1;
  OpCount b;
  EXPECT_NE(a, b);
  b.int_cmp = 1;
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace reghd::perf
