// Tests for CSV loading/saving.
#include <gtest/gtest.h>

#include <sstream>

#include "data/csv.hpp"

namespace reghd::data {
namespace {

TEST(CsvLoadTest, ParsesHeaderAndLastColumnTarget) {
  std::istringstream in("a,b,target\n1,2,10\n3,4,20\n");
  const Dataset d = load_csv(in, "demo");
  EXPECT_EQ(d.name(), "demo");
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d.num_features(), 2u);
  EXPECT_DOUBLE_EQ(d.row(0)[0], 1.0);
  EXPECT_DOUBLE_EQ(d.row(1)[1], 4.0);
  EXPECT_DOUBLE_EQ(d.target(1), 20.0);
}

TEST(CsvLoadTest, HeaderlessAndCustomTargetColumn) {
  std::istringstream in("10,1,2\n20,3,4\n");
  CsvOptions opts;
  opts.has_header = false;
  opts.target_column = 0;
  const Dataset d = load_csv(in, "front-target", opts);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d.target(0), 10.0);
  EXPECT_DOUBLE_EQ(d.row(0)[0], 1.0);
  EXPECT_DOUBLE_EQ(d.row(1)[1], 4.0);
}

TEST(CsvLoadTest, SkipsEmptyLinesAndHandlesCrlf) {
  std::istringstream in("a,t\r\n1,2\r\n\r\n3,4\r\n");
  const Dataset d = load_csv(in, "crlf");
  EXPECT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d.target(1), 4.0);
}

TEST(CsvLoadTest, AlternateDelimiter) {
  std::istringstream in("a;t\n1.5;2.5\n");
  CsvOptions opts;
  opts.delimiter = ';';
  const Dataset d = load_csv(in, "semi", opts);
  EXPECT_DOUBLE_EQ(d.row(0)[0], 1.5);
  EXPECT_DOUBLE_EQ(d.target(0), 2.5);
}

TEST(CsvLoadTest, NonNumericCellReportsLocation) {
  std::istringstream in("a,t\n1,oops\n");
  try {
    (void)load_csv(in, "bad");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("oops"), std::string::npos);
    EXPECT_NE(msg.find("line 2"), std::string::npos);
  }
}

TEST(CsvLoadTest, RejectsEmptyAndSingleColumnInputs) {
  std::istringstream empty("header,t\n");
  EXPECT_THROW((void)load_csv(empty, "empty"), std::runtime_error);
  std::istringstream one_col("t\n5\n");
  EXPECT_THROW((void)load_csv(one_col, "one"), std::invalid_argument);
}

TEST(CsvLoadTest, TargetColumnOutOfRange) {
  std::istringstream in("a,t\n1,2\n");
  CsvOptions opts;
  opts.target_column = 5;
  EXPECT_THROW((void)load_csv(in, "oob", opts), std::runtime_error);
}

TEST(CsvRoundTripTest, SaveThenLoadPreservesData) {
  Dataset original;
  original.set_name("rt");
  for (int i = 0; i < 10; ++i) {
    const double f[] = {i * 0.5, i * -1.25};
    original.add_sample(f, i * 3.0);
  }
  std::stringstream buffer;
  save_csv(buffer, original);
  const Dataset restored = load_csv(buffer, "rt");
  ASSERT_EQ(restored.size(), original.size());
  ASSERT_EQ(restored.num_features(), original.num_features());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_DOUBLE_EQ(restored.target(i), original.target(i));
    for (std::size_t k = 0; k < original.num_features(); ++k) {
      EXPECT_DOUBLE_EQ(restored.row(i)[k], original.row(i)[k]);
    }
  }
}

TEST(CsvFileTest, MissingFileThrows) {
  EXPECT_THROW((void)load_csv_file("/nonexistent/path/data.csv"), std::runtime_error);
}

}  // namespace
}  // namespace reghd::data
