// Tests for the pre-encoded dataset container.
#include <gtest/gtest.h>

#include <memory>

#include "core/encoded.hpp"
#include "data/synthetic.hpp"
#include "hdc/encoding.hpp"
#include "util/random.hpp"

namespace reghd::core {
namespace {

std::unique_ptr<hdc::Encoder> make_encoder_for(std::size_t input_dim, std::size_t dim) {
  hdc::EncoderConfig cfg;
  cfg.input_dim = input_dim;
  cfg.dim = dim;
  cfg.seed = 9;
  return hdc::make_encoder(cfg);
}

TEST(EncodedDatasetTest, FromEncodesEveryRowInOrder) {
  const data::Dataset d = data::make_friedman1(50, 3);
  const auto encoder = make_encoder_for(d.num_features(), 512);
  const EncodedDataset enc = EncodedDataset::from(*encoder, d);
  ASSERT_EQ(enc.size(), d.size());
  EXPECT_EQ(enc.dim(), 512u);
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_DOUBLE_EQ(enc.target(i), d.target(i));
    // Samples must equal a direct encode of the same row (parallel
    // encoding is bit-identical to serial).
    const hdc::EncodedSample direct = encoder->encode(d.row(i));
    EXPECT_EQ(enc.sample(i).real, direct.real);
    EXPECT_EQ(enc.sample(i).binary, direct.binary);
  }
}

TEST(EncodedDatasetTest, FromRejectsFeatureMismatch) {
  const data::Dataset d = data::make_friedman1(20, 5);  // 10 features
  const auto encoder = make_encoder_for(4, 512);
  EXPECT_THROW((void)EncodedDataset::from(*encoder, d), std::invalid_argument);
}

TEST(EncodedDatasetTest, AddEnforcesConsistentDimensionality) {
  EncodedDataset ds;
  EXPECT_TRUE(ds.empty());
  EXPECT_EQ(ds.dim(), 0u);

  const auto enc512 = make_encoder_for(3, 512);
  const auto enc256 = make_encoder_for(3, 256);
  const std::vector<double> row = {0.1, 0.2, 0.3};
  ds.add(enc512->encode(row), 1.5);
  EXPECT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds.dim(), 512u);
  EXPECT_DOUBLE_EQ(ds.target(0), 1.5);
  EXPECT_THROW(ds.add(enc256->encode(row), 2.0), std::invalid_argument);
  EXPECT_EQ(ds.size(), 1u);
}

TEST(EncodedDatasetTest, TargetsSpanMatchesIndividualAccess) {
  const data::Dataset d = data::make_sine_task(30, 7);
  const auto encoder = make_encoder_for(1, 256);
  const EncodedDataset enc = EncodedDataset::from(*encoder, d);
  const auto targets = enc.targets();
  ASSERT_EQ(targets.size(), enc.size());
  for (std::size_t i = 0; i < enc.size(); ++i) {
    EXPECT_DOUBLE_EQ(targets[i], enc.target(i));
  }
}

}  // namespace
}  // namespace reghd::core
