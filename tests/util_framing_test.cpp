// Section framing: the container layer of the v2 format. Round-trips,
// typed rejection of every corruption class, and forward compatibility.
#include <gtest/gtest.h>

#include <sstream>

#include "util/framing.hpp"

namespace reghd::util {
namespace {

constexpr std::uint32_t kKind = fourcc("TEST");
constexpr std::uint32_t kTagA = fourcc("AAAA");
constexpr std::uint32_t kTagB = fourcc("BBBB");

std::string framed(const std::string& a = "alpha payload",
                   const std::string& b = "beta") {
  std::ostringstream out(std::ios::binary);
  SectionWriter writer(out, kKind);
  writer.add(kTagA, a);
  writer.add(kTagB, b);
  writer.finish();
  return out.str();
}

FormatErrorKind kind_of(const std::string& body) {
  try {
    (void)parse_sections(body);
  } catch (const FormatError& e) {
    return e.kind();
  }
  ADD_FAILURE() << "body parsed without error";
  return FormatErrorKind::kIo;
}

TEST(FramingTest, RoundTrip) {
  const ParsedFile file = parse_sections(framed());
  EXPECT_EQ(file.kind, kKind);
  ASSERT_EQ(file.sections.size(), 2u);
  EXPECT_EQ(file.require(kTagA).payload, "alpha payload");
  EXPECT_EQ(file.require(kTagB).payload, "beta");
  EXPECT_EQ(file.find(fourcc("ZZZZ")), nullptr);
  EXPECT_THROW((void)file.require(fourcc("ZZZZ")), FormatError);
}

TEST(FramingTest, EmptyPayloadAndEmptyFile) {
  std::ostringstream out(std::ios::binary);
  SectionWriter writer(out, kKind);
  writer.add(kTagA, "");
  writer.finish();
  const ParsedFile file = parse_sections(out.str());
  EXPECT_EQ(file.require(kTagA).payload, "");

  std::ostringstream bare(std::ios::binary);
  SectionWriter none(bare, kKind);
  none.finish();
  EXPECT_TRUE(parse_sections(bare.str()).sections.empty());
}

TEST(FramingTest, EveryTruncationPointIsTyped) {
  const std::string body = framed();
  for (std::size_t keep = 0; keep < body.size(); ++keep) {
    const FormatErrorKind kind = kind_of(body.substr(0, keep));
    EXPECT_TRUE(kind == FormatErrorKind::kTruncated ||
                kind == FormatErrorKind::kBadSectionLength ||
                kind == FormatErrorKind::kChecksumMismatch ||
                kind == FormatErrorKind::kMissingSection)
        << "keep=" << keep << " -> " << to_string(kind);
  }
}

TEST(FramingTest, EverySingleByteFlipIsDetected) {
  // The per-section CRC covers payloads; the file CRC covers everything
  // else (kind, tags, lengths). No byte is unprotected.
  const std::string body = framed();
  for (std::size_t pos = 0; pos < body.size(); ++pos) {
    std::string damaged = body;
    damaged[pos] = static_cast<char>(damaged[pos] ^ 0x40);
    EXPECT_THROW((void)parse_sections(damaged), FormatError) << "flip at byte " << pos;
  }
}

TEST(FramingTest, HostileSectionLengthIsBounded) {
  // A length field rewritten to 2^60 must be rejected without an
  // allocation attempt of that size.
  std::string body = framed();
  const std::size_t len_offset = 4 + 4;  // kind + first tag
  body[len_offset + 7] = static_cast<char>(0x10);
  const FormatErrorKind kind = kind_of(body);
  EXPECT_TRUE(kind == FormatErrorKind::kBadSectionLength ||
              kind == FormatErrorKind::kTruncated)
      << to_string(kind);
}

TEST(FramingTest, UnknownSectionsAreForwardCompatible) {
  std::ostringstream out(std::ios::binary);
  SectionWriter writer(out, kKind);
  writer.add(kTagA, "known");
  writer.add(fourcc("FUTR"), "from a newer writer");
  writer.finish();
  const ParsedFile file = parse_sections(out.str());
  EXPECT_EQ(file.require(kTagA).payload, "known");
  EXPECT_EQ(file.require(fourcc("FUTR")).payload, "from a newer writer");
}

TEST(FramingTest, TrailingGarbageRejected) {
  EXPECT_THROW((void)parse_sections(framed() + "extra"), FormatError);
}

}  // namespace
}  // namespace reghd::util
