// Batched encode/predict paths must be exact row-for-row matches of the
// per-sample paths, for every thread count. These tests pin that property
// across the encoder batch API, the encoded-dataset builder, both
// regressors, and the end-user pipeline override.
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "core/encoded.hpp"
#include "core/multi_model.hpp"
#include "core/pipeline.hpp"
#include "core/single_model.hpp"
#include "data/synthetic.hpp"
#include "hdc/encoding.hpp"

namespace reghd::core {
namespace {

data::Dataset small_task() { return data::make_friedman1(96, 7); }

hdc::EncoderConfig small_encoder_config(std::size_t input_dim) {
  hdc::EncoderConfig cfg;
  cfg.kind = hdc::EncoderKind::kRffProjection;
  cfg.input_dim = input_dim;
  cfg.dim = 512;
  return cfg;
}

RegHDConfig small_reghd_config() {
  RegHDConfig cfg;
  cfg.dim = 512;
  cfg.models = 4;
  cfg.max_epochs = 4;
  return cfg;
}

TEST(EncodeBatchTest, MatchesPerRowEncodeForAnyThreadCount) {
  const data::Dataset data = small_task();
  const auto encoder = hdc::make_encoder(small_encoder_config(data.num_features()));
  for (const std::size_t threads : {1, 2, 8}) {
    const std::vector<hdc::EncodedSample> batch =
        encoder->encode_batch(data.features_flat(), data.size(), threads);
    ASSERT_EQ(batch.size(), data.size());
    for (std::size_t i = 0; i < data.size(); ++i) {
      const hdc::EncodedSample one = encoder->encode(data.row(i));
      EXPECT_EQ(batch[i].real, one.real) << "row " << i << ", threads " << threads;
      EXPECT_EQ(batch[i].binary, one.binary) << "row " << i << ", threads " << threads;
    }
  }
}

TEST(EncodeBatchTest, RejectsMismatchedBuffer) {
  const data::Dataset data = small_task();
  const auto encoder = hdc::make_encoder(small_encoder_config(data.num_features()));
  EXPECT_THROW(encoder->encode_batch(data.features_flat(), data.size() + 1, 1),
               std::invalid_argument);
}

TEST(EncodedDatasetTest, FromIsThreadCountInvariant) {
  const data::Dataset data = small_task();
  const auto encoder = hdc::make_encoder(small_encoder_config(data.num_features()));
  const EncodedDataset one = EncodedDataset::from(*encoder, data, 1);
  const EncodedDataset many = EncodedDataset::from(*encoder, data, 8);
  ASSERT_EQ(one.size(), many.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one.sample(i).real, many.sample(i).real) << "row " << i;
    EXPECT_EQ(one.target(i), many.target(i)) << "row " << i;
  }
}

TEST(RegressorBatchTest, SingleModelBatchMatchesPerSamplePredict) {
  const data::Dataset data = small_task();
  const auto encoder = hdc::make_encoder(small_encoder_config(data.num_features()));
  const EncodedDataset enc = EncodedDataset::from(*encoder, data);

  SingleModelRegressor reg(small_reghd_config());
  for (std::size_t i = 0; i < enc.size(); ++i) {
    reg.train_step(enc.sample(i), enc.target(i));
  }
  reg.requantize();

  const std::vector<double> serial = reg.predict_batch(enc, 1);
  const std::vector<double> parallel = reg.predict_batch(enc, 8);
  EXPECT_EQ(serial, parallel);  // bit-identical
  for (std::size_t i = 0; i < enc.size(); ++i) {
    EXPECT_EQ(serial[i], reg.predict(enc.sample(i))) << "row " << i;
  }
}

TEST(RegressorBatchTest, MultiModelBatchMatchesPerSamplePredict) {
  const data::Dataset data = small_task();
  const auto encoder = hdc::make_encoder(small_encoder_config(data.num_features()));
  const EncodedDataset enc = EncodedDataset::from(*encoder, data);

  MultiModelRegressor reg(small_reghd_config());
  for (std::size_t i = 0; i < enc.size(); ++i) {
    reg.train_step(enc.sample(i), enc.target(i));
  }
  reg.requantize();

  const std::vector<double> serial = reg.predict_batch(enc, 1);
  const std::vector<double> parallel = reg.predict_batch(enc, 8);
  EXPECT_EQ(serial, parallel);
  for (std::size_t i = 0; i < enc.size(); ++i) {
    EXPECT_EQ(serial[i], reg.predict(enc.sample(i))) << "row " << i;
  }
}

// The serving runtime's serial, scratch-reusing batch path must be an exact
// replay of predict_batch in every mode combination it can be configured
// with — including after further training invalidates the packed bank (the
// per-call fallback bank) and across scratch reuse/re-preparation.
TEST(RegressorBatchTest, PredictBatchIntoMatchesPredictBatchAcrossModes) {
  struct ModeCase {
    ClusterMode cluster;
    QueryPrecision query;
    ModelPrecision model;
  };
  const ModeCase cases[] = {
      {ClusterMode::kFullPrecision, QueryPrecision::kReal, ModelPrecision::kReal},
      {ClusterMode::kQuantized, QueryPrecision::kBinary, ModelPrecision::kTernary},
      {ClusterMode::kQuantized, QueryPrecision::kBinary, ModelPrecision::kBinary},
      {ClusterMode::kQuantized, QueryPrecision::kBinary, ModelPrecision::kReal},
      {ClusterMode::kNaiveBinary, QueryPrecision::kBinary, ModelPrecision::kBinary},
      // Generic fallback path (no bank fast path for a real query on
      // quantized clusters).
      {ClusterMode::kQuantized, QueryPrecision::kReal, ModelPrecision::kReal},
  };
  const data::Dataset data = small_task();
  const auto encoder = hdc::make_encoder(small_encoder_config(data.num_features()));
  const EncodedDataset enc = EncodedDataset::from(*encoder, data);

  for (const ModeCase& mc : cases) {
    RegHDConfig cfg = small_reghd_config();
    cfg.cluster_mode = mc.cluster;
    cfg.query_precision = mc.query;
    cfg.model_precision = mc.model;
    MultiModelRegressor reg(cfg);
    for (std::size_t i = 0; i < enc.size(); ++i) {
      reg.train_step(enc.sample(i), enc.target(i));
    }
    reg.requantize();

    MultiModelRegressor::PredictScratch scratch;
    reg.prepare_predict_scratch(scratch);
    const std::vector<double> want = reg.predict_batch(enc);
    std::vector<double> got(enc.size(), -1.0);
    reg.predict_batch_into(enc, got, scratch);
    EXPECT_EQ(got, want) << "fresh scratch, cluster mode "
                         << static_cast<int>(mc.cluster);

    // Scratch reuse on a second call must not change anything.
    std::fill(got.begin(), got.end(), -1.0);
    reg.predict_batch_into(enc, got, scratch);
    EXPECT_EQ(got, want) << "reused scratch";

    // Train further without requantizing: the packed bank goes stale, so the
    // re-prepared scratch must carry the fallback bank and still match the
    // (equally fallback-scoring) predict_batch.
    for (std::size_t i = 0; i < 16; ++i) {
      reg.train_step(enc.sample(i), enc.target(i));
    }
    reg.prepare_predict_scratch(scratch);
    const std::vector<double> want2 = reg.predict_batch(enc);
    std::vector<double> got2(enc.size(), -1.0);
    reg.predict_batch_into(enc, got2, scratch);
    EXPECT_EQ(got2, want2) << "stale-bank fallback";
  }
}

TEST(RegressorBatchTest, PredictBatchIntoRejectsShortSpanAndUnpreparedScratch) {
  const data::Dataset data = small_task();
  const auto encoder = hdc::make_encoder(small_encoder_config(data.num_features()));
  const EncodedDataset enc = EncodedDataset::from(*encoder, data);
  const MultiModelRegressor reg(small_reghd_config());
  MultiModelRegressor::PredictScratch scratch;
  std::vector<double> out(enc.size());
  EXPECT_THROW(reg.predict_batch_into(enc, out, scratch), std::exception);
  reg.prepare_predict_scratch(scratch);
  std::vector<double> tiny(enc.size() - 1);
  EXPECT_THROW(reg.predict_batch_into(enc, tiny, scratch), std::exception);
}

TEST(EncodedDatasetTest, AssignRowsMatchesFromRowsAndReusesStorage) {
  const data::Dataset data = small_task();
  const auto encoder = hdc::make_encoder(small_encoder_config(data.num_features()));

  EncodedDataset arena;
  // Largest batch first grows capacity; smaller re-assignments then reuse it.
  for (const std::size_t rows : {data.size(), std::size_t{5}, std::size_t{17}}) {
    const auto flat = data.features_flat().subspan(0, rows * data.num_features());
    arena.assign_rows(*encoder, flat, rows, 1);
    const EncodedDataset want = EncodedDataset::from_rows(*encoder, flat, rows, 1);
    ASSERT_EQ(arena.size(), want.size());
    ASSERT_EQ(arena.dim(), want.dim());
    for (std::size_t i = 0; i < rows; ++i) {
      EXPECT_EQ(arena.sample(i).real, want.sample(i).real) << "row " << i;
      EXPECT_EQ(arena.sample(i).real_norm2, want.sample(i).real_norm2);
      EXPECT_EQ(arena.target(i), 0.0);
    }
  }
}

TEST(PipelineBatchTest, PredictBatchMatchesPerRowPredict) {
  const data::Dataset data = small_task();
  PipelineConfig cfg;
  cfg.reghd = small_reghd_config();
  cfg.encoder = small_encoder_config(0);  // input_dim inferred by fit()
  RegHDPipeline pipeline(cfg);
  pipeline.fit(data);

  const std::vector<double> batch = pipeline.predict_batch(data);
  ASSERT_EQ(batch.size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(batch[i], pipeline.predict(data.row(i))) << "row " << i;
  }

  // Thread count must not change anything.
  pipeline.set_threads(1);
  const std::vector<double> serial = pipeline.predict_batch(data);
  EXPECT_EQ(batch, serial);
}

}  // namespace
}  // namespace reghd::core
