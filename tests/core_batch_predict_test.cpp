// Batched encode/predict paths must be exact row-for-row matches of the
// per-sample paths, for every thread count. These tests pin that property
// across the encoder batch API, the encoded-dataset builder, both
// regressors, and the end-user pipeline override.
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "core/encoded.hpp"
#include "core/multi_model.hpp"
#include "core/pipeline.hpp"
#include "core/single_model.hpp"
#include "data/synthetic.hpp"
#include "hdc/encoding.hpp"

namespace reghd::core {
namespace {

data::Dataset small_task() { return data::make_friedman1(96, 7); }

hdc::EncoderConfig small_encoder_config(std::size_t input_dim) {
  hdc::EncoderConfig cfg;
  cfg.kind = hdc::EncoderKind::kRffProjection;
  cfg.input_dim = input_dim;
  cfg.dim = 512;
  return cfg;
}

RegHDConfig small_reghd_config() {
  RegHDConfig cfg;
  cfg.dim = 512;
  cfg.models = 4;
  cfg.max_epochs = 4;
  return cfg;
}

TEST(EncodeBatchTest, MatchesPerRowEncodeForAnyThreadCount) {
  const data::Dataset data = small_task();
  const auto encoder = hdc::make_encoder(small_encoder_config(data.num_features()));
  for (const std::size_t threads : {1, 2, 8}) {
    const std::vector<hdc::EncodedSample> batch =
        encoder->encode_batch(data.features_flat(), data.size(), threads);
    ASSERT_EQ(batch.size(), data.size());
    for (std::size_t i = 0; i < data.size(); ++i) {
      const hdc::EncodedSample one = encoder->encode(data.row(i));
      EXPECT_EQ(batch[i].real, one.real) << "row " << i << ", threads " << threads;
      EXPECT_EQ(batch[i].binary, one.binary) << "row " << i << ", threads " << threads;
    }
  }
}

TEST(EncodeBatchTest, RejectsMismatchedBuffer) {
  const data::Dataset data = small_task();
  const auto encoder = hdc::make_encoder(small_encoder_config(data.num_features()));
  EXPECT_THROW(encoder->encode_batch(data.features_flat(), data.size() + 1, 1),
               std::invalid_argument);
}

TEST(EncodedDatasetTest, FromIsThreadCountInvariant) {
  const data::Dataset data = small_task();
  const auto encoder = hdc::make_encoder(small_encoder_config(data.num_features()));
  const EncodedDataset one = EncodedDataset::from(*encoder, data, 1);
  const EncodedDataset many = EncodedDataset::from(*encoder, data, 8);
  ASSERT_EQ(one.size(), many.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one.sample(i).real, many.sample(i).real) << "row " << i;
    EXPECT_EQ(one.target(i), many.target(i)) << "row " << i;
  }
}

TEST(RegressorBatchTest, SingleModelBatchMatchesPerSamplePredict) {
  const data::Dataset data = small_task();
  const auto encoder = hdc::make_encoder(small_encoder_config(data.num_features()));
  const EncodedDataset enc = EncodedDataset::from(*encoder, data);

  SingleModelRegressor reg(small_reghd_config());
  for (std::size_t i = 0; i < enc.size(); ++i) {
    reg.train_step(enc.sample(i), enc.target(i));
  }
  reg.requantize();

  const std::vector<double> serial = reg.predict_batch(enc, 1);
  const std::vector<double> parallel = reg.predict_batch(enc, 8);
  EXPECT_EQ(serial, parallel);  // bit-identical
  for (std::size_t i = 0; i < enc.size(); ++i) {
    EXPECT_EQ(serial[i], reg.predict(enc.sample(i))) << "row " << i;
  }
}

TEST(RegressorBatchTest, MultiModelBatchMatchesPerSamplePredict) {
  const data::Dataset data = small_task();
  const auto encoder = hdc::make_encoder(small_encoder_config(data.num_features()));
  const EncodedDataset enc = EncodedDataset::from(*encoder, data);

  MultiModelRegressor reg(small_reghd_config());
  for (std::size_t i = 0; i < enc.size(); ++i) {
    reg.train_step(enc.sample(i), enc.target(i));
  }
  reg.requantize();

  const std::vector<double> serial = reg.predict_batch(enc, 1);
  const std::vector<double> parallel = reg.predict_batch(enc, 8);
  EXPECT_EQ(serial, parallel);
  for (std::size_t i = 0; i < enc.size(); ++i) {
    EXPECT_EQ(serial[i], reg.predict(enc.sample(i))) << "row " << i;
  }
}

TEST(PipelineBatchTest, PredictBatchMatchesPerRowPredict) {
  const data::Dataset data = small_task();
  PipelineConfig cfg;
  cfg.reghd = small_reghd_config();
  cfg.encoder = small_encoder_config(0);  // input_dim inferred by fit()
  RegHDPipeline pipeline(cfg);
  pipeline.fit(data);

  const std::vector<double> batch = pipeline.predict_batch(data);
  ASSERT_EQ(batch.size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(batch[i], pipeline.predict(data.row(i))) << "row " << i;
  }

  // Thread count must not change anything.
  pipeline.set_threads(1);
  const std::vector<double> serial = pipeline.predict_batch(data);
  EXPECT_EQ(batch, serial);
}

}  // namespace
}  // namespace reghd::core
