// Tests for the shared prediction/update kernels: the §3.2 precision modes,
// requantization, and the normalized-LMS scaling.
#include <gtest/gtest.h>

#include <cmath>

#include "core/kernels.hpp"
#include "hdc/random_hv.hpp"
#include "util/random.hpp"

namespace reghd::core {
namespace {

hdc::EncodedSample sample_from_real(hdc::RealHV real) {
  hdc::EncodedSample s;
  s.real = std::move(real);
  s.bipolar = s.real.sign();
  s.binary = s.bipolar.pack();
  double n2 = 0.0;
  for (const double v : s.real.values()) {
    n2 += v * v;
  }
  s.real_norm2 = n2;
  s.real_norm = std::sqrt(n2);
  return s;
}

hdc::EncodedSample random_sample(std::size_t dim, std::uint64_t seed) {
  util::Rng rng(seed);
  return sample_from_real(hdc::random_gaussian(dim, rng));
}

TEST(RegressionModelTest, RequantizeDerivesSnapshotAndGamma) {
  RegressionModel m(4);
  m.accumulator[0] = 2.0;
  m.accumulator[1] = -4.0;
  m.accumulator[2] = 1.0;
  m.accumulator[3] = -1.0;
  m.requantize();
  EXPECT_TRUE(m.binary.bit(0));
  EXPECT_FALSE(m.binary.bit(1));
  EXPECT_DOUBLE_EQ(m.gamma, 2.0);  // mean |M_j| = (2+4+1+1)/4
}

TEST(PredictDotTest, FullPrecisionIsNormalizedDot) {
  const std::size_t dim = 256;
  const hdc::EncodedSample s = random_sample(dim, 1);
  RegressionModel m(dim);
  util::Rng rng(2);
  for (std::size_t j = 0; j < dim; ++j) {
    m.accumulator[j] = rng.normal();
  }
  m.requantize();
  const double expected = hdc::dot(m.accumulator, s.real) / static_cast<double>(dim);
  EXPECT_NEAR(predict_dot(m, s, PredictionMode::full_precision()), expected, 1e-12);
}

TEST(PredictDotTest, BinaryQueryMatchesBipolarDot) {
  const std::size_t dim = 256;
  const hdc::EncodedSample s = random_sample(dim, 3);
  RegressionModel m(dim);
  util::Rng rng(4);
  for (std::size_t j = 0; j < dim; ++j) {
    m.accumulator[j] = rng.normal();
  }
  m.requantize();
  const double expected = hdc::dot(m.accumulator, s.bipolar) / static_cast<double>(dim);
  EXPECT_NEAR(predict_dot(m, s, PredictionMode::binary_query_integer_model()), expected,
              1e-12);
}

TEST(PredictDotTest, BinaryModelModesUseGammaScale) {
  const std::size_t dim = 128;
  const hdc::EncodedSample s = random_sample(dim, 5);
  RegressionModel m(dim);
  util::Rng rng(6);
  for (std::size_t j = 0; j < dim; ++j) {
    m.accumulator[j] = rng.normal();
  }
  m.requantize();

  const double iq_bm = predict_dot(m, s, PredictionMode::integer_query_binary_model());
  EXPECT_NEAR(iq_bm, m.gamma * hdc::dot(s.real, m.binary) / static_cast<double>(dim), 1e-12);

  const double bq_bm = predict_dot(m, s, PredictionMode::binary_query_binary_model());
  EXPECT_NEAR(bq_bm,
              m.gamma * static_cast<double>(hdc::bipolar_dot(m.binary, s.binary)) /
                  static_cast<double>(dim),
              1e-12);
}

TEST(PredictDotTest, GammaCalibrationApproximatesFullPrecision) {
  // For a model whose magnitudes are independent of its signs, the γ-scaled
  // binary model tracks the real model's prediction closely at high D.
  const std::size_t dim = 8192;
  const hdc::EncodedSample s = random_sample(dim, 7);
  RegressionModel m(dim);
  util::Rng rng(8);
  for (std::size_t j = 0; j < dim; ++j) {
    m.accumulator[j] = rng.normal(0.0, 2.0);
  }
  m.requantize();
  const double full = predict_dot(m, s, PredictionMode::full_precision());
  const double approx = predict_dot(m, s, PredictionMode::integer_query_binary_model());
  // Both are ~N(0, σ/√D)-scale quantities; they must agree in sign and
  // order of magnitude for the calibration to be useful.
  EXPECT_NEAR(approx, full, 0.2 * std::abs(full) + 0.05);
}

TEST(PredictDotTest, AllModesAgreeWhenQueryIsBipolarAndModelUniform) {
  // Construct the exactly-representable case: query components ±1 and model
  // components ±c. Then every §3.2 kernel computes the same value.
  const std::size_t dim = 192;
  util::Rng rng(9);
  const hdc::BipolarHV q = hdc::random_bipolar(dim, rng);
  hdc::EncodedSample s = sample_from_real(q.to_real());
  RegressionModel m(dim);
  const double c = 1.5;
  for (std::size_t j = 0; j < dim; ++j) {
    m.accumulator[j] = (rng.bits() & 1) ? c : -c;
  }
  m.requantize();
  EXPECT_NEAR(m.gamma, c, 1e-12);

  const double full = predict_dot(m, s, PredictionMode::full_precision());
  for (const auto mode :
       {PredictionMode::binary_query_integer_model(),
        PredictionMode::integer_query_binary_model(),
        PredictionMode::binary_query_binary_model()}) {
    EXPECT_NEAR(predict_dot(m, s, mode), full, 1e-9) << mode.to_string();
  }
}

TEST(RegressionModelTest, TernarySnapshotMasksSmallComponents) {
  RegressionModel m(8);
  // Magnitudes 1..8: mean 4.5, threshold 0.6·4.5 = 2.7 → keep |M| ≥ 2.7.
  for (std::size_t j = 0; j < 8; ++j) {
    m.accumulator[j] = (j % 2 == 0 ? 1.0 : -1.0) * static_cast<double>(j + 1);
  }
  m.requantize();
  for (std::size_t j = 0; j < 8; ++j) {
    EXPECT_EQ(m.ternary_mask.bit(j), j + 1 >= 3) << "component " << j;
  }
  // γ_ternary = mean of kept magnitudes (3..8).
  EXPECT_NEAR(m.gamma_ternary, (3 + 4 + 5 + 6 + 7 + 8) / 6.0, 1e-12);
}

TEST(PredictDotTest, TernaryModelZeroesDeadZoneContributions) {
  const std::size_t dim = 128;
  RegressionModel m(dim);
  util::Rng rng(21);
  for (std::size_t j = 0; j < dim; ++j) {
    m.accumulator[j] = rng.normal();
  }
  m.requantize();
  const hdc::EncodedSample s = random_sample(dim, 22);

  const PredictionMode ternary{QueryPrecision::kReal, ModelPrecision::kTernary};
  double expected = 0.0;
  for (std::size_t j = 0; j < dim; ++j) {
    if (m.ternary_mask.bit(j)) {
      expected += (m.binary.bit(j) ? 1.0 : -1.0) * s.real[j];
    }
  }
  expected *= m.gamma_ternary / static_cast<double>(dim);
  EXPECT_NEAR(predict_dot(m, s, ternary), expected, 1e-9);

  const PredictionMode ternary_bq{QueryPrecision::kBinary, ModelPrecision::kTernary};
  double expected_bq = 0.0;
  for (std::size_t j = 0; j < dim; ++j) {
    if (m.ternary_mask.bit(j)) {
      expected_bq += static_cast<double>(m.binary.bipolar(j) * s.binary.bipolar(j));
    }
  }
  expected_bq *= m.gamma_ternary / static_cast<double>(dim);
  EXPECT_NEAR(predict_dot(m, s, ternary_bq), expected_bq, 1e-9);
}

TEST(PredictDotTest, TernaryApproximatesFullPrecisionBetterThanBinaryOnSpreadMagnitudes) {
  // With heavy-tailed magnitudes, the binary snapshot is dominated by the
  // rounding of many near-zero components; the ternary dead zone removes
  // them. Compare approximation error to the full-precision dot.
  const std::size_t dim = 8192;
  RegressionModel m(dim);
  util::Rng rng(23);
  for (std::size_t j = 0; j < dim; ++j) {
    const double z = rng.normal();
    m.accumulator[j] = z * z * z;  // cubed normal: heavy tails, many tiny values
  }
  m.requantize();
  double err_binary = 0.0;
  double err_ternary = 0.0;
  for (int trial = 0; trial < 10; ++trial) {
    const hdc::EncodedSample s = random_sample(dim, 100 + static_cast<std::uint64_t>(trial));
    const double full = predict_dot(m, s, PredictionMode::full_precision());
    const double bin =
        predict_dot(m, s, {QueryPrecision::kReal, ModelPrecision::kBinary});
    const double ter =
        predict_dot(m, s, {QueryPrecision::kReal, ModelPrecision::kTernary});
    err_binary += (bin - full) * (bin - full);
    err_ternary += (ter - full) * (ter - full);
  }
  EXPECT_LT(err_ternary, err_binary);
}

TEST(UpdateAccumulatorTest, RealAndBinaryPrecisions) {
  const std::size_t dim = 64;
  const hdc::EncodedSample s = random_sample(dim, 10);
  hdc::RealHV acc_real(dim);
  hdc::RealHV acc_bin(dim);
  update_accumulator(acc_real, s, 0.5, QueryPrecision::kReal);
  update_accumulator(acc_bin, s, 0.5, QueryPrecision::kBinary);
  for (std::size_t j = 0; j < dim; ++j) {
    EXPECT_DOUBLE_EQ(acc_real[j], 0.5 * s.real[j]);
    EXPECT_DOUBLE_EQ(acc_bin[j], s.bipolar[j] > 0 ? 0.5 : -0.5);
  }
}

TEST(UpdateNormalizerTest, ExactlyOneForBinaryQueries) {
  const hdc::EncodedSample s = random_sample(100, 11);
  EXPECT_DOUBLE_EQ(update_normalizer(s, QueryPrecision::kBinary), 1.0);
}

TEST(UpdateNormalizerTest, SelfCorrectionIsExactlyAlpha) {
  // The NLMS property: after M += α·err·normalizer·S, the prediction for S
  // itself moves by exactly α·err.
  const std::size_t dim = 512;
  const hdc::EncodedSample s = random_sample(dim, 12);
  RegressionModel m(dim);
  m.requantize();
  const double target = 3.0;
  const double alpha = 0.25;
  const double before = predict_dot(m, s, PredictionMode::full_precision());
  const double err = target - before;
  update_accumulator(m.accumulator, s,
                     alpha * err * update_normalizer(s, QueryPrecision::kReal),
                     QueryPrecision::kReal);
  const double after = predict_dot(m, s, PredictionMode::full_precision());
  EXPECT_NEAR(after - before, alpha * err, 1e-9);
}

TEST(UpdateNormalizerTest, DegenerateZeroEncodingSkipsUpdate) {
  hdc::EncodedSample s = sample_from_real(hdc::RealHV(16));  // all zeros
  EXPECT_DOUBLE_EQ(update_normalizer(s, QueryPrecision::kReal), 0.0);
}

TEST(QueryNorm2Test, MatchesRepresentation) {
  const hdc::EncodedSample s = random_sample(77, 13);
  EXPECT_DOUBLE_EQ(query_norm2(s, QueryPrecision::kReal), s.real_norm2);
  EXPECT_DOUBLE_EQ(query_norm2(s, QueryPrecision::kBinary), 77.0);
}

TEST(PredictionModeTest, PresetsAndNames) {
  EXPECT_EQ(PredictionMode::full_precision().to_string(), "integer-query/integer-model");
  EXPECT_EQ(PredictionMode::binary_query_binary_model().to_string(),
            "binary-query/binary-model");
  EXPECT_EQ(PredictionMode::full_precision(), PredictionMode{});
}

}  // namespace
}  // namespace reghd::core
