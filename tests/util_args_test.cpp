// Tests for the command-line argument parser.
#include <gtest/gtest.h>

#include <array>

#include "util/args.hpp"

namespace reghd::util {
namespace {

Args parse(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return Args(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgsTest, ProgramName) {
  const Args args = parse({});
  EXPECT_EQ(args.program(), "prog");
}

TEST(ArgsTest, KeyValueSpaceForm) {
  const Args args = parse({"--dim", "4096"});
  EXPECT_TRUE(args.has("dim"));
  EXPECT_EQ(args.get_int("dim", 0), 4096);
}

TEST(ArgsTest, KeyValueEqualsForm) {
  const Args args = parse({"--alpha=0.15"});
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 0.0), 0.15);
}

TEST(ArgsTest, BareFlagIsTrue) {
  const Args args = parse({"--verbose"});
  EXPECT_TRUE(args.get_bool("verbose", false));
}

TEST(ArgsTest, MissingOptionFallsBack) {
  const Args args = parse({});
  EXPECT_EQ(args.get_int("dim", 42), 42);
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 1.5), 1.5);
  EXPECT_EQ(args.get_string("name", "fallback"), "fallback");
  EXPECT_FALSE(args.get_bool("verbose", false));
  EXPECT_FALSE(args.has("dim"));
}

TEST(ArgsTest, BooleanValueForms) {
  EXPECT_TRUE(parse({"--x=true"}).get_bool("x", false));
  EXPECT_TRUE(parse({"--x=1"}).get_bool("x", false));
  EXPECT_TRUE(parse({"--x=on"}).get_bool("x", false));
  EXPECT_FALSE(parse({"--x=false"}).get_bool("x", true));
  EXPECT_FALSE(parse({"--x=0"}).get_bool("x", true));
  EXPECT_FALSE(parse({"--x=off"}).get_bool("x", true));
}

TEST(ArgsTest, PositionalArgumentsKeptInOrder) {
  const Args args = parse({"first", "--k", "3", "second"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "first");
  EXPECT_EQ(args.positional()[1], "second");
  EXPECT_EQ(args.get_int("k", 0), 3);
}

TEST(ArgsTest, FlagFollowedByOptionIsBare) {
  const Args args = parse({"--quiet", "--dim", "64"});
  EXPECT_TRUE(args.get_bool("quiet", false));
  EXPECT_EQ(args.get_int("dim", 0), 64);
}

TEST(ArgsTest, MalformedNumbersThrow) {
  EXPECT_THROW((void)parse({"--dim", "abc"}).get_int("dim", 0), std::invalid_argument);
  EXPECT_THROW((void)parse({"--a", "1.5x"}).get_double("a", 0.0), std::invalid_argument);
  EXPECT_THROW((void)parse({"--b", "maybe"}).get_bool("b", false), std::invalid_argument);
}

TEST(ArgsTest, NegativeNumbersParse) {
  const Args args = parse({"--offset=-5"});
  EXPECT_EQ(args.get_int("offset", 0), -5);
}

TEST(ArgsTest, BareDoubleDashRejected) {
  EXPECT_THROW(parse({"--"}), std::invalid_argument);
}

TEST(ArgsTest, LastOccurrenceWins) {
  const Args args = parse({"--k=1", "--k=2"});
  EXPECT_EQ(args.get_int("k", 0), 2);
}

}  // namespace
}  // namespace reghd::util
