// Regression tests for the online stream's accounting.
//
// S1: update_batch must follow the sequential requantize protocol — a block
// of n readings leaves since_requantize() at (since + trained) mod every,
// exactly where n update() calls leave it, so follow-on updates requantize
// at the same step. The drift bug reset the counter to zero after any block
// that crossed the boundary.
//
// S2: the warmup gates of predict() and update() share one boundary —
// predict() stays on the cold-start running-mean path until a reading has
// actually trained the model (update() trains only once seen > warmup). The
// off-by-one let predict() consult a never-trained model at seen == warmup.
#include <gtest/gtest.h>

#include <vector>

#include "core/online.hpp"
#include "data/synthetic.hpp"
#include "hdc/encoding.hpp"

namespace reghd::core {
namespace {

OnlineConfig quantized_config(std::size_t requantize_every) {
  OnlineConfig cfg;
  cfg.reghd.dim = 512;
  cfg.reghd.models = 4;
  cfg.reghd.seed = 11;
  cfg.reghd.cluster_mode = ClusterMode::kQuantized;
  cfg.encoder.seed = 11;
  cfg.requantize_every = requantize_every;
  return cfg;
}

/// Flattens stream rows [begin, end) into the row-major block update_batch
/// expects.
std::vector<double> flatten(const data::Dataset& stream, std::size_t begin,
                            std::size_t end) {
  std::vector<double> flat;
  flat.reserve((end - begin) * stream.num_features());
  for (std::size_t i = begin; i < end; ++i) {
    const auto row = stream.row(i);
    flat.insert(flat.end(), row.begin(), row.end());
  }
  return flat;
}

TEST(OnlineAccountingTest, BatchRequantizeCounterMatchesSequentialProtocol) {
  const data::Dataset stream = data::make_friedman1(900, 23);
  const std::size_t nf = stream.num_features();
  const OnlineConfig cfg = quantized_config(256);
  OnlineRegHD batch(cfg, nf);
  OnlineRegHD seq(cfg, nf);

  // One 600-reading block vs 600 sequential updates. With the default
  // warmup of 10, 590 readings train: the sequential run requantizes at
  // trained counts 256 and 512 and ends with the counter at 590 mod 256.
  const std::size_t n = 600;
  const std::vector<double> flat = flatten(stream, 0, n);
  const std::vector<double> targets(stream.targets().begin(),
                                    stream.targets().begin() + n);
  (void)batch.update_batch(flat, targets);
  for (std::size_t i = 0; i < n; ++i) {
    (void)seq.update(stream.row(i), stream.target(i));
  }

  ASSERT_EQ(seq.since_requantize(), (n - cfg.warmup) % cfg.requantize_every);
  EXPECT_EQ(batch.since_requantize(), seq.since_requantize());
  EXPECT_EQ(batch.samples_seen(), seq.samples_seen());

  // Follow-on single updates must hit the next requantize on the same
  // reading in both protocols.
  for (std::size_t i = n; i < stream.size(); ++i) {
    (void)batch.update(stream.row(i), stream.target(i));
    (void)seq.update(stream.row(i), stream.target(i));
    ASSERT_EQ(batch.since_requantize(), seq.since_requantize())
        << "requantize cadence diverged at reading " << i;
  }
}

TEST(OnlineAccountingTest, SmallBlocksCarryTheCounterAcrossCalls) {
  // Blocks below requantize_every must accumulate, not reset: three
  // 100-reading blocks at every = 256 requantize exactly once (at the 256th
  // trained reading, inside the third block).
  const data::Dataset stream = data::make_friedman1(300, 29);
  const std::size_t nf = stream.num_features();
  const OnlineConfig cfg = quantized_config(256);
  OnlineRegHD batch(cfg, nf);
  OnlineRegHD seq(cfg, nf);

  for (std::size_t b0 = 0; b0 < 300; b0 += 100) {
    const std::vector<double> flat = flatten(stream, b0, b0 + 100);
    const std::vector<double> targets(stream.targets().begin() + b0,
                                      stream.targets().begin() + b0 + 100);
    (void)batch.update_batch(flat, targets);
    for (std::size_t i = b0; i < b0 + 100; ++i) {
      (void)seq.update(stream.row(i), stream.target(i));
    }
    EXPECT_EQ(batch.since_requantize(), seq.since_requantize())
        << "diverged after the block starting at " << b0;
  }
  // 290 trained readings, one requantize at 256: counter sits at 34.
  EXPECT_EQ(seq.since_requantize(), (300 - cfg.warmup) % cfg.requantize_every);
}

TEST(OnlineAccountingTest, WarmupGatesOfPredictAndUpdateShareOneBoundary) {
  const data::Dataset stream = data::make_friedman1(50, 31);
  const std::size_t nf = stream.num_features();
  OnlineConfig cfg = quantized_config(0);
  cfg.warmup = 5;
  OnlineRegHD learner(cfg, nf);

  for (std::size_t i = 0; i < cfg.warmup; ++i) {
    (void)learner.update(stream.row(i), stream.target(i));
  }
  ASSERT_EQ(learner.samples_seen(), cfg.warmup);

  // Force the model away from zero while seen == warmup. No stream reading
  // has trained it (update() trains only once seen > warmup), so predict()
  // must still answer with the running target mean, not the model.
  const auto encoder = hdc::make_encoder(learner.config().encoder);
  const hdc::EncodedSample tamper = encoder->encode(std::vector<double>(nf, 1.0));
  for (int r = 0; r < 5; ++r) {
    learner.mutable_model().train_step(tamper, 100.0);
  }
  EXPECT_DOUBLE_EQ(learner.predict(stream.row(5)), learner.target_stats().mean());

  // The next update crosses the boundary: the same reading both trains the
  // model and unlocks model-backed prediction.
  (void)learner.update(stream.row(5), stream.target(5));
  ASSERT_GT(learner.samples_seen(), cfg.warmup);
  EXPECT_NE(learner.predict(stream.row(6)), learner.target_stats().mean());
}

TEST(OnlineAccountingTest, BatchAndSequentialAgreeOnWarmupAccounting) {
  // A block straddling the warmup boundary consumes the same number of
  // readings into statistics-only warmup in both protocols.
  const data::Dataset stream = data::make_friedman1(40, 37);
  const std::size_t nf = stream.num_features();
  OnlineConfig cfg = quantized_config(0);
  cfg.warmup = 15;
  OnlineRegHD batch(cfg, nf);
  OnlineRegHD seq(cfg, nf);

  const std::vector<double> flat = flatten(stream, 0, 40);
  (void)batch.update_batch(flat, stream.targets());
  for (std::size_t i = 0; i < 40; ++i) {
    (void)seq.update(stream.row(i), stream.target(i));
  }
  EXPECT_EQ(batch.samples_seen(), seq.samples_seen());
  EXPECT_DOUBLE_EQ(batch.target_stats().mean(), seq.target_stats().mean());
  // Both are past warmup now; both must produce model-backed (non-mean)
  // predictions for the same input.
  EXPECT_NE(batch.predict(stream.row(0)), batch.target_stats().mean());
  EXPECT_NE(seq.predict(stream.row(0)), seq.target_stats().mean());
}

}  // namespace
}  // namespace reghd::core
