// Tests for the dataset container, splits, and k-fold partitioning.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/dataset.hpp"
#include "util/random.hpp"

namespace reghd::data {
namespace {

Dataset toy_dataset(std::size_t n) {
  Dataset d;
  d.set_name("toy");
  for (std::size_t i = 0; i < n; ++i) {
    const double f[] = {static_cast<double>(i), static_cast<double>(2 * i)};
    d.add_sample(f, static_cast<double>(10 * i));
  }
  return d;
}

TEST(DatasetTest, ConstructionFromFlatBuffers) {
  const Dataset d("named", 2, {1.0, 2.0, 3.0, 4.0}, {10.0, 20.0});
  EXPECT_EQ(d.name(), "named");
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.num_features(), 2u);
  EXPECT_DOUBLE_EQ(d.row(1)[0], 3.0);
  EXPECT_DOUBLE_EQ(d.target(1), 20.0);
}

TEST(DatasetTest, ConstructionRejectsShapeMismatch) {
  EXPECT_THROW(Dataset("bad", 2, {1.0, 2.0, 3.0}, {10.0, 20.0}), std::invalid_argument);
  EXPECT_THROW(Dataset("bad", 0, {}, {}), std::invalid_argument);
}

TEST(DatasetTest, AddSampleDefinesAndEnforcesWidth) {
  Dataset d;
  const double f2[] = {1.0, 2.0};
  d.add_sample(f2, 5.0);
  EXPECT_EQ(d.num_features(), 2u);
  const double f3[] = {1.0, 2.0, 3.0};
  EXPECT_THROW(d.add_sample(f3, 6.0), std::invalid_argument);
  EXPECT_EQ(d.size(), 1u);
}

TEST(DatasetTest, SubsetSelectsAndRepeats) {
  const Dataset d = toy_dataset(5);
  const std::vector<std::size_t> idx = {4, 0, 4};
  const Dataset s = d.subset(idx);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.target(0), 40.0);
  EXPECT_DOUBLE_EQ(s.target(1), 0.0);
  EXPECT_DOUBLE_EQ(s.target(2), 40.0);
  EXPECT_DOUBLE_EQ(s.row(0)[1], 8.0);
}

TEST(DatasetTest, SubsetRejectsOutOfRange) {
  const Dataset d = toy_dataset(3);
  const std::vector<std::size_t> idx = {3};
  EXPECT_THROW((void)d.subset(idx), std::invalid_argument);
}

TEST(DatasetTest, ShuffleIsPermutationOfRows) {
  Dataset d = toy_dataset(50);
  util::Rng rng(5);
  d.shuffle(rng);
  EXPECT_EQ(d.size(), 50u);
  std::multiset<double> targets(d.targets().begin(), d.targets().end());
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(targets.count(static_cast<double>(10 * i)), 1u);
    // Feature/target pairing must survive shuffling.
    const double t = d.target(i);
    EXPECT_DOUBLE_EQ(d.row(i)[0], t / 10.0);
  }
}

TEST(TrainTestSplitTest, SizesAndDisjointness) {
  const Dataset d = toy_dataset(100);
  util::Rng rng(7);
  const TrainTestSplit split = train_test_split(d, 0.25, rng);
  EXPECT_EQ(split.test.size(), 25u);
  EXPECT_EQ(split.train.size(), 75u);
  std::multiset<double> all(split.train.targets().begin(), split.train.targets().end());
  all.insert(split.test.targets().begin(), split.test.targets().end());
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(all.count(static_cast<double>(10 * i)), 1u);
  }
}

TEST(TrainTestSplitTest, AtLeastOneSampleEachSide) {
  const Dataset d = toy_dataset(3);
  util::Rng rng(9);
  const TrainTestSplit split = train_test_split(d, 0.01, rng);
  EXPECT_GE(split.test.size(), 1u);
  EXPECT_GE(split.train.size(), 1u);
}

TEST(TrainTestSplitTest, RejectsBadInputs) {
  const Dataset d = toy_dataset(10);
  util::Rng rng(11);
  EXPECT_THROW((void)train_test_split(d, 0.0, rng), std::invalid_argument);
  EXPECT_THROW((void)train_test_split(d, 1.0, rng), std::invalid_argument);
  EXPECT_THROW((void)train_test_split(toy_dataset(1), 0.5, rng), std::invalid_argument);
}

TEST(TrainTestSplitTest, DeterministicForFixedSeed) {
  const Dataset d = toy_dataset(40);
  util::Rng a(13);
  util::Rng b(13);
  const TrainTestSplit s1 = train_test_split(d, 0.3, a);
  const TrainTestSplit s2 = train_test_split(d, 0.3, b);
  ASSERT_EQ(s1.test.size(), s2.test.size());
  for (std::size_t i = 0; i < s1.test.size(); ++i) {
    EXPECT_DOUBLE_EQ(s1.test.target(i), s2.test.target(i));
  }
}

TEST(KFoldTest, FoldsPartitionTheDataset) {
  const Dataset d = toy_dataset(23);
  constexpr std::size_t kFolds = 4;
  std::multiset<double> covered;
  for (std::size_t f = 0; f < kFolds; ++f) {
    util::Rng rng(17);  // same seed per fold → consistent partition
    const TrainTestSplit split = k_fold_split(d, kFolds, f, rng);
    EXPECT_EQ(split.train.size() + split.test.size(), 23u);
    covered.insert(split.test.targets().begin(), split.test.targets().end());
  }
  // Every sample appears in exactly one validation fold.
  for (std::size_t i = 0; i < 23; ++i) {
    EXPECT_EQ(covered.count(static_cast<double>(10 * i)), 1u);
  }
}

TEST(KFoldTest, RejectsBadParameters) {
  const Dataset d = toy_dataset(10);
  util::Rng rng(19);
  EXPECT_THROW((void)k_fold_split(d, 1, 0, rng), std::invalid_argument);
  EXPECT_THROW((void)k_fold_split(d, 3, 3, rng), std::invalid_argument);
  EXPECT_THROW((void)k_fold_split(toy_dataset(2), 3, 0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace reghd::data
