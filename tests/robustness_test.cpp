// Robustness properties (paper §3: "hypervectors store information across
// all their components so that no component is more responsible for storing
// any piece of information than another"): graceful degradation under bit
// flips and component noise, swept parametrically.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/multi_model.hpp"
#include "data/scaler.hpp"
#include "data/synthetic.hpp"
#include "hdc/encoding.hpp"
#include "hdc/random_hv.hpp"
#include "util/random.hpp"

namespace reghd::core {
namespace {

struct Fixture {
  EncodedDataset train;
  EncodedDataset val;
  EncodedDataset test;
  std::unique_ptr<hdc::Encoder> encoder;
  std::unique_ptr<MultiModelRegressor> model;
};

Fixture make_trained_fixture(std::size_t dim, QueryPrecision query) {
  data::Dataset dataset = data::make_sine_task(800, 123, 0.02);
  data::StandardScaler fs;
  fs.fit(dataset);
  fs.transform(dataset);
  data::TargetScaler ts;
  ts.fit(dataset);
  ts.transform(dataset);

  util::Rng rng(123);
  const data::TrainTestSplit outer = data::train_test_split(dataset, 0.25, rng);
  const data::TrainTestSplit inner = data::train_test_split(outer.train, 0.2, rng);

  hdc::EncoderConfig enc_cfg;
  enc_cfg.input_dim = dataset.num_features();
  enc_cfg.dim = dim;
  enc_cfg.seed = 123;

  Fixture fx;
  fx.encoder = hdc::make_encoder(enc_cfg);
  fx.train = EncodedDataset::from(*fx.encoder, inner.train);
  fx.val = EncodedDataset::from(*fx.encoder, inner.test);
  fx.test = EncodedDataset::from(*fx.encoder, outer.test);

  RegHDConfig cfg;
  cfg.dim = dim;
  cfg.models = 4;
  cfg.seed = 123;
  cfg.query_precision = query;
  fx.model = std::make_unique<MultiModelRegressor>(cfg);
  fx.model->fit(fx.train, fx.val);
  return fx;
}

/// Re-derives an EncodedSample from a perturbed real vector.
hdc::EncodedSample resample(hdc::RealHV real) {
  hdc::EncodedSample s;
  s.real = std::move(real);
  s.bipolar = s.real.sign();
  s.binary = s.bipolar.pack();
  double n2 = 0.0;
  for (const double v : s.real.values()) {
    n2 += v * v;
  }
  s.real_norm2 = n2;
  s.real_norm = std::sqrt(n2);
  return s;
}

double mse_with_query_noise(const Fixture& fx, double noise_std, util::Rng& rng) {
  double acc = 0.0;
  for (std::size_t i = 0; i < fx.test.size(); ++i) {
    const hdc::EncodedSample noisy =
        resample(hdc::gaussian_noise(fx.test.sample(i).real.to_owning(), noise_std, rng));
    const double e = fx.model->predict(noisy) - fx.test.target(i);
    acc += e * e;
  }
  return acc / static_cast<double>(fx.test.size());
}

class QueryNoiseSweep : public ::testing::TestWithParam<double> {};

TEST_P(QueryNoiseSweep, ComponentNoiseDegradesGracefully) {
  // The encoder output components are O(0.35); noise up to 30% of that must
  // leave the model far better than the mean predictor (MSE 1 in scaled
  // units). This is the redundancy argument of §3.
  const double noise = GetParam();
  static const Fixture fx = make_trained_fixture(2048, QueryPrecision::kReal);
  util::Rng rng(static_cast<std::uint64_t>(noise * 1e6) + 1);
  const double clean = mse_with_query_noise(fx, 0.0, rng);
  const double noisy = mse_with_query_noise(fx, noise, rng);
  EXPECT_LT(clean, 0.15);
  EXPECT_LT(noisy, 0.5);
  EXPECT_GE(noisy, clean * 0.5);  // sanity: noise cannot systematically help
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, QueryNoiseSweep, ::testing::Values(0.02, 0.05, 0.1));

class BitFlipSweep : public ::testing::TestWithParam<double> {};

TEST_P(BitFlipSweep, BinaryQueryBitFlipsDegradeGracefully) {
  // Hardware-fault model for the binary path: flip a fraction of the query
  // bits. Up to 5% flips the quality must remain useful.
  const double flip_rate = GetParam();
  static const Fixture fx = make_trained_fixture(2048, QueryPrecision::kBinary);
  util::Rng rng(static_cast<std::uint64_t>(flip_rate * 1e6) + 7);

  double acc = 0.0;
  for (std::size_t i = 0; i < fx.test.size(); ++i) {
    hdc::EncodedSample corrupted = fx.test.sample(i).materialize();
    corrupted.binary = hdc::flip_noise(corrupted.binary, flip_rate, rng);
    corrupted.bipolar = corrupted.binary.unpack();
    const double e = fx.model->predict(corrupted) - fx.test.target(i);
    acc += e * e;
  }
  const double noisy_mse = acc / static_cast<double>(fx.test.size());
  EXPECT_LT(noisy_mse, 0.6);  // mean predictor is 1.0
}

INSTANTIATE_TEST_SUITE_P(FlipRates, BitFlipSweep, ::testing::Values(0.01, 0.02, 0.05));

TEST(RobustnessTest, ModelComponentFaultsToleratedBetterAtHigherDimension) {
  // Knock out 10% of model components; the relative damage at D=4096 must
  // not exceed the damage at D=512 (information is spread thinner per
  // component at higher D). Allow generous slack for seed variation.
  auto damage_at_dim = [](std::size_t dim) {
    Fixture fx = make_trained_fixture(dim, QueryPrecision::kReal);
    const double clean = fx.model->evaluate_mse(fx.test);
    util::Rng rng(dim);
    for (auto& m : fx.model->mutable_models()) {
      for (std::size_t j = 0; j < dim; ++j) {
        if (rng.bernoulli(0.1)) {
          m.accumulator[j] = 0.0;  // stuck-at-zero fault
        }
      }
      m.requantize();
    }
    const double faulty = fx.model->evaluate_mse(fx.test);
    return faulty - clean;
  };
  EXPECT_LT(damage_at_dim(4096), damage_at_dim(512) + 0.05);
}

TEST(RobustnessTest, PredictionsBoundedUnderExtremeCorruption) {
  // Even a fully random query must not produce NaN/inf or absurd outputs.
  static const Fixture fx = make_trained_fixture(1024, QueryPrecision::kReal);
  util::Rng rng(999);
  const hdc::EncodedSample garbage = resample(hdc::random_gaussian(1024, rng, 0.0, 10.0));
  const double p = fx.model->predict(garbage);
  EXPECT_TRUE(std::isfinite(p));
  EXPECT_LT(std::abs(p), 100.0);
}

}  // namespace
}  // namespace reghd::core
