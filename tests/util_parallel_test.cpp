// Tests for the data-parallel helper.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/parallel.hpp"

namespace reghd::util {
namespace {

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> visits(kN);
  parallel_for(kN, [&](std::size_t i) { visits[i].fetch_add(1); }, 4);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, ResultsMatchSerialExecution) {
  constexpr std::size_t kN = 5000;
  std::vector<double> serial(kN);
  std::vector<double> parallel(kN);
  const auto work = [](std::size_t i) {
    double acc = 0.0;
    for (int j = 0; j < 50; ++j) {
      acc += std::sin(static_cast<double>(i) + j);
    }
    return acc;
  };
  for (std::size_t i = 0; i < kN; ++i) {
    serial[i] = work(i);
  }
  parallel_for(kN, [&](std::size_t i) { parallel[i] = work(i); }, 8);
  EXPECT_EQ(parallel, serial);  // bit-identical, not just approximately equal
}

TEST(ParallelForTest, HandlesEdgeCounts) {
  std::atomic<int> calls{0};
  parallel_for(0, [&](std::size_t) { calls.fetch_add(1); }, 4);
  EXPECT_EQ(calls.load(), 0);
  parallel_for(1, [&](std::size_t) { calls.fetch_add(1); }, 4);
  EXPECT_EQ(calls.load(), 1);
  // More threads than items.
  calls = 0;
  parallel_for(3, [&](std::size_t) { calls.fetch_add(1); }, 16);
  EXPECT_EQ(calls.load(), 3);
}

TEST(ParallelForTest, SingleThreadPathIsSerial) {
  std::vector<std::size_t> order;
  parallel_for(100, [&](std::size_t i) { order.push_back(i); }, 1);
  std::vector<std::size_t> expected(100);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ParallelForTest, WorkerExceptionsPropagate) {
  EXPECT_THROW(
      parallel_for(
          1000,
          [](std::size_t i) {
            if (i == 777) {
              throw std::runtime_error("boom");
            }
          },
          4),
      std::runtime_error);
}

TEST(ParallelForTest, ZeroThreadsMeansHardwareConcurrency) {
  std::vector<std::atomic<int>> visits(256);
  parallel_for(256, [&](std::size_t i) { visits[i].fetch_add(1); }, 0);
  for (auto& v : visits) {
    EXPECT_EQ(v.load(), 1);
  }
}

}  // namespace
}  // namespace reghd::util
