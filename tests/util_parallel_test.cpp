// Tests for the data-parallel helper.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/telemetry.hpp"
#include "util/parallel.hpp"

namespace reghd::util {
namespace {

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> visits(kN);
  parallel_for(kN, [&](std::size_t i) { visits[i].fetch_add(1); }, 4);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, ResultsMatchSerialExecution) {
  constexpr std::size_t kN = 5000;
  std::vector<double> serial(kN);
  std::vector<double> parallel(kN);
  const auto work = [](std::size_t i) {
    double acc = 0.0;
    for (int j = 0; j < 50; ++j) {
      acc += std::sin(static_cast<double>(i) + j);
    }
    return acc;
  };
  for (std::size_t i = 0; i < kN; ++i) {
    serial[i] = work(i);
  }
  parallel_for(kN, [&](std::size_t i) { parallel[i] = work(i); }, 8);
  EXPECT_EQ(parallel, serial);  // bit-identical, not just approximately equal
}

TEST(ParallelForTest, HandlesEdgeCounts) {
  std::atomic<int> calls{0};
  parallel_for(0, [&](std::size_t) { calls.fetch_add(1); }, 4);
  EXPECT_EQ(calls.load(), 0);
  parallel_for(1, [&](std::size_t) { calls.fetch_add(1); }, 4);
  EXPECT_EQ(calls.load(), 1);
  // More threads than items.
  calls = 0;
  parallel_for(3, [&](std::size_t) { calls.fetch_add(1); }, 16);
  EXPECT_EQ(calls.load(), 3);
}

TEST(ParallelForTest, SingleThreadPathIsSerial) {
  std::vector<std::size_t> order;
  parallel_for(100, [&](std::size_t i) { order.push_back(i); }, 1);
  std::vector<std::size_t> expected(100);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ParallelForTest, WorkerExceptionsPropagate) {
  EXPECT_THROW(
      parallel_for(
          1000,
          [](std::size_t i) {
            if (i == 777) {
              throw std::runtime_error("boom");
            }
          },
          4),
      std::runtime_error);
}

TEST(ParallelForTest, ZeroThreadsMeansHardwareConcurrency) {
  std::vector<std::atomic<int>> visits(256);
  parallel_for(256, [&](std::size_t i) { visits[i].fetch_add(1); }, 0);
  for (auto& v : visits) {
    EXPECT_EQ(v.load(), 1);
  }
}

TEST(ParallelForTest, ResultsIdenticalAcrossThreadCounts) {
  // The load-bearing determinism property: 1, 2, and 8 threads must produce
  // bit-identical output because block boundaries, not scheduling, decide
  // who computes what.
  constexpr std::size_t kN = 4097;  // deliberately not a multiple of any count
  const auto work = [](std::size_t i) {
    return std::sin(static_cast<double>(i) * 0.37) / (static_cast<double>(i) + 1.0);
  };
  std::vector<std::vector<double>> results;
  for (const std::size_t threads : {1, 2, 8}) {
    std::vector<double> out(kN);
    parallel_for(kN, [&](std::size_t i) { out[i] = work(i); }, threads);
    results.push_back(std::move(out));
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

TEST(ParallelForTest, FirstExceptionByBlockOrderWins) {
  // Two blocks throw; the one owning the lower block index must be the one
  // rethrown, regardless of which finishes first.
  constexpr std::size_t kN = 1000;
  try {
    parallel_for(
        kN,
        [](std::size_t i) {
          if (i == 10 || i == 990) {
            throw std::runtime_error("boom at " + std::to_string(i));
          }
        },
        4);
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom at 10");
  }
}

TEST(ParallelForTest, NestedCallsRunSeriallyWithoutDeadlock) {
  // A parallel_for inside a parallel_for must complete (the pool runs the
  // inner one inline) and still visit every index of both loops.
  std::vector<std::atomic<int>> visits(64 * 16);
  parallel_for(
      64,
      [&](std::size_t outer) {
        parallel_for(
            16, [&](std::size_t inner) { visits[outer * 16 + inner].fetch_add(1); }, 4);
      },
      4);
  for (std::size_t i = 0; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "slot " << i;
  }
}

TEST(ParallelForTest, PoolSurvivesManyDispatches) {
  // The persistent pool is reused across calls; hammer it to shake out
  // generation-counter bugs (a worker straddling two jobs, a lost wakeup).
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 200; ++round) {
    parallel_for(64, [&](std::size_t) { total.fetch_add(1); }, 4);
  }
  EXPECT_EQ(total.load(), 200u * 64u);
}

TEST(ThreadPoolTest, ThreadCountMatchesConstruction) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
  std::vector<std::atomic<int>> visits(10);
  pool.run_blocks(10, [&](std::size_t b) { visits[b].fetch_add(1); });
  for (auto& v : visits) {
    EXPECT_EQ(v.load(), 1);
  }
}

#ifndef REGHD_NO_TELEMETRY
TEST(ThreadPoolTest, NestedRunBlocksBusyTimeCountsEachThreadOnce) {
  // Occupancy regression guard: pool_worker_busy_ns must count each thread's
  // wall time at most once. A nested run_blocks executes inline inside an
  // enclosing participation frame whose clock window already covers it — if
  // the nested frame recorded too, busy time would double and occupancy
  // (busy / (wall × threads)) would read past 100%.
  obs::reset();
  obs::set_enabled(true);
  ThreadPool pool(4);
  const auto t0 = std::chrono::steady_clock::now();
  pool.run_blocks(8, [&](std::size_t) {
    // Nested dispatch: runs inline on whichever participant claimed the
    // outer block (worker threads and the calling thread alike).
    pool.run_blocks(8, [](std::size_t) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    });
  });
  const auto wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  const obs::TelemetrySnapshot snap = obs::snapshot();
  const auto busy_ns =
      static_cast<double>(snap.counter(obs::Counter::kPoolWorkerBusyNs));
  obs::set_enabled(false);
  obs::reset();
  EXPECT_GT(busy_ns, 0.0);
  // 4 participants (3 workers + the caller), each busy for at most the whole
  // call window; 10% slack for clock-read jitter. Double-counting the nested
  // frames would land near 2× the single-count value and trip this bound.
  EXPECT_LE(busy_ns, wall_ns * 4.0 * 1.10)
      << "busy " << busy_ns << " ns vs wall " << wall_ns << " ns × 4 threads";
}
#endif

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::vector<std::size_t> order;
  pool.run_blocks(8, [&](std::size_t b) { order.push_back(b); });
  std::vector<std::size_t> expected(8);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

}  // namespace
}  // namespace reghd::util
