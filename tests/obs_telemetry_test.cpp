// Tests for the obs/ runtime telemetry layer: counters, log-bucketed
// latency histograms, stage timers, the runtime enable flag, reset, the
// cluster-hit family, and the JSON / Prometheus / table exports. All tests
// compile (and pass vacuously where recording is removed) under
// -DREGHD_NO_TELEMETRY.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/telemetry.hpp"

namespace reghd::obs {
namespace {

/// Every test starts from zeroed shards with telemetry armed, and leaves
/// the process back in the default disabled state.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reset();
    set_enabled(true);
  }
  void TearDown() override {
    set_enabled(false);
    reset();
  }
};

#ifndef REGHD_NO_TELEMETRY

TEST_F(TelemetryTest, CountersAccumulateAndSnapshotByEnum) {
  count(Counter::kTrainSteps);
  count(Counter::kTrainSteps, 4);
  count(Counter::kEncodeRows, 7);
  const TelemetrySnapshot snap = snapshot();
  EXPECT_EQ(snap.counter(Counter::kTrainSteps), 5u);
  EXPECT_EQ(snap.counter(Counter::kEncodeRows), 7u);
  EXPECT_EQ(snap.counter(Counter::kPredicts), 0u);
}

TEST_F(TelemetryTest, DisabledRecordingIsDropped) {
  set_enabled(false);
  count(Counter::kPredicts, 100);
  observe_ns(Histo::kPredictNs, 1000);
  count_cluster_hit(0);
  set_enabled(true);
  const TelemetrySnapshot snap = snapshot();
  EXPECT_EQ(snap.counter(Counter::kPredicts), 0u);
  EXPECT_EQ(snap.histogram(Histo::kPredictNs).count, 0u);
  EXPECT_EQ(snap.cluster_hits[0], 0u);
}

TEST_F(TelemetryTest, ResetZeroesEverything) {
  count(Counter::kRequantizes, 3);
  observe_ns(Histo::kTrainStepNs, 500);
  count_cluster_hit(2);
  reset();
  const TelemetrySnapshot snap = snapshot();
  EXPECT_EQ(snap.counter(Counter::kRequantizes), 0u);
  EXPECT_EQ(snap.histogram(Histo::kTrainStepNs).count, 0u);
  EXPECT_EQ(snap.cluster_hits[2], 0u);
}

TEST_F(TelemetryTest, HistogramBucketsFollowBitWidth) {
  observe_ns(Histo::kPredictNs, 0);     // bucket 0: exact zeros
  observe_ns(Histo::kPredictNs, 1);     // bucket 1: [1, 2)
  observe_ns(Histo::kPredictNs, 7);     // bucket 3: [4, 8)
  observe_ns(Histo::kPredictNs, 1024);  // bucket 11: [1024, 2048)
  const HistogramSnapshot h = snapshot().histogram(Histo::kPredictNs);
  EXPECT_EQ(h.count, 4u);
  EXPECT_EQ(h.sum_ns, 1032u);
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[1], 1u);
  EXPECT_EQ(h.buckets[3], 1u);
  EXPECT_EQ(h.buckets[11], 1u);
  EXPECT_DOUBLE_EQ(h.mean_ns(), 1032.0 / 4.0);
}

TEST_F(TelemetryTest, HugeObservationsClampIntoTheLastBucket) {
  observe_ns(Histo::kCkptWriteNs, ~std::uint64_t{0});
  const HistogramSnapshot h = snapshot().histogram(Histo::kCkptWriteNs);
  EXPECT_EQ(h.buckets[kHistoBuckets - 1], 1u);
}

TEST_F(TelemetryTest, QuantilesAreMonotoneAndBucketAccurate) {
  // 100 observations at ~1 µs, 5 at ~1 ms: p50 must sit in the 1 µs bucket
  // ([1024, 2048) ns) and p99 in the 1 ms bucket ([2^19, 2^20) ns).
  for (int i = 0; i < 100; ++i) {
    observe_ns(Histo::kTrainStepNs, 1500);
  }
  for (int i = 0; i < 5; ++i) {
    observe_ns(Histo::kTrainStepNs, 800000);
  }
  const HistogramSnapshot h = snapshot().histogram(Histo::kTrainStepNs);
  EXPECT_GE(h.p50_ns(), 1024.0);
  EXPECT_LT(h.p50_ns(), 2048.0);
  EXPECT_GE(h.p99_ns(), 524288.0);
  EXPECT_LT(h.p99_ns(), 1048576.0);
  EXPECT_LE(h.p50_ns(), h.p95_ns());
  EXPECT_LE(h.p95_ns(), h.p99_ns());
  EXPECT_DOUBLE_EQ(snapshot().histogram(Histo::kPredictNs).p99_ns(), 0.0);  // empty
}

TEST_F(TelemetryTest, StageTimerRecordsOnlyWhenArmed) {
  { const StageTimer t(Histo::kEncodeRowNs); }
  EXPECT_EQ(snapshot().histogram(Histo::kEncodeRowNs).count, 1u);
  set_enabled(false);
  { const StageTimer t(Histo::kEncodeRowNs); }
  set_enabled(true);
  EXPECT_EQ(snapshot().histogram(Histo::kEncodeRowNs).count, 1u);
}

TEST_F(TelemetryTest, ClusterHitsSaturateIntoTheLastSlot) {
  count_cluster_hit(0);
  count_cluster_hit(3);
  count_cluster_hit(3);
  count_cluster_hit(kClusterHitSlots + 40);  // beyond the family cap
  const TelemetrySnapshot snap = snapshot();
  EXPECT_EQ(snap.cluster_hits[0], 1u);
  EXPECT_EQ(snap.cluster_hits[3], 2u);
  EXPECT_EQ(snap.cluster_hits[kClusterHitSlots - 1], 1u);
}

TEST_F(TelemetryTest, ShardsFromExitedThreadsSurviveInTheMerge) {
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < 1000; ++i) {
        count(Counter::kPoolBlocks);
      }
      observe_ns(Histo::kPoolJobNs, 4096);
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  // All threads have exited; their shards must still be in the totals.
  const TelemetrySnapshot snap = snapshot();
  EXPECT_EQ(snap.counter(Counter::kPoolBlocks), 4000u);
  EXPECT_EQ(snap.histogram(Histo::kPoolJobNs).count, 4u);
}

#endif  // REGHD_NO_TELEMETRY

TEST_F(TelemetryTest, MetricNamesAreStableSnakeCase) {
  EXPECT_EQ(counter_name(Counter::kEncodeRows), "encode_rows");
  EXPECT_EQ(counter_name(Counter::kCkptRecoveries), "ckpt_recoveries");
  EXPECT_EQ(histo_name(Histo::kEncodeRowNs), "encode_row_ns");
  EXPECT_EQ(histo_name(Histo::kCkptRecoverNs), "ckpt_recover_ns");
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    const std::string_view name = counter_name(static_cast<Counter>(i));
    EXPECT_FALSE(name.empty()) << "counter " << i << " has no name";
    for (const char c : name) {
      EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_')
          << "counter name '" << name << "' is not snake_case";
    }
  }
  for (std::size_t i = 0; i < kNumHistos; ++i) {
    EXPECT_FALSE(histo_name(static_cast<Histo>(i)).empty()) << "histo " << i;
  }
}

TEST_F(TelemetryTest, JsonExportCarriesEveryMetric) {
  count(Counter::kTrainSteps, 12);
  observe_ns(Histo::kTrainStepNs, 2000);
  const std::string json = to_json(snapshot());
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"cluster_hits\""), std::string::npos);
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    const std::string key = '"' + std::string(counter_name(static_cast<Counter>(i))) + '"';
    EXPECT_NE(json.find(key), std::string::npos) << "missing counter key " << key;
  }
#ifndef REGHD_NO_TELEMETRY
  EXPECT_NE(json.find("\"train_steps\": 12"), std::string::npos);
#endif
}

TEST_F(TelemetryTest, PrometheusExportFollowsTextExposition) {
  count(Counter::kPredicts, 3);
  observe_ns(Histo::kPredictNs, 1000);
  count_cluster_hit(1);
  const std::string prom = to_prometheus(snapshot());
  EXPECT_NE(prom.find("# TYPE reghd_predicts_total counter"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE reghd_predict_seconds histogram"), std::string::npos);
  EXPECT_NE(prom.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(prom.find("reghd_predict_seconds_count"), std::string::npos);
  EXPECT_NE(prom.find("reghd_predict_seconds_sum"), std::string::npos);
#ifndef REGHD_NO_TELEMETRY
  EXPECT_NE(prom.find("reghd_predicts_total 3"), std::string::npos);
  EXPECT_NE(prom.find("reghd_cluster_hits_total{cluster=\"1\"} 1"), std::string::npos);
#endif
  // Every line is a comment or a `name[{labels}] value` sample.
  std::size_t pos = 0;
  while (pos < prom.size()) {
    const std::size_t eol = prom.find('\n', pos);
    ASSERT_NE(eol, std::string::npos) << "unterminated final line";
    const std::string line = prom.substr(pos, eol - pos);
    if (!line.empty() && line[0] != '#') {
      EXPECT_NE(line.find(' '), std::string::npos) << "malformed sample: " << line;
      EXPECT_EQ(line.rfind("reghd_", 0), 0u) << "unprefixed sample: " << line;
    }
    pos = eol + 1;
  }
}

TEST_F(TelemetryTest, PrometheusExportsPredictFusedFallbackCounter) {
  // Regression pin: the fused-fallback counter must ride the exporter like
  // every other counter — dashboards alert on a rising fallback rate (the
  // fused predict path silently degrading to the materializing path).
  count(Counter::kPredictFusedFallbacks, 3);
  const std::string prom = to_prometheus(snapshot());
  EXPECT_NE(prom.find("# TYPE reghd_predict_fused_fallbacks_total counter"),
            std::string::npos);
#ifndef REGHD_NO_TELEMETRY
  EXPECT_NE(prom.find("reghd_predict_fused_fallbacks_total 3"), std::string::npos);
#endif
}

TEST_F(TelemetryTest, PrometheusKeepsUnitlessHistogramsUnconverted) {
  // Only *_ns histograms convert to the Prometheus base unit. A unitless
  // histogram (serve_batch_fill observes batch sizes) must export verbatim —
  // a forced _seconds suffix would mislabel the unit and divide the bucket
  // edges of a size distribution by 1e9.
  observe_ns(Histo::kServeBatchFill, 8);
  observe_ns(Histo::kServeQueueWaitNs, 1000);
  const std::string prom = to_prometheus(snapshot());
  EXPECT_NE(prom.find("# TYPE reghd_serve_batch_fill histogram"), std::string::npos);
  EXPECT_EQ(prom.find("serve_batch_fill_seconds"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE reghd_serve_queue_wait_seconds histogram"),
            std::string::npos);
  EXPECT_EQ(prom.find("serve_queue_wait_ns"), std::string::npos);
#ifndef REGHD_NO_TELEMETRY
  EXPECT_NE(prom.find("reghd_serve_batch_fill_sum 8"), std::string::npos);
  EXPECT_NE(prom.find("reghd_serve_batch_fill_count 1"), std::string::npos);
  // Raw le edge (bucket_of(8) = bit_width(8) = 4 → upper edge 2^4 = 16) —
  // not divided by 1e9.
  EXPECT_NE(prom.find("reghd_serve_batch_fill_bucket{le=\"16\"} 1"),
            std::string::npos);
#endif
}

TEST_F(TelemetryTest, TableViewRendersNonEmpty) {
  count(Counter::kOnlineUpdates, 2);
  observe_ns(Histo::kOnlineUpdateNs, 123456);
  const std::string table = to_table(snapshot());
  EXPECT_NE(table.find("counters"), std::string::npos);
#ifndef REGHD_NO_TELEMETRY
  EXPECT_NE(table.find("online_updates"), std::string::npos);
  EXPECT_NE(table.find("online_update_ns"), std::string::npos);
#endif
}

}  // namespace
}  // namespace reghd::obs
