// Tests for random hypervector generation: determinism, balance, and the
// near-orthogonality property (the foundation of HD computing, paper §2.2).
#include <gtest/gtest.h>

#include <cmath>

#include "hdc/ops.hpp"
#include "hdc/random_hv.hpp"
#include "util/random.hpp"

namespace reghd::hdc {
namespace {

TEST(RandomBipolarTest, DeterministicForFixedSeed) {
  util::Rng a(5);
  util::Rng b(5);
  EXPECT_EQ(random_bipolar(256, a), random_bipolar(256, b));
}

TEST(RandomBipolarTest, RoughlyBalanced) {
  util::Rng rng(7);
  const BipolarHV v = random_bipolar(10000, rng);
  std::int64_t sum = 0;
  for (std::size_t i = 0; i < v.dim(); ++i) {
    sum += v[i];
  }
  // Sum of 10k ±1 has stddev 100; 5σ bound.
  EXPECT_LT(std::abs(sum), 500);
}

TEST(RandomBinaryTest, RoughlyHalfBitsSet) {
  util::Rng rng(11);
  const BinaryHV v = random_binary(10000, rng);
  const auto pop = static_cast<double>(v.popcount());
  EXPECT_NEAR(pop / 10000.0, 0.5, 0.05);
}

TEST(RandomBinaryTest, PaddingInvariantHolds) {
  util::Rng rng(13);
  const BinaryHV v = random_binary(70, rng);
  EXPECT_EQ(v.words()[1] >> 6, 0ULL);
}

TEST(RandomGaussianTest, MomentsMatch) {
  util::Rng rng(17);
  const RealHV v = random_gaussian(20000, rng, 2.0, 3.0);
  double sum = 0.0;
  double sq = 0.0;
  for (const double x : v.values()) {
    sum += x;
    sq += x * x;
  }
  const double mean = sum / 20000.0;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(sq / 20000.0 - mean * mean, 9.0, 0.4);
}

// Near-orthogonality sweep: random bipolar hypervectors of dimension D have
// cosine similarity concentrating as N(0, 1/D) — this is Eq. 3's "noise"
// term being near zero.
class OrthogonalityTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OrthogonalityTest, RandomBipolarPairsAreNearOrthogonal) {
  const std::size_t dim = GetParam();
  util::Rng rng(dim * 31 + 1);
  const double bound = 6.0 / std::sqrt(static_cast<double>(dim));  // 6σ
  for (int trial = 0; trial < 20; ++trial) {
    const BipolarHV a = random_bipolar(dim, rng);
    const BipolarHV b = random_bipolar(dim, rng);
    const double cos_sim =
        static_cast<double>(bipolar_dot(a, b)) / static_cast<double>(dim);
    EXPECT_LT(std::abs(cos_sim), bound) << "dim=" << dim;
  }
}

TEST_P(OrthogonalityTest, SimilarityVarianceScalesInverselyWithDim) {
  const std::size_t dim = GetParam();
  util::Rng rng(dim * 37 + 5);
  double sq_sum = 0.0;
  constexpr int kPairs = 200;
  for (int trial = 0; trial < kPairs; ++trial) {
    const BinaryHV a = random_binary(dim, rng);
    const BinaryHV b = random_binary(dim, rng);
    const double s = hamming_similarity(a, b);
    sq_sum += s * s;
  }
  const double measured_var = sq_sum / kPairs;
  const double expected_var = 1.0 / static_cast<double>(dim);
  EXPECT_GT(measured_var, expected_var * 0.5);
  EXPECT_LT(measured_var, expected_var * 2.0);
}

INSTANTIATE_TEST_SUITE_P(Dims, OrthogonalityTest,
                         ::testing::Values(512, 1024, 2048, 4096, 10000));

TEST(RandomBipolarSetTest, ProducesIndependentVectors) {
  util::Rng rng(23);
  const auto set = random_bipolar_set(5, 2048, rng);
  ASSERT_EQ(set.size(), 5u);
  for (std::size_t i = 0; i < set.size(); ++i) {
    for (std::size_t j = i + 1; j < set.size(); ++j) {
      const double cos_sim = static_cast<double>(bipolar_dot(set[i], set[j])) / 2048.0;
      EXPECT_LT(std::abs(cos_sim), 0.15);
    }
  }
}

TEST(FlipNoiseTest, FlipRateMatchesProbability) {
  util::Rng rng(29);
  const BinaryHV v = random_binary(20000, rng);
  const BinaryHV noisy = flip_noise(v, 0.1, rng);
  const auto flips = static_cast<double>(hamming_distance(v, noisy));
  EXPECT_NEAR(flips / 20000.0, 0.1, 0.01);
}

TEST(FlipNoiseTest, ZeroAndOneProbabilityEdges) {
  util::Rng rng(31);
  const BinaryHV v = random_binary(500, rng);
  EXPECT_EQ(flip_noise(v, 0.0, rng), v);
  const BinaryHV flipped = flip_noise(v, 1.0, rng);
  EXPECT_EQ(hamming_distance(v, flipped), 500u);
  EXPECT_THROW((void)flip_noise(v, 1.5, rng), std::invalid_argument);
}

TEST(GaussianNoiseTest, PerturbationHasRequestedScale) {
  util::Rng rng(37);
  const RealHV v = random_gaussian(10000, rng);
  const RealHV noisy = gaussian_noise(v, 0.5, rng);
  double sq = 0.0;
  for (std::size_t i = 0; i < v.dim(); ++i) {
    const double d = noisy[i] - v[i];
    sq += d * d;
  }
  EXPECT_NEAR(std::sqrt(sq / 10000.0), 0.5, 0.05);
  EXPECT_THROW((void)gaussian_noise(v, -0.1, rng), std::invalid_argument);
}

}  // namespace
}  // namespace reghd::hdc
