// Snapshot hot-swap: publish/acquire roundtrip, epoch monotonicity and
// torn-read freedom under concurrent publishers and readers. This suite also
// runs under the TSan CI job (test names carry the "Serve" prefix the job's
// -R filter selects), where the "no torn reads" property becomes a real
// data-race check on the publish/acquire pair.
#include "serve/snapshot.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "core/online.hpp"
#include "data/synthetic.hpp"

namespace reghd::serve {
namespace {

core::OnlineConfig tiny_config() {
  core::OnlineConfig cfg;
  cfg.reghd.dim = 128;
  cfg.reghd.models = 2;
  return cfg;
}

std::shared_ptr<ModelSnapshot> make_snapshot(std::uint64_t epoch, std::size_t nf) {
  auto snap = std::make_shared<ModelSnapshot>(core::OnlineRegHD(tiny_config(), nf));
  snap->epoch = epoch;
  snap->epoch_check = epoch;
  snap->published_ns = epoch * 1000;
  return snap;
}

TEST(ServeSnapshotTest, EmptyCellReportsEpochZeroAndNull) {
  const SnapshotCell cell;
  EXPECT_EQ(cell.epoch_hint(), 0U);
  EXPECT_EQ(cell.acquire(), nullptr);
}

TEST(ServeSnapshotTest, PublishAcquireRoundtrip) {
  SnapshotCell cell;
  cell.publish(make_snapshot(7, 4));
  EXPECT_EQ(cell.epoch_hint(), 7U);
  const std::shared_ptr<const ModelSnapshot> got = cell.acquire();
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->epoch, 7U);
  EXPECT_EQ(got->epoch_check, 7U);
  EXPECT_EQ(got->learner.num_features(), 4U);
}

TEST(ServeSnapshotTest, RepublishReplacesAndOldReferenceSurvives) {
  SnapshotCell cell;
  cell.publish(make_snapshot(1, 4));
  const std::shared_ptr<const ModelSnapshot> old = cell.acquire();
  cell.publish(make_snapshot(2, 4));
  EXPECT_EQ(cell.epoch_hint(), 2U);
  EXPECT_EQ(cell.acquire()->epoch, 2U);
  // The worker's retained reference keeps serving the old epoch safely.
  EXPECT_EQ(old->epoch, 1U);
  EXPECT_EQ(old->epoch_check, 1U);
}

// The hot-swap race: one publisher flipping epochs as fast as it can, several
// readers acquiring concurrently. Every acquired snapshot must be internally
// consistent (epoch == epoch_check — no torn pointer/state) and each reader's
// observed epoch sequence must be non-decreasing (publication order is the
// single trainer's order).
TEST(ServeSnapshotTest, ConcurrentPublishersAndReadersSeeConsistentMonotonicEpochs) {
  constexpr std::uint64_t kEpochs = 200;
  constexpr std::size_t kReaders = 3;
  SnapshotCell cell;
  cell.publish(make_snapshot(1, 4));

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  std::vector<std::uint64_t> max_seen(kReaders, 0);
  std::vector<bool> torn(kReaders, false);
  std::vector<bool> regressed(kReaders, false);
  readers.reserve(kReaders);
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::uint64_t last = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const std::shared_ptr<const ModelSnapshot> snap = cell.acquire();
        if (snap == nullptr) {
          continue;
        }
        if (snap->epoch != snap->epoch_check) {
          torn[r] = true;
        }
        if (snap->epoch < last) {
          regressed[r] = true;
        }
        last = snap->epoch;
        // Touch the payload so TSan watches the learner bytes too.
        if (snap->learner.num_features() != 4) {
          torn[r] = true;
        }
      }
      max_seen[r] = last;
    });
  }

  for (std::uint64_t e = 2; e <= kEpochs; ++e) {
    cell.publish(make_snapshot(e, 4));
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) {
    t.join();
  }
  for (std::size_t r = 0; r < kReaders; ++r) {
    EXPECT_FALSE(torn[r]) << "reader " << r << " observed a torn snapshot";
    EXPECT_FALSE(regressed[r]) << "reader " << r << " observed an epoch regression";
    EXPECT_LE(max_seen[r], kEpochs);
  }
  EXPECT_EQ(cell.epoch_hint(), kEpochs);
  EXPECT_EQ(cell.acquire()->epoch, kEpochs);
}

// epoch_hint is the worker's cheap poll: it must never run ahead of what
// acquire() can deliver (hint published after the pointer).
TEST(ServeSnapshotTest, EpochHintNeverAheadOfAcquiredSnapshot) {
  SnapshotCell cell;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const std::uint64_t hint = cell.epoch_hint();
      const std::shared_ptr<const ModelSnapshot> snap = cell.acquire();
      const std::uint64_t got = snap ? snap->epoch : 0;
      ASSERT_GE(got, hint) << "hint advertised an epoch acquire() could not see";
    }
  });
  for (std::uint64_t e = 1; e <= 500; ++e) {
    cell.publish(make_snapshot(e, 4));
  }
  stop.store(true, std::memory_order_release);
  reader.join();
}

}  // namespace
}  // namespace reghd::serve
