// Tests for regression quality metrics.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/metrics.hpp"

namespace reghd::util {
namespace {

TEST(MseTest, HandComputed) {
  const std::vector<double> pred = {1.0, 2.0, 3.0};
  const std::vector<double> truth = {1.0, 3.0, 5.0};
  EXPECT_DOUBLE_EQ(mse(pred, truth), (0.0 + 1.0 + 4.0) / 3.0);
}

TEST(MseTest, ZeroForPerfectPrediction) {
  const std::vector<double> v = {1.5, -2.0, 0.25};
  EXPECT_DOUBLE_EQ(mse(v, v), 0.0);
}

TEST(MseTest, RejectsMismatchedAndEmpty) {
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {1.0};
  EXPECT_THROW((void)mse(a, b), std::invalid_argument);
  EXPECT_THROW((void)mse(std::vector<double>{}, std::vector<double>{}),
               std::invalid_argument);
}

TEST(RmseMaeTest, ConsistentWithMse) {
  const std::vector<double> pred = {0.0, 0.0, 0.0, 0.0};
  const std::vector<double> truth = {2.0, -2.0, 2.0, -2.0};
  EXPECT_DOUBLE_EQ(rmse(pred, truth), 2.0);
  EXPECT_DOUBLE_EQ(mae(pred, truth), 2.0);
}

TEST(MaeTest, LessSensitiveToOutliersThanRmse) {
  const std::vector<double> pred = {0.0, 0.0, 0.0, 0.0};
  const std::vector<double> truth = {0.0, 0.0, 0.0, 10.0};
  EXPECT_LT(mae(pred, truth), rmse(pred, truth));
}

TEST(R2Test, OneForPerfectZeroForMeanNegativeForWorse) {
  const std::vector<double> truth = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(r2(truth, truth), 1.0);
  const std::vector<double> mean_pred(4, 2.5);
  EXPECT_DOUBLE_EQ(r2(mean_pred, truth), 0.0);
  const std::vector<double> bad = {4.0, 3.0, 2.0, 1.0};
  EXPECT_LT(r2(bad, truth), 0.0);
}

// Constant targets make ss_tot zero, so the usual 1 − ss_res/ss_tot is
// undefined; the documented convention (metrics.hpp) is 1 for an exact
// match and 0 for anything else — never a division by zero.
TEST(R2Test, ConstantTargetEdgeCases) {
  const std::vector<double> truth = {3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(r2(truth, truth), 1.0);  // exact match
  const std::vector<double> off = {3.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(r2(off, truth), 0.0);  // imperfect on constant target
  const std::vector<double> shifted(3, 2.0);
  EXPECT_DOUBLE_EQ(r2(shifted, truth), 0.0);  // constant but wrong predictions
  const std::vector<double> one = {7.0};
  EXPECT_DOUBLE_EQ(r2(one, one), 1.0);  // single element is constant + exact
  EXPECT_DOUBLE_EQ(r2(std::vector<double>{6.0}, one), 0.0);
}

TEST(R2Test, ConstantTargetsStayFiniteThroughTheBundle) {
  const std::vector<double> truth(4, -1.5);
  const std::vector<double> pred = {-1.5, -1.4, -1.6, -1.5};
  const RegressionMetrics m = evaluate_regression(pred, truth);
  EXPECT_TRUE(std::isfinite(m.r2));
  EXPECT_DOUBLE_EQ(m.r2, 0.0);
  const RegressionMetrics exact = evaluate_regression(truth, truth);
  EXPECT_DOUBLE_EQ(exact.r2, 1.0);
}

TEST(QualityLossTest, PaperStyleRelativeLoss) {
  // 0.3% loss as reported for cluster quantization (Fig. 6).
  EXPECT_NEAR(quality_loss_percent(1.003, 1.0), 0.3, 1e-9);
  EXPECT_DOUBLE_EQ(quality_loss_percent(2.0, 1.0), 100.0);
  EXPECT_LT(quality_loss_percent(0.9, 1.0), 0.0);  // improvement is negative loss
}

TEST(QualityLossTest, RejectsNonPositiveReference) {
  EXPECT_THROW((void)quality_loss_percent(1.0, 0.0), std::invalid_argument);
}

TEST(EvaluateRegressionTest, BundlesAllMetricsConsistently) {
  const std::vector<double> pred = {1.0, 2.0, 2.5};
  const std::vector<double> truth = {1.5, 2.5, 2.0};
  const RegressionMetrics m = evaluate_regression(pred, truth);
  EXPECT_DOUBLE_EQ(m.mse, mse(pred, truth));
  EXPECT_DOUBLE_EQ(m.rmse, std::sqrt(m.mse));
  EXPECT_DOUBLE_EQ(m.mae, mae(pred, truth));
  EXPECT_DOUBLE_EQ(m.r2, r2(pred, truth));
  EXPECT_FALSE(m.to_string().empty());
}

}  // namespace
}  // namespace reghd::util
