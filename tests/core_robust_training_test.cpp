// Tests for outlier-robust training (clipped-error updates).
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "core/model_io.hpp"
#include "core/multi_model.hpp"
#include "data/scaler.hpp"
#include "data/synthetic.hpp"
#include "hdc/encoding.hpp"
#include "util/random.hpp"

namespace reghd::core {
namespace {

struct Task {
  EncodedDataset train;
  EncodedDataset val;
  EncodedDataset test;
  std::unique_ptr<hdc::Encoder> encoder;
};

/// Sine task with a fraction of wildly corrupted training labels; val/test
/// stay clean (the usual robust-regression setting).
Task make_outlier_task(double outlier_fraction, std::uint64_t seed) {
  data::Dataset dataset = data::make_sine_task(900, seed, 0.02);
  data::StandardScaler fs;
  fs.fit(dataset);
  fs.transform(dataset);
  data::TargetScaler ts;
  ts.fit(dataset);
  ts.transform(dataset);

  util::Rng rng(seed);
  const data::TrainTestSplit outer = data::train_test_split(dataset, 0.25, rng);
  data::TrainTestSplit inner = data::train_test_split(outer.train, 0.2, rng);

  // Corrupt training labels only.
  for (std::size_t i = 0; i < inner.train.size(); ++i) {
    if (rng.bernoulli(outlier_fraction)) {
      inner.train.mutable_target(i) = rng.normal(0.0, 15.0);  // glitch
    }
  }

  hdc::EncoderConfig enc;
  enc.input_dim = 1;
  enc.dim = 1024;
  enc.seed = seed;
  Task task;
  task.encoder = hdc::make_encoder(enc);
  task.train = EncodedDataset::from(*task.encoder, inner.train);
  task.val = EncodedDataset::from(*task.encoder, inner.test);
  task.test = EncodedDataset::from(*task.encoder, outer.test);
  return task;
}

RegHDConfig config_with_clip(double clip) {
  RegHDConfig cfg;
  cfg.dim = 1024;
  cfg.models = 2;
  cfg.seed = 5;
  cfg.max_epochs = 40;
  cfg.error_clip = clip;
  return cfg;
}

TEST(RobustTrainingTest, ClippingHelpsUnderLabelOutliers) {
  const Task task = make_outlier_task(0.1, 31);
  MultiModelRegressor plain(config_with_clip(0.0));
  MultiModelRegressor robust(config_with_clip(1.0));
  plain.fit(task.train, task.val);
  robust.fit(task.train, task.val);
  const double mse_plain = plain.evaluate_mse(task.test);
  const double mse_robust = robust.evaluate_mse(task.test);
  EXPECT_LT(mse_robust, mse_plain);
  EXPECT_LT(mse_robust, 0.4);  // still a useful fit on clean test data
}

TEST(RobustTrainingTest, ClippingHarmlessOnCleanData) {
  const Task task = make_outlier_task(0.0, 37);
  MultiModelRegressor plain(config_with_clip(0.0));
  MultiModelRegressor robust(config_with_clip(1.0));
  plain.fit(task.train, task.val);
  robust.fit(task.train, task.val);
  // On clean standardized data errors rarely exceed 1, so clipping barely
  // binds: quality must stay within a small band.
  EXPECT_LT(robust.evaluate_mse(task.test), plain.evaluate_mse(task.test) * 1.3 + 0.02);
}

TEST(RobustTrainingTest, ClipBoundsSingleUpdateMagnitude) {
  RegHDConfig cfg = config_with_clip(0.5);
  cfg.models = 1;
  MultiModelRegressor model(cfg);
  const Task task = make_outlier_task(0.0, 41);
  model.reset();
  const auto& s = task.train.sample(0);
  const double before = model.predict(s);
  model.train_step(s, 100.0);  // absurd target
  const double after = model.predict(s);
  // Normalized-LMS property with clipping: the move is α·clip, not α·err.
  EXPECT_LE(after - before, cfg.learning_rate * 0.5 + 1e-9);
}

TEST(RobustTrainingTest, NegativeClipRejected) {
  RegHDConfig cfg;
  cfg.error_clip = -1.0;
  EXPECT_THROW(MultiModelRegressor{cfg}, std::invalid_argument);
}

TEST(RobustTrainingTest, ClipSurvivesSerialization) {
  // error_clip round-trips through the model file.
  const data::Dataset d = data::make_friedman1(300, 43);
  PipelineConfig pcfg;
  pcfg.reghd.dim = 512;
  pcfg.reghd.models = 2;
  pcfg.reghd.max_epochs = 5;
  pcfg.reghd.error_clip = 0.75;
  RegHDPipeline original(pcfg);
  original.fit(d);
  std::stringstream buffer;
  save_pipeline(buffer, original);
  const RegHDPipeline restored = load_pipeline(buffer);
  EXPECT_DOUBLE_EQ(restored.config().reghd.error_clip, 0.75);
}

}  // namespace
}  // namespace reghd::core
