// Tests for the device profiles and the energy/latency mapping.
#include <gtest/gtest.h>

#include "perf/device_profile.hpp"

namespace reghd::perf {
namespace {

OpCount float_heavy() {
  OpCount c;
  c.float_mul = 1000;
  c.float_add = 1000;
  return c;
}

OpCount bit_heavy() {
  // Same 1000-dimension workload expressed as packed word operations
  // (1000/64 ≈ 16 words).
  OpCount c;
  c.xor_word = 16;
  c.popcount_word = 16;
  c.int_add = 16;
  return c;
}

TEST(DeviceProfileTest, EnergyAndTimeArePositiveAndLinear) {
  const DeviceProfile& fpga = fpga_kintex7();
  const OpCount c = float_heavy();
  const double e1 = fpga.energy_uj(c);
  const double t1 = fpga.time_ms(c);
  EXPECT_GT(e1, 0.0);
  EXPECT_GT(t1, 0.0);
  EXPECT_NEAR(fpga.energy_uj(c * 3), 3.0 * e1, 1e-12);
  EXPECT_NEAR(fpga.time_ms(c * 3), 3.0 * t1, 1e-12);
}

TEST(DeviceProfileTest, ZeroOpsCostNothing) {
  const OpCount none;
  EXPECT_DOUBLE_EQ(fpga_kintex7().energy_uj(none), 0.0);
  EXPECT_DOUBLE_EQ(embedded_cpu().time_ms(none), 0.0);
}

TEST(DeviceProfileTest, BitLevelKernelsAreFarCheaperThanFloat) {
  // This ratio is the mechanism behind the paper's §3 efficiency claims.
  const DeviceProfile& fpga = fpga_kintex7();
  EXPECT_GT(fpga.energy_uj(float_heavy()) / fpga.energy_uj(bit_heavy()), 50.0);
  EXPECT_GT(fpga.time_ms(float_heavy()) / fpga.time_ms(bit_heavy()), 50.0);
}

TEST(DeviceProfileTest, ProfilesAreDistinctAndNamed) {
  EXPECT_EQ(fpga_kintex7().name, "kintex7-fpga");
  EXPECT_EQ(embedded_cpu().name, "cortex-a53");
  // The embedded CPU is slower on the same float workload.
  EXPECT_GT(embedded_cpu().time_ms(float_heavy()), fpga_kintex7().time_ms(float_heavy()));
}

TEST(DeviceProfileTest, TrigAndExpDominatePerOpCosts) {
  const DeviceProfile& fpga = fpga_kintex7();
  EXPECT_GT(fpga.pj_float_trig, fpga.pj_float_mul);
  EXPECT_GT(fpga.pj_float_exp, fpga.pj_float_add);
  EXPECT_GT(fpga.ns_float_trig, fpga.ns_int_add);
}

TEST(DeviceProfileTest, EnergyDelayProduct) {
  const OpCount c = float_heavy();
  const DeviceProfile& fpga = fpga_kintex7();
  EXPECT_NEAR(fpga.energy_delay(c), fpga.energy_uj(c) * fpga.time_ms(c), 1e-12);
}

}  // namespace
}  // namespace reghd::perf
