// Tests for the MLP ("DNN") baseline.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/mlp.hpp"
#include "data/synthetic.hpp"
#include "util/metrics.hpp"
#include "util/random.hpp"

namespace reghd::baselines {
namespace {

TEST(MlpTest, LearnsNonlinearFunction) {
  // y = x₀² + sin(3x₁): impossible for a linear model, easy for a small MLP.
  util::Rng rng(1);
  data::Dataset train;
  data::Dataset test;
  for (int i = 0; i < 1500; ++i) {
    const double x0 = rng.uniform(-2.0, 2.0);
    const double x1 = rng.uniform(-2.0, 2.0);
    const double f[] = {x0, x1};
    const double y = x0 * x0 + std::sin(3.0 * x1);
    (i < 1200 ? train : test).add_sample(f, y);
  }
  MlpConfig cfg;
  cfg.hidden = {32, 16};
  cfg.max_epochs = 150;
  Mlp model(cfg);
  model.fit(train);
  const std::vector<double> pred = model.predict_batch(test);
  const double mse = util::mse(pred, test.targets());
  // Target variance is ≈ 2.3; the MLP must explain most of it.
  EXPECT_LT(mse, 0.25);
  EXPECT_GE(model.epochs_run(), 5u);
}

TEST(MlpTest, BeatsMeanPredictorOnFriedman) {
  const data::Dataset d = data::make_friedman1(1000, 3);
  util::Rng rng(3);
  const data::TrainTestSplit split = data::train_test_split(d, 0.25, rng);
  MlpConfig cfg;
  cfg.hidden = {64, 32};
  Mlp model(cfg);
  model.fit(split.train);
  const std::vector<double> pred = model.predict_batch(split.test);
  EXPECT_LT(util::mse(pred, split.test.targets()), 10.0);  // mean predictor ≈ 25
}

TEST(MlpTest, DeterministicForFixedSeed) {
  const data::Dataset d = data::make_friedman1(400, 5);
  MlpConfig cfg;
  cfg.hidden = {16};
  cfg.max_epochs = 20;
  Mlp m1(cfg);
  Mlp m2(cfg);
  m1.fit(d);
  m2.fit(d);
  EXPECT_DOUBLE_EQ(m1.predict(d.row(0)), m2.predict(d.row(0)));
}

TEST(MlpTest, ParameterCountMatchesTopology) {
  const data::Dataset d = data::make_friedman1(200, 7);
  MlpConfig cfg;
  cfg.hidden = {20, 10};
  cfg.max_epochs = 2;
  Mlp model(cfg);
  model.fit(d);
  // (10·20+20) + (20·10+10) + (10·1+1) = 220 + 210 + 11.
  EXPECT_EQ(model.parameter_count(), 441u);
}

TEST(MlpTest, EarlyStoppingBoundsEpochs) {
  const data::Dataset d = data::make_friedman1(500, 9);
  MlpConfig cfg;
  cfg.hidden = {8};
  cfg.max_epochs = 500;
  cfg.patience = 3;
  Mlp model(cfg);
  model.fit(d);
  EXPECT_LE(model.epochs_run(), 500u);
  EXPECT_GE(model.epochs_run(), 4u);
}

TEST(MlpTest, ConfigValidation) {
  MlpConfig cfg;
  cfg.hidden = {};
  EXPECT_THROW(Mlp{cfg}, std::invalid_argument);
  cfg = {};
  cfg.hidden = {0};
  EXPECT_THROW(Mlp{cfg}, std::invalid_argument);
  cfg = {};
  cfg.momentum = 1.0;
  EXPECT_THROW(Mlp{cfg}, std::invalid_argument);
  cfg = {};
  cfg.learning_rate = -0.1;
  EXPECT_THROW(Mlp{cfg}, std::invalid_argument);
}

TEST(MlpTest, ErrorsOnMisuse) {
  Mlp model;
  EXPECT_THROW((void)model.predict(std::vector<double>{1.0}), std::invalid_argument);
  data::Dataset tiny;
  const double f[] = {1.0};
  tiny.add_sample(f, 1.0);
  EXPECT_THROW(model.fit(tiny), std::invalid_argument);
}

TEST(MlpTest, NameIsDnn) { EXPECT_EQ(Mlp().name(), "DNN"); }

}  // namespace
}  // namespace reghd::baselines
