// Tests for feature/target standardization, including the no-leakage
// property (statistics come from the fit split only).
#include <gtest/gtest.h>

#include <cmath>

#include "data/scaler.hpp"
#include "data/synthetic.hpp"
#include "util/statistics.hpp"

namespace reghd::data {
namespace {

Dataset skewed_dataset() {
  Dataset d;
  d.set_name("skewed");
  for (int i = 0; i < 100; ++i) {
    const double f[] = {static_cast<double>(i) * 3.0 + 100.0, -0.5 * i, 7.0};
    d.add_sample(f, 50.0 + 2.0 * i);
  }
  return d;
}

TEST(StandardScalerTest, TransformedFeaturesHaveZeroMeanUnitVariance) {
  Dataset d = skewed_dataset();
  StandardScaler scaler;
  scaler.fit(d);
  scaler.transform(d);
  for (std::size_t k = 0; k < 2; ++k) {  // skip the constant third column
    std::vector<double> column;
    for (std::size_t i = 0; i < d.size(); ++i) {
      column.push_back(d.row(i)[k]);
    }
    EXPECT_NEAR(util::mean(column), 0.0, 1e-10);
    EXPECT_NEAR(util::stddev(column), 1.0, 1e-10);
  }
}

TEST(StandardScalerTest, ConstantFeatureMapsToZero) {
  Dataset d = skewed_dataset();
  StandardScaler scaler;
  scaler.fit(d);
  scaler.transform(d);
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_DOUBLE_EQ(d.row(i)[2], 0.0);
  }
}

TEST(StandardScalerTest, TransformRowMatchesBatchTransform) {
  Dataset d = skewed_dataset();
  StandardScaler scaler;
  scaler.fit(d);
  const std::vector<double> row0(d.row(0).begin(), d.row(0).end());
  const std::vector<double> scaled_row = scaler.transform_row(row0);
  scaler.transform(d);
  for (std::size_t k = 0; k < d.num_features(); ++k) {
    EXPECT_NEAR(scaled_row[k], d.row(0)[k], 1e-12);
  }
}

TEST(StandardScalerTest, NoLeakageFromUnseenData) {
  // Fitting on train only: statistics must not change when test data does.
  const Dataset train = skewed_dataset();
  StandardScaler s1;
  s1.fit(train);
  StandardScaler s2;
  s2.fit(train);
  // Transform two very different "test rows" — parameters are identical.
  ASSERT_EQ(s1.means().size(), s2.means().size());
  for (std::size_t k = 0; k < s1.means().size(); ++k) {
    EXPECT_DOUBLE_EQ(s1.means()[k], s2.means()[k]);
    EXPECT_DOUBLE_EQ(s1.stddevs()[k], s2.stddevs()[k]);
  }
}

TEST(StandardScalerTest, ErrorsOnMisuse) {
  StandardScaler scaler;
  Dataset d = skewed_dataset();
  EXPECT_THROW(scaler.transform(d), std::invalid_argument);  // unfitted
  scaler.fit(d);
  Dataset narrow;
  const double f[] = {1.0};
  narrow.add_sample(f, 2.0);
  EXPECT_THROW(scaler.transform(narrow), std::invalid_argument);  // width mismatch
  EXPECT_THROW((void)scaler.transform_row(std::vector<double>{1.0}), std::invalid_argument);
  Dataset empty;
  EXPECT_THROW(scaler.fit(empty), std::invalid_argument);
}

TEST(StandardScalerTest, SetParamsValidates) {
  StandardScaler scaler;
  EXPECT_THROW(scaler.set_params({1.0}, {0.0}), std::invalid_argument);   // zero stddev
  EXPECT_THROW(scaler.set_params({1.0}, {1.0, 2.0}), std::invalid_argument);
  scaler.set_params({1.0}, {2.0});
  const std::vector<double> out = scaler.transform_row(std::vector<double>{5.0});
  EXPECT_DOUBLE_EQ(out[0], 2.0);
}

TEST(TargetScalerTest, RoundTripIsExact) {
  Dataset d = skewed_dataset();
  TargetScaler scaler;
  scaler.fit(d);
  for (const double y : {0.0, 50.0, 123.456, -7.0}) {
    EXPECT_NEAR(scaler.inverse_value(scaler.transform_value(y)), y, 1e-10);
  }
}

TEST(TargetScalerTest, TransformedTargetsAreStandardized) {
  Dataset d = skewed_dataset();
  TargetScaler scaler;
  scaler.fit(d);
  scaler.transform(d);
  std::vector<double> t(d.targets().begin(), d.targets().end());
  EXPECT_NEAR(util::mean(t), 0.0, 1e-10);
  EXPECT_NEAR(util::stddev(t), 1.0, 1e-10);
}

TEST(TargetScalerTest, InverseVectorForm) {
  TargetScaler scaler;
  scaler.set_params(10.0, 2.0);
  const std::vector<double> scaled = {0.0, 1.0, -1.5};
  const std::vector<double> restored = scaler.inverse(scaled);
  EXPECT_DOUBLE_EQ(restored[0], 10.0);
  EXPECT_DOUBLE_EQ(restored[1], 12.0);
  EXPECT_DOUBLE_EQ(restored[2], 7.0);
}

TEST(TargetScalerTest, ErrorsOnMisuse) {
  TargetScaler scaler;
  EXPECT_THROW((void)scaler.transform_value(1.0), std::invalid_argument);
  EXPECT_THROW((void)scaler.inverse_value(1.0), std::invalid_argument);
  EXPECT_THROW(scaler.set_params(0.0, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace reghd::data
