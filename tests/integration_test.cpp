// End-to-end integration tests: every learner through the uniform Regressor
// interface on shared synthetic workloads, checking the cross-learner
// orderings the paper's Table 1 relies on.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "baselines/baseline_hd.hpp"
#include "baselines/decision_tree.hpp"
#include "baselines/knn.hpp"
#include "baselines/grid_search.hpp"
#include "baselines/linear.hpp"
#include "baselines/mlp.hpp"
#include "baselines/svr.hpp"
#include "core/pipeline.hpp"
#include "data/synthetic.hpp"
#include "util/metrics.hpp"
#include "util/random.hpp"

namespace reghd {
namespace {

std::map<std::string, double> run_all_learners(const data::Dataset& dataset,
                                               std::uint64_t seed) {
  util::Rng rng(seed);
  const data::TrainTestSplit split = data::train_test_split(dataset, 0.25, rng);

  std::vector<std::unique_ptr<model::Regressor>> learners;
  learners.push_back(std::make_unique<baselines::MeanPredictor>());
  learners.push_back(std::make_unique<baselines::LinearRegression>());
  {
    baselines::MlpConfig cfg;
    cfg.hidden = {64, 32};
    cfg.max_epochs = 80;
    learners.push_back(std::make_unique<baselines::Mlp>(cfg));
  }
  {
    baselines::DecisionTreeConfig cfg;
    cfg.max_depth = 8;
    learners.push_back(std::make_unique<baselines::DecisionTree>(cfg));
  }
  learners.push_back(std::make_unique<baselines::Svr>());
  learners.push_back(std::make_unique<baselines::KnnRegressor>());
  {
    baselines::BaselineHdConfig cfg;
    cfg.dim = 2048;
    cfg.bins = 16;
    learners.push_back(std::make_unique<baselines::BaselineHd>(cfg));
  }
  {
    core::PipelineConfig cfg;
    cfg.reghd.models = 8;
    cfg.reghd.dim = 2048;
    learners.push_back(std::make_unique<core::RegHDPipeline>(cfg));
  }

  std::map<std::string, double> mse_by_name;
  for (auto& learner : learners) {
    learner->fit(split.train);
    const std::vector<double> pred = learner->predict_batch(split.test);
    mse_by_name[learner->name()] = util::mse(pred, split.test.targets());
  }
  return mse_by_name;
}

TEST(IntegrationTest, EveryLearnerBeatsTheMeanOnFriedman) {
  const auto mse = run_all_learners(data::make_friedman1(1500, 42), 42);
  const double floor = mse.at("Mean");
  for (const auto& [name, value] : mse) {
    if (name == "Mean") {
      continue;
    }
    EXPECT_LT(value, floor) << name << " failed to beat the mean predictor";
  }
}

TEST(IntegrationTest, RegHDIsCompetitiveAndBeatsBaselineHd) {
  // The paper's Table 1 headline orderings: RegHD ≈ the strong baselines,
  // and far better than Baseline-HD's discretized regression.
  const auto mse = run_all_learners(data::make_friedman1(1500, 43), 43);
  EXPECT_LT(mse.at("RegHD-8"), mse.at("Baseline-HD"));
  EXPECT_LT(mse.at("RegHD-8"), 2.0 * mse.at("DNN"));
}

TEST(IntegrationTest, NonlinearLearnersBeatLinearOnMultimodalData) {
  const data::Dataset d = data::make_multimodal_task(1500, 4, 6, 44, 0.05);
  const auto mse = run_all_learners(d, 44);
  EXPECT_LT(mse.at("RegHD-8"), mse.at("LinearRegression"));
  EXPECT_LT(mse.at("DNN"), mse.at("LinearRegression"));
}

TEST(IntegrationTest, PaperDatasetGeneratorEndToEnd) {
  // One full Table-1-style column on the synthetic "boston": shapes hold —
  // everything beats the mean; RegHD beats Baseline-HD.
  const auto mse = run_all_learners(data::make_paper_dataset("boston", 45), 45);
  const double floor = mse.at("Mean");
  EXPECT_LT(mse.at("RegHD-8"), floor);
  EXPECT_LT(mse.at("DNN"), floor);
  EXPECT_LT(mse.at("RegHD-8"), mse.at("Baseline-HD"));
}

TEST(IntegrationTest, FullRunIsDeterministic) {
  const data::Dataset d = data::make_paper_dataset("diabetes", 46);
  const auto a = run_all_learners(d, 46);
  const auto b = run_all_learners(d, 46);
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [name, value] : a) {
    EXPECT_DOUBLE_EQ(value, b.at(name)) << name;
  }
}

TEST(IntegrationTest, MoreModelsHelpOnMultimodalData) {
  // Table 1's k-sweep shape on a strongly clustered task:
  // RegHD-8 ≪ RegHD-1.
  const data::Dataset d = data::make_multimodal_task(1500, 4, 8, 47, 0.05);
  util::Rng rng(47);
  const data::TrainTestSplit split = data::train_test_split(d, 0.25, rng);

  auto run_k = [&](std::size_t k) {
    core::PipelineConfig cfg;
    cfg.reghd.models = k;
    cfg.reghd.dim = 2048;
    core::RegHDPipeline pipeline(cfg);
    pipeline.fit(split.train);
    return pipeline.evaluate_mse(split.test);
  };
  const double mse1 = run_k(1);
  const double mse8 = run_k(8);
  EXPECT_LT(mse8, 0.7 * mse1);
}

}  // namespace
}  // namespace reghd
