// Fused single-query predict path (MultiModelRegressor::predict_one) vs the
// materializing predict(encode(features)) expression it claims to replay:
//
//  * bit-identity across the full cluster-mode × query-precision ×
//    model-precision matrix (fused modes replay the predict_batch
//    arithmetic; the rest must fall back to exactly the materializing
//    expression), at dims below and above the 1024-component fused block,
//    for both RFF projection storages;
//  * the fused_predict config knob forces the fallback, with no result
//    change;
//  * a stale packed bank (mutable state access) must not change results —
//    the quantized fused path rebuilds a per-call bank like predict_batch;
//  * concurrent predict_one calls equal the serial results (thread_local
//    scratch contract);
//  * encoders without block support fall back, bit-identically;
//  * OnlineRegHD::predict routes through the fused path with no behavior
//    change (fused vs non-fused twin streams agree exactly).
//
// The suite runs on whatever kernel backend is live; CI runs it under
// default dispatch, REGHD_KERNEL=scalar, and the NEON cross job, which
// covers the backend axis.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/encoded.hpp"
#include "core/multi_model.hpp"
#include "core/online.hpp"
#include "data/dataset.hpp"
#include "hdc/encoding.hpp"
#include "util/random.hpp"

namespace reghd::core {
namespace {

data::Dataset make_dataset(std::size_t rows, std::size_t features, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> flat(rows * features);
  std::vector<double> targets(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    double sum = 0.0;
    for (std::size_t f = 0; f < features; ++f) {
      const double x = rng.normal(0.0, 1.0);
      flat[i * features + f] = x;
      sum += x * (f % 2 == 0 ? 0.7 : -0.4);
    }
    targets[i] = std::tanh(sum);
  }
  return {"fused-predict", features, std::move(flat), std::move(targets)};
}

struct ModeCase {
  ClusterMode cluster;
  QueryPrecision query;
  ModelPrecision model;
};

std::string mode_name(const ::testing::TestParamInfo<ModeCase>& info) {
  std::string name = to_string(info.param.cluster) + "_" + to_string(info.param.query) +
                     "q_" + to_string(info.param.model) + "m";
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) {
      c = '_';
    }
  }
  return name;
}

std::vector<ModeCase> all_mode_cases() {
  std::vector<ModeCase> cases;
  for (const ClusterMode c : {ClusterMode::kFullPrecision, ClusterMode::kQuantized,
                              ClusterMode::kNaiveBinary}) {
    for (const QueryPrecision q : {QueryPrecision::kReal, QueryPrecision::kBinary}) {
      for (const ModelPrecision m : {ModelPrecision::kReal, ModelPrecision::kTernary,
                                     ModelPrecision::kBinary}) {
        cases.push_back({c, q, m});
      }
    }
  }
  return cases;
}

/// A trained regressor + its encoder + the raw feature rows, ready for
/// fused-vs-materializing comparisons.
struct Harness {
  RegHDConfig cfg;
  std::unique_ptr<hdc::Encoder> encoder;
  data::Dataset dataset;
  std::unique_ptr<MultiModelRegressor> model;
};

Harness make_harness(const ModeCase& mode, std::size_t dim,
                     hdc::ProjectionStorage storage, bool fused_predict) {
  Harness h;
  h.cfg.dim = dim;
  h.cfg.models = 4;
  h.cfg.cluster_mode = mode.cluster;
  h.cfg.query_precision = mode.query;
  h.cfg.model_precision = mode.model;
  h.cfg.fused_predict = fused_predict;

  hdc::EncoderConfig enc_cfg;
  enc_cfg.kind = hdc::EncoderKind::kRffProjection;
  enc_cfg.input_dim = 6;
  enc_cfg.dim = dim;
  enc_cfg.projection_storage = storage;
  h.encoder = hdc::make_encoder(enc_cfg);
  h.dataset = make_dataset(24, enc_cfg.input_dim, 0xF05ED + dim);
  const EncodedDataset enc = EncodedDataset::from(*h.encoder, h.dataset, 1);

  h.model = std::make_unique<MultiModelRegressor>(h.cfg);
  for (std::size_t i = 0; i < enc.size(); ++i) {
    h.model->train_step(enc.sample(i), enc.target(i));
  }
  h.model->requantize();
  return h;
}

class FusedPredictModeTest : public ::testing::TestWithParam<ModeCase> {};

TEST_P(FusedPredictModeTest, FusedBitIdenticalToMaterializingPredict) {
  // 200 < one fused block (single ragged call); 1100 > the 1024 block (one
  // full carried block + ragged tail). Neither is a multiple of 64, so the
  // packed planes have padding bits in play. Both projection storages: the
  // resident axpy slices and the rematerialized tile slices are distinct
  // encode_real_block code paths.
  for (const std::size_t dim : {static_cast<std::size_t>(200),
                                static_cast<std::size_t>(1100)}) {
    for (const hdc::ProjectionStorage storage :
         {hdc::ProjectionStorage::kResident, hdc::ProjectionStorage::kRematerialized}) {
      const Harness h = make_harness(GetParam(), dim, storage, true);
      for (std::size_t i = 0; i < h.dataset.size(); ++i) {
        const double want = h.model->predict(h.encoder->encode(h.dataset.row(i)));
        const double got = h.model->predict_one(*h.encoder, h.dataset.row(i));
        EXPECT_EQ(got, want) << "row " << i << " dim " << dim << " storage "
                             << hdc::to_string(storage);
      }
    }
  }
}

TEST_P(FusedPredictModeTest, FusedPredictFlagOffFallsBackBitIdentically) {
  const Harness h = make_harness(GetParam(), 200, hdc::ProjectionStorage::kResident,
                                 /*fused_predict=*/false);
  for (std::size_t i = 0; i < h.dataset.size(); ++i) {
    EXPECT_EQ(h.model->predict_one(*h.encoder, h.dataset.row(i)),
              h.model->predict(h.encoder->encode(h.dataset.row(i))))
        << "row " << i;
  }
}

TEST_P(FusedPredictModeTest, StalePackedBankDoesNotChangeResults) {
  // mutable_models() invalidates the packed bank; the quantized fused path
  // must then score through a per-call bank built from the same snapshots —
  // the exact fallback pattern predict_batch uses — with identical results.
  Harness h = make_harness(GetParam(), 1100, hdc::ProjectionStorage::kResident, true);
  std::vector<double> want(h.dataset.size());
  for (std::size_t i = 0; i < h.dataset.size(); ++i) {
    want[i] = h.model->predict_one(*h.encoder, h.dataset.row(i));
  }
  (void)h.model->mutable_models();  // snapshots untouched, bank invalidated
  ASSERT_FALSE(h.model->packed_bank().valid);
  for (std::size_t i = 0; i < h.dataset.size(); ++i) {
    EXPECT_EQ(h.model->predict_one(*h.encoder, h.dataset.row(i)), want[i])
        << "row " << i;
    EXPECT_EQ(h.model->predict_one(*h.encoder, h.dataset.row(i)),
              h.model->predict(h.encoder->encode(h.dataset.row(i))))
        << "row " << i;
  }
}

TEST_P(FusedPredictModeTest, ConcurrentCallsMatchSerialResults) {
  // predict_one is const with thread_local scratch: T concurrent callers
  // must reproduce the serial results exactly (T ∈ {1, 4} mirrors the
  // batch-path thread matrix).
  const Harness h = make_harness(GetParam(), 1100, hdc::ProjectionStorage::kResident,
                                 true);
  std::vector<double> want(h.dataset.size());
  for (std::size_t i = 0; i < h.dataset.size(); ++i) {
    want[i] = h.model->predict_one(*h.encoder, h.dataset.row(i));
  }
  for (const std::size_t threads : {static_cast<std::size_t>(1),
                                    static_cast<std::size_t>(4)}) {
    std::vector<std::vector<double>> got(threads,
                                         std::vector<double>(h.dataset.size()));
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        for (std::size_t i = 0; i < h.dataset.size(); ++i) {
          got[t][i] = h.model->predict_one(*h.encoder, h.dataset.row(i));
        }
      });
    }
    for (auto& w : workers) {
      w.join();
    }
    for (std::size_t t = 0; t < threads; ++t) {
      EXPECT_EQ(got[t], want) << "thread " << t << " of " << threads;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, FusedPredictModeTest,
                         ::testing::ValuesIn(all_mode_cases()), mode_name);

TEST(FusedPredictTest, BenchShapeSpotCheck) {
  // The benchmark configuration the ≥1.5× latency claim is measured at:
  // D = 4096, F = 10, rematerialized projection, real/real mode (the
  // RegHDConfig default precisions).
  RegHDConfig cfg;
  cfg.dim = 4096;
  cfg.models = 4;

  hdc::EncoderConfig enc_cfg;
  enc_cfg.kind = hdc::EncoderKind::kRffProjection;
  enc_cfg.input_dim = 10;
  enc_cfg.dim = cfg.dim;
  enc_cfg.projection_storage = hdc::ProjectionStorage::kRematerialized;
  const auto encoder = hdc::make_encoder(enc_cfg);
  const data::Dataset dataset = make_dataset(8, enc_cfg.input_dim, 0xBE7C);
  const EncodedDataset enc = EncodedDataset::from(*encoder, dataset, 1);

  MultiModelRegressor model(cfg);
  for (std::size_t i = 0; i < enc.size(); ++i) {
    model.train_step(enc.sample(i), enc.target(i));
  }
  model.requantize();
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    EXPECT_EQ(model.predict_one(*encoder, dataset.row(i)),
              model.predict(encoder->encode(dataset.row(i))))
        << "row " << i;
  }
}

TEST(FusedPredictTest, NonBlockEncoderFallsBackBitIdentically) {
  // The nonlinear encoder has no block support: predict_one must detect
  // that and evaluate the materializing expression verbatim.
  RegHDConfig cfg;
  cfg.dim = 256;
  cfg.models = 4;

  hdc::EncoderConfig enc_cfg;
  enc_cfg.kind = hdc::EncoderKind::kNonlinearFeature;
  enc_cfg.input_dim = 6;
  enc_cfg.dim = cfg.dim;
  const auto encoder = hdc::make_encoder(enc_cfg);
  ASSERT_FALSE(encoder->supports_block_encode());
  const data::Dataset dataset = make_dataset(16, enc_cfg.input_dim, 0xFA11);
  const EncodedDataset enc = EncodedDataset::from(*encoder, dataset, 1);

  MultiModelRegressor model(cfg);
  for (std::size_t i = 0; i < enc.size(); ++i) {
    model.train_step(enc.sample(i), enc.target(i));
  }
  model.requantize();
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    EXPECT_EQ(model.predict_one(*encoder, dataset.row(i)),
              model.predict(encoder->encode(dataset.row(i))))
        << "row " << i;
  }
}

TEST(FusedPredictTest, RffEncodeRealBlockMatchesFullEncodeSlices) {
  // The encoder-level contract underneath the fused path: any block split of
  // encode_real_block equals the same slice of the full encoding, for both
  // projection storages.
  for (const hdc::ProjectionStorage storage :
       {hdc::ProjectionStorage::kResident, hdc::ProjectionStorage::kRematerialized}) {
    hdc::EncoderConfig enc_cfg;
    enc_cfg.kind = hdc::EncoderKind::kRffProjection;
    enc_cfg.input_dim = 7;
    enc_cfg.dim = 1100;
    enc_cfg.projection_storage = storage;
    const auto encoder = hdc::make_encoder(enc_cfg);
    ASSERT_TRUE(encoder->supports_block_encode());

    util::Rng rng(0xB10C);
    std::vector<double> features(enc_cfg.input_dim);
    for (double& x : features) {
      x = rng.normal(0.0, 1.0);
    }
    const hdc::RealHV full = encoder->encode_real(features);

    for (const std::size_t block : {static_cast<std::size_t>(64),
                                    static_cast<std::size_t>(1024),
                                    static_cast<std::size_t>(1100)}) {
      std::vector<double> out(block);
      for (std::size_t j0 = 0; j0 < enc_cfg.dim; j0 += block) {
        const std::size_t len = std::min(block, enc_cfg.dim - j0);
        encoder->encode_real_block(features, j0, len, out.data());
        for (std::size_t j = 0; j < len; ++j) {
          ASSERT_EQ(out[j], full[j0 + j])
              << hdc::to_string(storage) << " block " << block << " j "
              << j0 + j;
        }
      }
    }
  }
}

TEST(FusedPredictTest, OnlinePredictRoutesThroughFusedPathUnchanged) {
  // Twin streams — identical configs except the fused_predict knob — fed the
  // same readings must predict identically at every step, through warmup,
  // cold start, and trained operation. Exercises the standardize → fused
  // wiring in OnlineRegHD::predict.
  for (const bool adaptive : {true, false}) {
    OnlineConfig fused_cfg;
    fused_cfg.reghd.dim = 1100;
    fused_cfg.reghd.models = 4;
    fused_cfg.reghd.cluster_mode = ClusterMode::kQuantized;
    fused_cfg.reghd.query_precision = QueryPrecision::kBinary;
    fused_cfg.reghd.model_precision = ModelPrecision::kBinary;
    fused_cfg.reghd.fused_predict = true;
    fused_cfg.adaptive_scaling = adaptive;
    fused_cfg.warmup = 4;
    OnlineConfig plain_cfg = fused_cfg;
    plain_cfg.reghd.fused_predict = false;

    constexpr std::size_t kFeatures = 6;
    OnlineRegHD fused(fused_cfg, kFeatures);
    OnlineRegHD plain(plain_cfg, kFeatures);

    const data::Dataset dataset = make_dataset(40, kFeatures, 0x0A71);
    for (std::size_t i = 0; i < dataset.size(); ++i) {
      EXPECT_EQ(fused.predict(dataset.row(i)), plain.predict(dataset.row(i)))
          << "pre-update reading " << i << " adaptive " << adaptive;
      const double yf = fused.update(dataset.row(i), dataset.target(i));
      const double yp = plain.update(dataset.row(i), dataset.target(i));
      EXPECT_EQ(yf, yp) << "update reading " << i << " adaptive " << adaptive;
    }
  }
}

}  // namespace
}  // namespace reghd::core
