// Tests for the HD classifier.
#include <gtest/gtest.h>

#include <array>
#include <memory>

#include "core/hd_classifier.hpp"
#include "data/scaler.hpp"
#include "hdc/encoding.hpp"
#include "util/random.hpp"

namespace reghd::core {
namespace {

/// Labelled Gaussian blobs on separated lattice centers.
struct Task {
  EncodedDataset train;
  std::vector<std::size_t> train_labels;
  EncodedDataset val;
  std::vector<std::size_t> val_labels;
  EncodedDataset test;
  std::vector<std::size_t> test_labels;
  std::unique_ptr<hdc::Encoder> encoder;
};

Task make_task(std::size_t classes, double spread, std::uint64_t seed,
               std::size_t dim = 1024) {
  constexpr std::size_t kFeatures = 3;
  util::Rng rng(seed);

  data::Dataset raw;
  std::vector<std::size_t> labels;
  std::vector<double> x(kFeatures);
  for (std::size_t i = 0; i < 900; ++i) {
    const auto c = static_cast<std::size_t>(rng.uniform_index(classes));
    for (std::size_t k = 0; k < kFeatures; ++k) {
      const double center = (c & (1u << k)) ? 2.0 : -2.0;
      x[k] = center + rng.normal(0.0, spread);
    }
    raw.add_sample(x, 0.0);
    labels.push_back(c);
  }
  data::StandardScaler scaler;
  scaler.fit(raw);
  scaler.transform(raw);

  hdc::EncoderConfig cfg;
  cfg.input_dim = kFeatures;
  cfg.dim = dim;
  cfg.seed = seed;
  Task task;
  task.encoder = hdc::make_encoder(cfg);

  for (std::size_t i = 0; i < raw.size(); ++i) {
    const hdc::EncodedSample s = task.encoder->encode(raw.row(i));
    if (i % 5 == 0) {
      task.test.add(s, 0.0);
      task.test_labels.push_back(labels[i]);
    } else if (i % 5 == 1) {
      task.val.add(s, 0.0);
      task.val_labels.push_back(labels[i]);
    } else {
      task.train.add(s, 0.0);
      task.train_labels.push_back(labels[i]);
    }
  }
  return task;
}

HdClassifierConfig config_for(std::size_t classes, std::size_t dim = 1024) {
  HdClassifierConfig cfg;
  cfg.dim = dim;
  cfg.classes = classes;
  return cfg;
}

TEST(HdClassifierTest, SeparatedBlobsClassifiedAccurately) {
  Task task = make_task(4, 0.5, 7);
  HdClassifier clf(config_for(4));
  const HdClassifierReport report =
      clf.fit(task.train, task.train_labels, task.val, task.val_labels);
  EXPECT_GT(report.best_val_accuracy, 0.95);
  EXPECT_GT(clf.accuracy(task.test, task.test_labels), 0.95);
}

TEST(HdClassifierTest, QuantizedInferenceStaysAccurate) {
  Task task = make_task(4, 0.5, 11);
  auto cfg = config_for(4);
  cfg.quantized = true;
  HdClassifier clf(cfg);
  clf.fit(task.train, task.train_labels, task.val, task.val_labels);
  EXPECT_GT(clf.accuracy(task.test, task.test_labels), 0.9);
}

TEST(HdClassifierTest, IterativeRefinementBeatsSinglePassOnHardTask) {
  // Overlapping blobs: the perceptron passes must improve on the bundled
  // initialization (Fig. 3a's iterative-learning claim, classification side).
  Task task = make_task(8, 1.5, 13);
  auto cfg = config_for(8);
  cfg.max_epochs = 15;
  HdClassifier clf(cfg);
  const HdClassifierReport report =
      clf.fit(task.train, task.train_labels, task.val, task.val_labels);
  ASSERT_GE(report.val_accuracy_history.size(), 2u);
  EXPECT_GE(report.best_val_accuracy, report.val_accuracy_history.front());
  EXPECT_GE(report.epochs_run, 2u);
}

TEST(HdClassifierTest, ScoresAreBoundedAndArgmaxMatchesPredict) {
  Task task = make_task(4, 0.5, 17);
  HdClassifier clf(config_for(4));
  clf.fit(task.train, task.train_labels, task.val, task.val_labels);
  const auto s = clf.scores(task.test.sample(0));
  ASSERT_EQ(s.size(), 4u);
  for (const double v : s) {
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
  }
  EXPECT_EQ(clf.predict(task.test.sample(0)),
            static_cast<std::size_t>(
                std::distance(s.begin(), std::max_element(s.begin(), s.end()))));
}

TEST(HdClassifierTest, DeterministicForFixedInputs) {
  Task task = make_task(3, 0.6, 19);
  HdClassifier a(config_for(3));
  HdClassifier b(config_for(3));
  a.fit(task.train, task.train_labels, task.val, task.val_labels);
  b.fit(task.train, task.train_labels, task.val, task.val_labels);
  for (std::size_t i = 0; i < task.test.size(); ++i) {
    EXPECT_EQ(a.predict(task.test.sample(i)), b.predict(task.test.sample(i)));
  }
}

TEST(HdClassifierTest, ValidatesConfigurationAndInput) {
  auto cfg = config_for(1);
  EXPECT_THROW(HdClassifier{cfg}, std::invalid_argument);
  cfg = config_for(2);
  cfg.dim = 8;
  EXPECT_THROW(HdClassifier{cfg}, std::invalid_argument);

  Task task = make_task(2, 0.5, 23);
  HdClassifier clf(config_for(2));
  // Out-of-range label.
  std::vector<std::size_t> bad_labels = task.train_labels;
  bad_labels[0] = 99;
  EXPECT_THROW((void)clf.fit(task.train, bad_labels, task.val, task.val_labels),
               std::invalid_argument);
  // Label-count mismatch.
  std::vector<std::size_t> short_labels(task.train.size() - 1, 0);
  EXPECT_THROW((void)clf.fit(task.train, short_labels, task.val, task.val_labels),
               std::invalid_argument);
  // Empty validation set.
  EXPECT_THROW(
      (void)clf.fit(task.train, task.train_labels, EncodedDataset{}, {}),
      std::invalid_argument);
}

}  // namespace
}  // namespace reghd::core
