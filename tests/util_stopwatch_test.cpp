// Tests for the wall-clock stopwatch.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "util/stopwatch.hpp"

namespace reghd::util {
namespace {

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double ms = watch.elapsed_milliseconds();
  EXPECT_GE(ms, 18.0);   // scheduler slack downward is impossible, allow jitter
  EXPECT_LT(ms, 2000.0);  // sanity upper bound
}

TEST(StopwatchTest, UnitsAreConsistent) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double s = watch.elapsed_seconds();
  const double ms = watch.elapsed_milliseconds();
  const double us = watch.elapsed_microseconds();
  EXPECT_NEAR(ms, s * 1e3, s * 1e3 * 0.5 + 1.0);
  EXPECT_NEAR(us, s * 1e6, s * 1e6 * 0.5 + 1000.0);
}

TEST(StopwatchTest, RestartResetsOrigin) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  watch.restart();
  EXPECT_LT(watch.elapsed_milliseconds(), 15.0);
}

TEST(StopwatchTest, MonotoneNonDecreasing) {
  Stopwatch watch;
  double prev = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double now = watch.elapsed_microseconds();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

}  // namespace
}  // namespace reghd::util
