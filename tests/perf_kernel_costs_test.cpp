// Tests for the analytic kernel cost formulas: hand-counted values, scaling
// laws, and the qualitative orderings the paper's efficiency results rest on.
#include <gtest/gtest.h>

#include "perf/device_profile.hpp"
#include "perf/kernel_costs.hpp"

namespace reghd::perf {
namespace {

TEST(PrimitiveCostTest, HammingCountsWords) {
  const OpCount c = cost_hamming(4096);
  EXPECT_EQ(c.xor_word, 64u);       // 4096/64
  EXPECT_EQ(c.popcount_word, 64u);
  EXPECT_EQ(c.int_add, 64u);
  EXPECT_EQ(c.float_mul, 1u);       // similarity rescale
  const OpCount odd = cost_hamming(100);
  EXPECT_EQ(odd.xor_word, 2u);      // ⌈100/64⌉
}

TEST(PrimitiveCostTest, CosineVsHammingGap) {
  // §3.1: the Hamming path eliminates D multiplies; it must be dramatically
  // cheaper on the FPGA profile.
  const DeviceProfile& fpga = fpga_kintex7();
  const double cosine_t = fpga.time_ms(cost_cosine_real(4096));
  const double hamming_t = fpga.time_ms(cost_hamming(4096));
  EXPECT_GT(cosine_t / hamming_t, 20.0);
}

TEST(PrimitiveCostTest, DotKernelsOrderedByPrecision) {
  const DeviceProfile& fpga = fpga_kintex7();
  const double full = fpga.time_ms(cost_dot_real_real(4096));
  const double bin_query = fpga.time_ms(cost_dot_real_binary(4096));
  const double bin_bin = fpga.time_ms(cost_dot_binary_binary(4096));
  EXPECT_GT(full, bin_query);   // multiply-free beats full precision
  EXPECT_GT(bin_query, bin_bin);  // popcount beats element accumulation
}

TEST(PrimitiveCostTest, AccumulatorUpdatePrecisions) {
  const OpCount real = cost_accumulator_update(1024, Precision::kReal);
  const OpCount binary = cost_accumulator_update(1024, Precision::kBinary);
  EXPECT_EQ(real.float_mul, 1024u);
  EXPECT_EQ(binary.float_mul, 0u);  // ±c adds only
  EXPECT_EQ(binary.float_add, 1024u);
}

TEST(PrimitiveCostTest, SoftmaxAndBinarizeShapes) {
  const OpCount sm = cost_softmax(8);
  EXPECT_EQ(sm.float_exp, 8u);
  EXPECT_EQ(sm.float_div, 8u);
  const OpCount bz = cost_binarize(4096);
  EXPECT_EQ(bz.int_cmp, 4096u);
  EXPECT_EQ(bz.mem_write_word, 64u);
}

TEST(EncoderCostTest, RffDominatedByProjection) {
  const OpCount c = cost_encode_rff(10, 4096);
  EXPECT_EQ(c.float_mul, 10u * 4096u + 4096u);
  EXPECT_EQ(c.float_trig, 2u * 4096u);
  // The factored Eq. 1 encoder needs only 2n trig calls.
  const OpCount nl = cost_encode_nonlinear(10, 4096);
  EXPECT_EQ(nl.float_trig, 20u);
  EXPECT_LT(nl.float_mul, c.float_mul);
}

TEST(RegHDCompositeTest, InferenceScalesLinearlyInModels) {
  RegHDKernelShape shape;
  shape.dim = 2048;
  shape.features = 10;
  shape.models = 2;
  const OpCount k2 = reghd_infer_sample(shape);
  shape.models = 8;
  const OpCount k8 = reghd_infer_sample(shape);
  shape.models = 32;
  const OpCount k32 = reghd_infer_sample(shape);

  const OpCount encode = reghd_encode_sample(shape);
  // Subtract the k-independent encoder; the remainder must scale ~k.
  const DeviceProfile& fpga = fpga_kintex7();
  const double t2 = fpga.time_ms(k2) - fpga.time_ms(encode);
  const double t8 = fpga.time_ms(k8) - fpga.time_ms(encode);
  const double t32 = fpga.time_ms(k32) - fpga.time_ms(encode);
  EXPECT_NEAR(t8 / t2, 4.0, 0.2);
  EXPECT_NEAR(t32 / t8, 4.0, 0.2);
}

TEST(RegHDCompositeTest, QuantizedClusterIsCheaperToTrain) {
  // Paper-standard hardware shape: Eq. 1 encoder, binary query (Fig. 9's
  // training comparison) — there the cosine search is the dominant cost the
  // quantization removes.
  RegHDKernelShape full;
  full.models = 8;
  full.rff_encoder = false;
  full.query = Precision::kBinary;
  RegHDKernelShape quant = full;
  quant.quantized_cluster = true;
  const DeviceProfile& fpga = fpga_kintex7();
  const double t_full = fpga.time_ms(reghd_train_epoch(full, 1000));
  const double t_quant = fpga.time_ms(reghd_train_epoch(quant, 1000));
  EXPECT_GT(t_full / t_quant, 1.2);  // Fig. 9's ~1.9× lives here
  const double e_full = fpga.energy_uj(reghd_train_epoch(full, 1000));
  const double e_quant = fpga.energy_uj(reghd_train_epoch(quant, 1000));
  EXPECT_GT(e_full / e_quant, 1.2);
}

TEST(RegHDCompositeTest, BinaryQueryBinaryModelIsCheapestInference) {
  RegHDKernelShape full;
  full.models = 8;
  full.quantized_cluster = true;
  RegHDKernelShape bq_im = full;
  bq_im.query = Precision::kBinary;
  RegHDKernelShape bq_bm = bq_im;
  bq_bm.model = Precision::kBinary;

  const DeviceProfile& fpga = fpga_kintex7();
  const double t_full = fpga.time_ms(reghd_infer_sample(full));
  const double t_bq = fpga.time_ms(reghd_infer_sample(bq_im));
  const double t_bb = fpga.time_ms(reghd_infer_sample(bq_bm));
  EXPECT_GT(t_full, t_bq);
  EXPECT_GT(t_bq, t_bb);
}

TEST(RegHDCompositeTest, TrainTotalIsEpochsTimesEpoch) {
  RegHDKernelShape shape;
  const OpCount epoch = reghd_train_epoch(shape, 500);
  EXPECT_EQ(reghd_train_total(shape, 500, 7), epoch * 7);
}

TEST(RegHDCompositeTest, RequantizeCostsAppearOnlyWhenEnabled) {
  RegHDKernelShape shape;
  shape.models = 4;
  const OpCount plain = reghd_train_epoch(shape, 100);
  shape.quantized_cluster = true;
  const OpCount with_cluster_quant = reghd_train_epoch(shape, 100);
  EXPECT_GT(with_cluster_quant.int_cmp, plain.int_cmp);
  shape.model = Precision::kBinary;
  const OpCount with_model_quant = reghd_train_epoch(shape, 100);
  EXPECT_GT(with_model_quant.int_cmp, with_cluster_quant.int_cmp);
}

TEST(MlpCostTest, ForwardPassHandCount) {
  MlpKernelShape shape;
  shape.inputs = 10;
  shape.hidden1 = 20;
  shape.hidden2 = 5;
  const OpCount fwd = mlp_infer_sample(shape);
  EXPECT_EQ(fwd.float_mul, 10u * 20u + 20u * 5u + 5u * 1u);
}

TEST(MlpCostTest, TrainingIsSeveralTimesForward) {
  MlpKernelShape shape;
  const DeviceProfile& fpga = fpga_kintex7();
  const double fwd = fpga.time_ms(mlp_infer_sample(shape));
  const double train = fpga.time_ms(mlp_train_sample(shape));
  EXPECT_GT(train / fwd, 2.5);
  EXPECT_LT(train / fwd, 6.0);
}

TEST(FigureEightShapeTest, RegHDTrainsFasterThanDnnEndToEnd) {
  // The Fig. 8 headline (≈5.6× training speedup) combines a cheaper
  // per-iteration step with far fewer iterations to convergence. With
  // representative epoch counts (RegHD ≈ 20, DNN ≈ 100+) the end-to-end
  // FPGA-profile ratio must be a healthy multiple.
  RegHDKernelShape reghd;
  reghd.dim = 4096;
  reghd.models = 8;
  reghd.features = 10;
  reghd.quantized_cluster = true;
  reghd.query = Precision::kBinary;
  reghd.rff_encoder = false;
  MlpKernelShape dnn;
  dnn.inputs = 10;
  dnn.hidden1 = 128;
  dnn.hidden2 = 64;

  constexpr std::size_t kSamples = 1000;
  const DeviceProfile& fpga = fpga_kintex7();
  const double t_reghd = fpga.time_ms(reghd_train_total(reghd, kSamples, 20));
  const double t_dnn = fpga.time_ms(mlp_train_total(dnn, kSamples, 100));
  EXPECT_GT(t_dnn / t_reghd, 2.0);
  const double e_reghd = fpga.energy_uj(reghd_train_total(reghd, kSamples, 20));
  const double e_dnn = fpga.energy_uj(mlp_train_total(dnn, kSamples, 100));
  EXPECT_GT(e_dnn / e_reghd, 2.0);
}

TEST(BaselineHdCostTest, ScalesWithBinCount) {
  const OpCount few = baseline_hd_infer_sample(10, 4096, 8);
  const OpCount many = baseline_hd_infer_sample(10, 4096, 256);
  EXPECT_GT(many.float_mul, few.float_mul);
  const DeviceProfile& fpga = fpga_kintex7();
  // Baseline-HD with the hundreds of bins it needs costs more than RegHD-8
  // inference — the paper's §5 inefficiency argument.
  RegHDKernelShape reghd;
  reghd.dim = 4096;
  reghd.models = 8;
  reghd.features = 10;
  EXPECT_GT(fpga.time_ms(many), fpga.time_ms(reghd_infer_sample(reghd)));
}

}  // namespace
}  // namespace reghd::perf
