// Concurrency tests for the telemetry shards under real thread-pool load:
// many concurrent run_blocks callers recording counters and histogram
// observations from every participating thread, with snapshots taken while
// recording is in flight. Designed to run under ThreadSanitizer — the shard
// slots are relaxed atomics and the merge takes no hot-path locks, so any
// data race here is a telemetry design bug.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/telemetry.hpp"
#include "util/parallel.hpp"
#include "util/thread_pool.hpp"

namespace reghd::obs {
namespace {

#ifndef REGHD_NO_TELEMETRY

class TelemetryConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reset();
    set_enabled(true);
  }
  void TearDown() override {
    set_enabled(false);
    reset();
  }
};

TEST_F(TelemetryConcurrencyTest, PoolBlocksRecordFromEveryWorkerWithoutLoss) {
  constexpr std::size_t kJobs = 50;
  constexpr std::size_t kBlocks = 64;
  util::ThreadPool& pool = util::ThreadPool::global();
  for (std::size_t j = 0; j < kJobs; ++j) {
    pool.run_blocks(kBlocks, [](std::size_t) {
      count(Counter::kClusterUpdates);
      observe_ns(Histo::kTrainStepNs, 100);
      count_cluster_hit(1);
    });
  }
  const TelemetrySnapshot snap = snapshot();
  EXPECT_EQ(snap.counter(Counter::kClusterUpdates), kJobs * kBlocks);
  EXPECT_EQ(snap.histogram(Histo::kTrainStepNs).count, kJobs * kBlocks);
  EXPECT_EQ(snap.cluster_hits[1], kJobs * kBlocks);
  // The pool's own instrumentation saw every job and block too.
  EXPECT_EQ(snap.counter(Counter::kPoolJobs) + snap.counter(Counter::kPoolInlineJobs),
            kJobs);
  EXPECT_EQ(snap.counter(Counter::kPoolBlocks), kJobs * kBlocks);
  if (pool.thread_count() > 1) {
    EXPECT_GT(snap.histogram(Histo::kPoolJobNs).count, 0u);
  }
}

TEST_F(TelemetryConcurrencyTest, ConcurrentCallersAndSnapshotsNeverTear) {
  // Raw std::thread callers racing through the (serializing) pool while a
  // reader thread takes snapshots mid-flight. Snapshot totals may lag the
  // in-flight increments but must never tear, double-count, or go backwards.
  constexpr std::size_t kCallers = 4;
  constexpr std::size_t kJobsPerCaller = 25;
  constexpr std::size_t kBlocks = 32;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> last_seen{0};

  std::thread reader([&] {
    std::uint64_t prev = 0;
    while (!done.load(std::memory_order_acquire)) {
      const TelemetrySnapshot snap = snapshot();
      const std::uint64_t now = snap.counter(Counter::kOnlineUpdates);
      EXPECT_GE(now, prev) << "snapshot went backwards";
      EXPECT_LE(now, kCallers * kJobsPerCaller * kBlocks) << "snapshot overcounted";
      prev = now;
      std::this_thread::yield();
    }
    last_seen.store(prev, std::memory_order_release);
  });

  std::vector<std::thread> callers;
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&] {
      for (std::size_t j = 0; j < kJobsPerCaller; ++j) {
        util::ThreadPool::global().run_blocks(kBlocks, [](std::size_t b) {
          count(Counter::kOnlineUpdates);
          observe_ns(Histo::kOnlineUpdateNs, 1 + b);
        });
      }
    });
  }
  for (auto& t : callers) {
    t.join();
  }
  done.store(true, std::memory_order_release);
  reader.join();

  const TelemetrySnapshot snap = snapshot();
  EXPECT_EQ(snap.counter(Counter::kOnlineUpdates), kCallers * kJobsPerCaller * kBlocks);
  EXPECT_EQ(snap.histogram(Histo::kOnlineUpdateNs).count,
            kCallers * kJobsPerCaller * kBlocks);
  EXPECT_LE(last_seen.load(), kCallers * kJobsPerCaller * kBlocks);
}

TEST_F(TelemetryConcurrencyTest, ParallelForWorkBodiesMayRecordAndToggle) {
  // parallel_for is the library's real dispatch surface; bodies record while
  // another thread flips the enable switch — recording must stay race-free
  // whichever state each body observes (totals are then <= the maximum).
  constexpr std::size_t kItems = 20000;
  std::thread toggler([] {
    for (int i = 0; i < 200; ++i) {
      set_enabled(i % 2 == 0);
      std::this_thread::yield();
    }
    set_enabled(true);
  });
  util::parallel_for(kItems, [](std::size_t) {
    count(Counter::kEncodeRows);
    observe_ns(Histo::kEncodeRowNs, 64);
  });
  toggler.join();
  // Each record call gates on the flag independently, so the two totals can
  // differ by in-flight toggles — but neither can exceed the item count.
  const TelemetrySnapshot snap = snapshot();
  EXPECT_LE(snap.counter(Counter::kEncodeRows), kItems);
  EXPECT_LE(snap.histogram(Histo::kEncodeRowNs).count, kItems);
}

#endif  // REGHD_NO_TELEMETRY

}  // namespace
}  // namespace reghd::obs
