// Tests for the cycle-approximate accelerator datapath model.
#include <gtest/gtest.h>

#include "perf/device_profile.hpp"
#include "sim/accelerator.hpp"

namespace reghd::sim {
namespace {

perf::RegHDKernelShape paper_shape() {
  perf::RegHDKernelShape shape;
  shape.dim = 4096;
  shape.models = 8;
  shape.features = 10;
  shape.rff_encoder = false;  // the paper's Eq. 1 hardware encoder
  return shape;
}

TEST(AcceleratorModelTest, StagesArePositiveAndUpdateOnlyWhenTraining) {
  const AcceleratorModel model(paper_shape(), AccelResources{});
  const StageCycles train = model.train_sample_cycles();
  const StageCycles infer = model.infer_sample_cycles();
  EXPECT_GT(train.encode, 0u);
  EXPECT_GT(train.search, 0u);
  EXPECT_GT(train.predict, 0u);
  EXPECT_GT(train.update, 0u);
  EXPECT_EQ(infer.update, 0u);
  EXPECT_EQ(infer.encode, train.encode);
  EXPECT_EQ(infer.search, train.search);
}

TEST(AcceleratorModelTest, InitiationIntervalIsSlowestStage) {
  const AcceleratorModel model(paper_shape(), AccelResources{});
  const StageCycles c = model.train_sample_cycles();
  const std::size_t ii = c.initiation_interval();
  EXPECT_GE(ii, c.encode);
  EXPECT_GE(ii, c.search);
  EXPECT_GE(ii, c.confidence);
  EXPECT_GE(ii, c.predict);
  EXPECT_GE(ii, c.update);
  EXPECT_LE(ii, c.total());
  EXPECT_FALSE(c.bottleneck().empty());
}

TEST(AcceleratorModelTest, QuantizedClusteringRelievesTheSearchStage) {
  // §3.1's entire point: the cosine search occupies the DSP array; the
  // Hamming search runs in the popcount tree — a large cycle reduction.
  auto shape = paper_shape();
  const AcceleratorModel full(shape, AccelResources{});
  shape.quantized_cluster = true;
  const AcceleratorModel quant(shape, AccelResources{});
  EXPECT_GT(full.train_sample_cycles().search,
            4 * quant.train_sample_cycles().search);
}

TEST(AcceleratorModelTest, BinaryQueryEmptiesTheMacArrayFromUpdates) {
  auto shape = paper_shape();
  shape.quantized_cluster = true;
  const AcceleratorModel real_query(shape, AccelResources{});
  shape.query = perf::Precision::kBinary;
  const AcceleratorModel binary_query(shape, AccelResources{});
  // Updates move from 128 MAC units to 512 add lanes: ≥ ~4× fewer cycles.
  EXPECT_GT(real_query.train_sample_cycles().update,
            2 * binary_query.train_sample_cycles().update);
}

TEST(AcceleratorModelTest, ThroughputScalesWithTheBottleneckResource) {
  // The full-precision configuration is MAC-bound; doubling the MAC array
  // should roughly double training throughput.
  AccelResources small;
  AccelResources big = small;
  big.mac_units *= 2;
  const AcceleratorModel slow(paper_shape(), small);
  const AcceleratorModel fast(paper_shape(), big);
  const double ratio = fast.throughput_samples_per_sec(true) /
                       slow.throughput_samples_per_sec(true);
  EXPECT_GT(ratio, 1.6);
  EXPECT_LT(ratio, 2.4);
}

TEST(AcceleratorModelTest, ClockScalesTimeLinearly) {
  AccelResources base;
  AccelResources faster = base;
  faster.clock_mhz = 2.0 * base.clock_mhz;
  const AcceleratorModel a(paper_shape(), base);
  const AcceleratorModel b(paper_shape(), faster);
  EXPECT_NEAR(a.latency_us(true) / b.latency_us(true), 2.0, 1e-9);
  EXPECT_NEAR(b.throughput_samples_per_sec(false) / a.throughput_samples_per_sec(false),
              2.0, 1e-9);
}

TEST(AcceleratorModelTest, CyclesGrowWithModelCountAndDimension) {
  auto shape = paper_shape();
  const AcceleratorModel k8(shape, AccelResources{});
  shape.models = 32;
  const AcceleratorModel k32(shape, AccelResources{});
  EXPECT_GT(k32.train_sample_cycles().total(), k8.train_sample_cycles().total());

  shape.models = 8;
  shape.dim = 1024;
  const AcceleratorModel d1k(shape, AccelResources{});
  EXPECT_LT(d1k.train_sample_cycles().total(), k8.train_sample_cycles().total());
}

TEST(AcceleratorModelTest, TrainingTimeAccountsForPipelining) {
  const AcceleratorModel model(paper_shape(), AccelResources{});
  const StageCycles c = model.train_sample_cycles();
  const double t = model.training_time_ms(1000, 10);
  // Pipelined time must be far below the sequential sum of latencies...
  const double sequential_ms =
      10.0 * 1000.0 * static_cast<double>(c.total()) / (200.0 * 1e3);
  EXPECT_LT(t, sequential_ms);
  // ...but at least samples × II.
  const double floor_ms =
      10.0 * 1000.0 * static_cast<double>(c.initiation_interval()) / (200.0 * 1e3);
  EXPECT_GE(t, floor_ms);
}

TEST(AcceleratorModelTest, AgreesWithOpCountModelOnQuantizationOrdering) {
  // The two efficiency substrates (stage-cycle and op-count) must agree on
  // every §3 claim's direction for the paper shapes.
  auto full = paper_shape();
  auto quant = full;
  quant.quantized_cluster = true;
  auto bqbm = quant;
  bqbm.query = perf::Precision::kBinary;
  bqbm.model = perf::Precision::kBinary;

  const perf::DeviceProfile& fpga = perf::fpga_kintex7();
  const auto op_time = [&](const perf::RegHDKernelShape& s) {
    return fpga.time_ms(perf::reghd_train_sample(s));
  };
  const auto cycle_time = [&](const perf::RegHDKernelShape& s) {
    return AcceleratorModel(s, AccelResources{}).latency_us(true);
  };
  EXPECT_GT(op_time(full), op_time(quant));
  EXPECT_GT(cycle_time(full), cycle_time(quant));
  EXPECT_GT(op_time(quant), op_time(bqbm));
  EXPECT_GT(cycle_time(quant), cycle_time(bqbm));
}

TEST(AcceleratorModelTest, ValidatesInputs) {
  AccelResources bad;
  bad.clock_mhz = 0.0;
  EXPECT_THROW(AcceleratorModel(paper_shape(), bad), std::invalid_argument);
  bad = AccelResources{};
  bad.mac_units = 0;
  EXPECT_THROW(AcceleratorModel(paper_shape(), bad), std::invalid_argument);
  bad = AccelResources{};
  bad.popcount_bits = 32;
  EXPECT_THROW(AcceleratorModel(paper_shape(), bad), std::invalid_argument);

  auto shape = paper_shape();
  shape.dim = 32;
  EXPECT_THROW(AcceleratorModel(shape, AccelResources{}), std::invalid_argument);
  shape = paper_shape();
  shape.models = 0;
  EXPECT_THROW(AcceleratorModel(shape, AccelResources{}), std::invalid_argument);
}

}  // namespace
}  // namespace reghd::sim
