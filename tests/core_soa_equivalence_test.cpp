// SoA-arena equivalence suite (the contract behind the GEMM batch path):
//
//  * EncodedDataset::from must hand back rows bit-identical to per-row
//    Encoder::encode() for every encoder kind — including the RFF encoder's
//    cache-blocked GEMM projection — at any worker-thread count.
//  * SingleModelRegressor/MultiModelRegressor::predict_batch must equal the
//    per-row predict() for every cluster mode × prediction mode, at any
//    thread count (the full-precision bank fast path claims bit-identity;
//    the remaining modes share the per-row code outright).
//  * The committed golden checkpoints must load and predict identically
//    through the new SoA layout.
//
// The whole suite runs on whatever kernel backend is live; CI runs it twice
// (default dispatch and REGHD_KERNEL=scalar), which covers the backend axis.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/encoded.hpp"
#include "core/model_io.hpp"
#include "core/multi_model.hpp"
#include "core/single_model.hpp"
#include "data/dataset.hpp"
#include "hdc/encoding.hpp"
#include "util/atomic_file.hpp"
#include "util/random.hpp"

#ifndef REGHD_GOLDEN_DIR
#error "REGHD_GOLDEN_DIR must be defined by the build"
#endif

namespace reghd::core {
namespace {

constexpr std::size_t kThreadCounts[] = {1, 4};

data::Dataset make_dataset(std::size_t rows, std::size_t features, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> flat(rows * features);
  std::vector<double> targets(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    double sum = 0.0;
    for (std::size_t f = 0; f < features; ++f) {
      const double x = rng.normal(0.0, 1.0);
      flat[i * features + f] = x;
      sum += x * (f % 2 == 0 ? 0.7 : -0.4);
    }
    targets[i] = std::tanh(sum);
  }
  return {"soa-equivalence", features, std::move(flat), std::move(targets)};
}

// ---------------------------------------------------------------------------
// Arena encoding vs per-row encoding, all encoder kinds.
// ---------------------------------------------------------------------------

class ArenaEncodeTest : public ::testing::TestWithParam<hdc::EncoderKind> {};

TEST_P(ArenaEncodeTest, ArenaRowsBitIdenticalToPerRowEncode) {
  // dim 200 is deliberately not a multiple of 64: the packed plane has
  // padding bits, and the AVX2 sign_encode tail path runs.
  for (const std::size_t dim : {static_cast<std::size_t>(200), static_cast<std::size_t>(256)}) {
    hdc::EncoderConfig cfg;
    cfg.kind = GetParam();
    cfg.input_dim = 6;
    cfg.dim = dim;
    const auto encoder = hdc::make_encoder(cfg);
    const data::Dataset dataset = make_dataset(33, cfg.input_dim, 0xA7E0A + dim);

    for (const std::size_t threads : kThreadCounts) {
      const EncodedDataset enc = EncodedDataset::from(*encoder, dataset, threads);
      ASSERT_EQ(enc.size(), dataset.size());
      ASSERT_EQ(enc.dim(), dim);
      for (std::size_t i = 0; i < dataset.size(); ++i) {
        const hdc::EncodedSample expected = encoder->encode(dataset.row(i));
        const hdc::EncodedSampleView got = enc.sample(i);
        EXPECT_TRUE(got.real == hdc::RealHVView(expected.real))
            << "real row " << i << " threads " << threads << " dim " << dim;
        EXPECT_TRUE(got.bipolar == hdc::BipolarHVView(expected.bipolar))
            << "bipolar row " << i;
        EXPECT_TRUE(got.binary == hdc::BinaryHVView(expected.binary))
            << "binary row " << i;
        // Norms come from the same dot_real_real on identical data: exact.
        EXPECT_EQ(got.real_norm2, expected.real_norm2) << "norm2 row " << i;
        EXPECT_EQ(got.real_norm, expected.real_norm) << "norm row " << i;
        EXPECT_EQ(enc.target(i), dataset.target(i));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllEncoders, ArenaEncodeTest,
                         ::testing::Values(hdc::EncoderKind::kNonlinearFeature,
                                           hdc::EncoderKind::kRffProjection,
                                           hdc::EncoderKind::kIdLevel,
                                           hdc::EncoderKind::kTemporal),
                         [](const auto& param_info) { return hdc::to_string(param_info.param); });

// ---------------------------------------------------------------------------
// Batched prediction vs per-row prediction, all mode combinations.
// ---------------------------------------------------------------------------

struct ModeCase {
  ClusterMode cluster;
  QueryPrecision query;
  ModelPrecision model;
};

std::string mode_name(const ::testing::TestParamInfo<ModeCase>& info) {
  std::string name = to_string(info.param.cluster) + "_" + to_string(info.param.query) +
                     "q_" + to_string(info.param.model) + "m";
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) {
      c = '_';
    }
  }
  return name;
}

std::vector<ModeCase> all_mode_cases() {
  std::vector<ModeCase> cases;
  for (const ClusterMode c : {ClusterMode::kFullPrecision, ClusterMode::kQuantized,
                              ClusterMode::kNaiveBinary}) {
    for (const QueryPrecision q : {QueryPrecision::kReal, QueryPrecision::kBinary}) {
      for (const ModelPrecision m : {ModelPrecision::kReal, ModelPrecision::kTernary,
                                     ModelPrecision::kBinary}) {
        cases.push_back({c, q, m});
      }
    }
  }
  return cases;
}

class BatchPredictModeTest : public ::testing::TestWithParam<ModeCase> {};

TEST_P(BatchPredictModeTest, MultiModelBatchMatchesPerRowPredict) {
  const ModeCase mode = GetParam();
  RegHDConfig cfg;
  cfg.dim = 256;
  cfg.models = 4;
  cfg.cluster_mode = mode.cluster;
  cfg.query_precision = mode.query;
  cfg.model_precision = mode.model;

  hdc::EncoderConfig enc_cfg;
  enc_cfg.input_dim = 6;
  enc_cfg.dim = cfg.dim;
  const auto encoder = hdc::make_encoder(enc_cfg);
  const data::Dataset dataset = make_dataset(48, enc_cfg.input_dim, 0xBA7C4);
  const EncodedDataset enc = EncodedDataset::from(*encoder, dataset, 1);

  MultiModelRegressor model(cfg);
  for (std::size_t i = 0; i < enc.size(); ++i) {
    model.train_step(enc.sample(i), enc.target(i));
  }
  model.requantize();

  for (const std::size_t threads : kThreadCounts) {
    const std::vector<double> batched = model.predict_batch(enc, threads);
    ASSERT_EQ(batched.size(), enc.size());
    for (std::size_t i = 0; i < enc.size(); ++i) {
      EXPECT_DOUBLE_EQ(batched[i], model.predict(enc.sample(i)))
          << "row " << i << " threads " << threads;
    }
  }
}

TEST_P(BatchPredictModeTest, SingleModelBatchMatchesPerRowPredict) {
  const ModeCase mode = GetParam();
  RegHDConfig cfg;
  cfg.dim = 256;
  cfg.models = 1;
  cfg.cluster_mode = mode.cluster;
  cfg.query_precision = mode.query;
  cfg.model_precision = mode.model;

  hdc::EncoderConfig enc_cfg;
  enc_cfg.input_dim = 6;
  enc_cfg.dim = cfg.dim;
  const auto encoder = hdc::make_encoder(enc_cfg);
  const data::Dataset dataset = make_dataset(48, enc_cfg.input_dim, 0x517C1E);
  const EncodedDataset enc = EncodedDataset::from(*encoder, dataset, 1);

  SingleModelRegressor model(cfg);
  for (std::size_t i = 0; i < enc.size(); ++i) {
    model.train_step(enc.sample(i), enc.target(i));
  }

  for (const std::size_t threads : kThreadCounts) {
    const std::vector<double> batched = model.predict_batch(enc, threads);
    ASSERT_EQ(batched.size(), enc.size());
    for (std::size_t i = 0; i < enc.size(); ++i) {
      EXPECT_DOUBLE_EQ(batched[i], model.predict(enc.sample(i)))
          << "row " << i << " threads " << threads;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, BatchPredictModeTest,
                         ::testing::ValuesIn(all_mode_cases()), mode_name);

// ---------------------------------------------------------------------------
// Golden checkpoints through the SoA layout.
// ---------------------------------------------------------------------------

std::string golden(const std::string& name) {
  return std::string(REGHD_GOLDEN_DIR) + "/" + name;
}

double next_double(std::istream& in) {
  std::string token;
  EXPECT_TRUE(static_cast<bool>(in >> token)) << "golden text file truncated";
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  EXPECT_EQ(end, token.c_str() + token.size()) << "bad token '" << token << "'";
  return value;
}

TEST(GoldenSoaTest, GoldenPipelinesPredictIdenticallyThroughArenaBatchPath) {
  // The golden blobs were written before the SoA arena existed; loading them
  // and batch-predicting through EncodedDataset must reproduce the committed
  // per-row predictions (1e-9 relative, the golden suite's own slack).
  std::ifstream qf(golden("queries.txt"));
  std::ifstream pf(golden("predictions.txt"));
  ASSERT_TRUE(qf.good() && pf.good()) << "golden text files missing";
  std::size_t count = 0;
  std::size_t features = 0;
  qf >> count >> features;
  std::vector<double> flat;
  std::vector<double> pipeline_expected;
  for (std::size_t i = 0; i < count; ++i) {
    for (std::size_t f = 0; f < features; ++f) {
      flat.push_back(next_double(qf));
    }
    pipeline_expected.push_back(next_double(pf));
    (void)next_double(pf);  // online-model prediction, not used here
  }
  const data::Dataset queries("golden-queries", features, std::move(flat),
                              std::vector<double>(count, 0.0));

  for (const char* blob : {"pipeline_v1.reghd", "pipeline_v2.reghd"}) {
    std::istringstream in(util::read_file_bytes(golden(blob)), std::ios::binary);
    const RegHDPipeline pipeline = load_pipeline(in);
    const std::vector<double> batched = pipeline.predict_batch(queries);
    ASSERT_EQ(batched.size(), count) << blob;
    for (std::size_t i = 0; i < count; ++i) {
      const double per_row = pipeline.predict(queries.row(i));
      EXPECT_NEAR(batched[i], pipeline_expected[i],
                  1e-9 * std::max(1.0, std::abs(pipeline_expected[i])))
          << blob << " query " << i;
      EXPECT_DOUBLE_EQ(batched[i], per_row) << blob << " query " << i;
    }
  }
}

}  // namespace
}  // namespace reghd::core
