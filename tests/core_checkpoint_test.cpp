// CheckpointManager + online checkpoint format: full-state capture,
// atomic writes, keep-last-K retention, and recovery that skips every
// corrupted checkpoint.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>

#include "core/checkpoint.hpp"
#include "core/model_io.hpp"
#include "core/sharded_training.hpp"
#include "data/synthetic.hpp"
#include "util/atomic_file.hpp"
#include "util/framing.hpp"
#include "util/serialize.hpp"

namespace reghd::core {
namespace {

namespace fs = std::filesystem;

OnlineConfig small_config() {
  OnlineConfig cfg;
  cfg.reghd.dim = 128;
  cfg.reghd.models = 2;
  cfg.reghd.cluster_mode = ClusterMode::kQuantized;
  cfg.requantize_every = 48;
  cfg.decay = 0.999;
  return cfg;
}

OnlineRegHD trained_learner(std::size_t updates) {
  const data::Dataset d = data::make_friedman1(512, 9);
  OnlineRegHD learner(small_config(), d.num_features());
  for (std::size_t i = 0; i < updates && i < d.size(); ++i) {
    learner.update(d.row(i), d.target(i));
  }
  return learner;
}

std::string serialize(const OnlineRegHD& learner) {
  std::ostringstream out(std::ios::binary);
  save_online_checkpoint(out, learner);
  return out.str();
}

class CheckpointManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("reghd-ckpt-" +
             std::string(::testing::UnitTest::GetInstance()->current_test_info()->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  CheckpointConfig config(std::size_t keep_last = 3) {
    CheckpointConfig cfg;
    cfg.dir = dir_;
    cfg.keep_last = keep_last;
    cfg.fsync = false;  // unit tests don't need durability barriers
    return cfg;
  }

  std::string dir_;
};

TEST_F(CheckpointManagerTest, SaveLoadIsBitIdentical) {
  // The checkpoint is taken at a step that is NOT a requantize boundary
  // (173 % 48 != 0), so the binary snapshots are stale relative to the
  // accumulators — exactly the state a naive "requantize on load" would
  // corrupt.
  const OnlineRegHD learner = trained_learner(173);
  std::istringstream in(serialize(learner), std::ios::binary);
  const OnlineRegHD restored = load_online_checkpoint(in);

  EXPECT_EQ(restored.samples_seen(), learner.samples_seen());
  EXPECT_EQ(restored.since_requantize(), learner.since_requantize());
  EXPECT_EQ(serialize(restored), serialize(learner));
}

TEST_F(CheckpointManagerTest, LoadAppliesProjectionStorageOverride) {
  // Projection storage is a deployment knob, deliberately not serialized: a
  // plain load always comes back resident, and the override applies the
  // caller's mode at construction — same state, same bytes, bit-identical
  // predictions, no resident F×D matrix ever built.
  const data::Dataset d = data::make_friedman1(64, 9);
  const OnlineRegHD learner = trained_learner(173);
  const std::string bytes = serialize(learner);

  std::istringstream plain_in(bytes, std::ios::binary);
  const OnlineRegHD plain = load_online_checkpoint(plain_in);
  EXPECT_EQ(plain.encoder().config().projection_storage,
            hdc::ProjectionStorage::kResident);

  std::istringstream remat_in(bytes, std::ios::binary);
  const OnlineRegHD remat =
      load_online_checkpoint(remat_in, hdc::ProjectionStorage::kRematerialized);
  EXPECT_EQ(remat.encoder().config().projection_storage,
            hdc::ProjectionStorage::kRematerialized);
  EXPECT_EQ(remat.samples_seen(), learner.samples_seen());
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_EQ(remat.predict(d.row(i)), plain.predict(d.row(i)))
        << "storage modes diverged on row " << i;
  }
  // The override round-trips back out as the serialized default, so the
  // bytes a rematerialized deployment re-saves equal the original file.
  EXPECT_EQ(serialize(remat), bytes);
}

TEST_F(CheckpointManagerTest, PackedBankSectionRoundTripsVerbatim) {
  // Quantized model precision puts model rows in the packed scan bank; the
  // PBNK section must restore the exact planes and scales the checkpointed
  // process scored through.
  OnlineConfig cfg = small_config();
  cfg.reghd.query_precision = QueryPrecision::kBinary;
  cfg.reghd.model_precision = ModelPrecision::kTernary;
  const data::Dataset d = data::make_friedman1(512, 9);
  OnlineRegHD learner(cfg, d.num_features());
  for (std::size_t i = 0; i < 173; ++i) {
    learner.update(d.row(i), d.target(i));
  }
  ASSERT_TRUE(learner.model().packed_bank().valid);

  std::istringstream in(serialize(learner), std::ios::binary);
  const OnlineRegHD restored = load_online_checkpoint(in);
  const PackedTernaryBank& want = learner.model().packed_bank();
  const PackedTernaryBank& got = restored.model().packed_bank();
  ASSERT_TRUE(got.valid);
  EXPECT_EQ(got.rows, want.rows);
  EXPECT_EQ(got.words, want.words);
  EXPECT_EQ(std::vector<std::uint64_t>(got.signs.begin(), got.signs.end()),
            std::vector<std::uint64_t>(want.signs.begin(), want.signs.end()));
  EXPECT_EQ(std::vector<std::uint64_t>(got.masks.begin(), got.masks.end()),
            std::vector<std::uint64_t>(want.masks.begin(), want.masks.end()));
  EXPECT_EQ(got.scale, want.scale);
  EXPECT_EQ(serialize(restored), serialize(learner));
}

TEST_F(CheckpointManagerTest, CheckpointWithoutPackedBankSectionStillLoads) {
  // Files written before the PBNK section existed have no bank section; the
  // loader must fall back to re-packing from the restored snapshots and end
  // up in the identical state. Simulate one by re-framing the checkpoint
  // with the PBNK section dropped.
  OnlineConfig cfg = small_config();
  cfg.reghd.query_precision = QueryPrecision::kBinary;
  cfg.reghd.model_precision = ModelPrecision::kTernary;
  const data::Dataset d = data::make_friedman1(512, 9);
  OnlineRegHD learner(cfg, d.num_features());
  for (std::size_t i = 0; i < 173; ++i) {
    learner.update(d.row(i), d.target(i));
  }

  const std::string bytes = serialize(learner);
  const util::ParsedFile file = util::parse_sections(bytes.substr(8));
  std::ostringstream stripped(std::ios::binary);
  util::write_scalar<std::uint32_t>(stripped, kModelMagic);
  util::write_scalar<std::uint32_t>(stripped, kModelVersionLatest);
  util::SectionWriter writer(stripped, file.kind);
  bool dropped = false;
  for (const util::Section& s : file.sections) {
    if (s.tag == util::fourcc("PBNK")) {
      dropped = true;
      continue;
    }
    writer.add(s.tag, s.payload);
  }
  writer.finish();
  ASSERT_TRUE(dropped) << "expected the checkpoint to carry a PBNK section";

  std::istringstream in(stripped.str(), std::ios::binary);
  const OnlineRegHD restored = load_online_checkpoint(in);
  ASSERT_TRUE(restored.model().packed_bank().valid);
  EXPECT_EQ(serialize(restored), serialize(learner));
}

TEST_F(CheckpointManagerTest, RecoverReturnsNewestValid) {
  CheckpointManager manager(config());
  OnlineRegHD learner = trained_learner(100);
  manager.save(learner);
  const data::Dataset d = data::make_friedman1(512, 9);
  for (std::size_t i = 100; i < 150; ++i) {
    learner.update(d.row(i), d.target(i));
  }
  manager.save(learner);

  const auto recovered = manager.recover();
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->samples_seen(), 150u);
  EXPECT_EQ(serialize(*recovered), serialize(learner));
}

TEST_F(CheckpointManagerTest, KeepLastPrunesOldCheckpoints) {
  CheckpointManager manager(config(2));
  OnlineRegHD learner = trained_learner(10);
  const data::Dataset d = data::make_friedman1(512, 9);
  for (std::size_t i = 10; i < 50; i += 10) {
    manager.save(learner);
    for (std::size_t j = i; j < i + 10; ++j) {
      learner.update(d.row(j), d.target(j));
    }
  }
  manager.save(learner);
  EXPECT_EQ(manager.checkpoints().size(), 2u);
  const auto recovered = manager.recover();
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->samples_seen(), 50u);
}

TEST_F(CheckpointManagerTest, MaybeSaveHonorsCadence) {
  CheckpointConfig cfg = config();
  cfg.every = 50;
  CheckpointManager manager(cfg);
  const data::Dataset d = data::make_friedman1(512, 9);
  OnlineRegHD learner(small_config(), d.num_features());
  std::size_t saves = 0;
  for (std::size_t i = 0; i < 120; ++i) {
    learner.update(d.row(i), d.target(i));
    saves += manager.maybe_save(learner).has_value() ? 1 : 0;
  }
  EXPECT_EQ(saves, 2u);  // steps 50 and 100
  EXPECT_EQ(manager.checkpoints().size(), 2u);
}

TEST_F(CheckpointManagerTest, RecoverSkipsCorruptNewest) {
  CheckpointManager manager(config());
  OnlineRegHD learner = trained_learner(96);  // requantize boundary: snapshots fresh
  manager.save(learner);
  const std::string valid_bytes = serialize(learner);

  const data::Dataset d = data::make_friedman1(512, 9);
  for (std::size_t i = 96; i < 120; ++i) {
    learner.update(d.row(i), d.target(i));
  }
  // The newest checkpoint lands on storage silently damaged.
  manager.set_fault_plan({util::FaultMode::kBitFlipAt, 500, 4});
  manager.save(learner);

  const auto recovered = manager.recover();
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->samples_seen(), 96u);  // fell back past the damage
  EXPECT_EQ(serialize(*recovered), valid_bytes);
}

TEST_F(CheckpointManagerTest, RecoverEmptyAndAllCorrupt) {
  CheckpointManager manager(config());
  EXPECT_FALSE(manager.recover().has_value());

  OnlineRegHD learner = trained_learner(60);
  manager.set_fault_plan({util::FaultMode::kTruncateAt, 40, 1});
  manager.save(learner);
  EXPECT_FALSE(manager.recover().has_value());
}

TEST_F(CheckpointManagerTest, FailedSaveLeavesExistingCheckpointsIntact) {
  CheckpointManager manager(config());
  OnlineRegHD learner = trained_learner(60);
  manager.save(learner);
  const auto before = manager.checkpoints();

  manager.set_fault_plan({util::FaultMode::kFailAt, 64, 1});
  EXPECT_THROW(manager.save(learner), util::IoError);
  EXPECT_EQ(manager.checkpoints(), before);
  ASSERT_TRUE(manager.recover().has_value());

  // The armed plan was consumed by the failed save; the next one succeeds.
  EXPECT_NO_THROW(manager.save(learner));
}

TEST_F(CheckpointManagerTest, ForeignFilesAndTmpDebrisAreIgnored) {
  CheckpointManager manager(config());
  util::atomic_write_file(dir_ + "/notes.txt", "not a checkpoint");
  util::atomic_write_file(dir_ + "/ckpt-banana.reghd", "bad step");
  util::atomic_write_file(dir_ + "/ckpt-00000000000000000009.reghd.tmp", "debris");
  EXPECT_TRUE(manager.checkpoints().empty());
  EXPECT_FALSE(manager.recover().has_value());

  OnlineRegHD learner = trained_learner(30);
  manager.save(learner);
  EXPECT_EQ(manager.checkpoints().size(), 1u);
  // prune() cleared the crash debris during the save.
  EXPECT_FALSE(fs::exists(dir_ + "/ckpt-00000000000000000009.reghd.tmp"));
}

TEST_F(CheckpointManagerTest, ShardedMergedStreamRoundTripsAndRefinesBitIdentically) {
  // Cross-feature stress: shard-train a stream, merge, checkpoint the merged
  // learner through the v2 container, resume, then keep refining BOTH copies
  // with identical updates. The byte streams must stay identical at every
  // step — the checkpoint captured the complete merged state (accumulators,
  // snapshots, packed bank, Welford statistics, requantize accounting).
  OnlineConfig cfg = small_config();
  cfg.reghd.query_precision = QueryPrecision::kBinary;
  cfg.reghd.model_precision = ModelPrecision::kTernary;
  const data::Dataset d = data::make_friedman1(512, 9);

  ShardedTrainConfig scfg;
  scfg.shards = 4;
  OnlineRegHD merged = train_online_sharded(
      cfg, d.features_flat().subspan(0, 400 * d.num_features()),
      std::span<const double>(d.targets().data(), 400), d.num_features(), scfg);

  std::istringstream in(serialize(merged), std::ios::binary);
  OnlineRegHD resumed = load_online_checkpoint(in);
  EXPECT_EQ(serialize(resumed), serialize(merged));

  // Refine: both learners consume the tail of the stream.
  for (std::size_t i = 400; i < d.size(); ++i) {
    EXPECT_EQ(resumed.update(d.row(i), d.target(i)), merged.update(d.row(i), d.target(i)));
  }
  EXPECT_EQ(serialize(resumed), serialize(merged));
}

TEST_F(CheckpointManagerTest, ShardedMergedCheckpointWithoutPackedBankStillLoads) {
  // The merge finalizes with requantize(), so the saved bank is derivable
  // from the saved snapshots; a PBNK-stripped container (the pre-bank format)
  // must re-pack to the identical state.
  OnlineConfig cfg = small_config();
  cfg.reghd.query_precision = QueryPrecision::kBinary;
  cfg.reghd.model_precision = ModelPrecision::kTernary;
  const data::Dataset d = data::make_friedman1(400, 9);

  ShardedTrainConfig scfg;
  scfg.shards = 3;
  const OnlineRegHD merged = train_online_sharded(cfg, d.features_flat(), d.targets(),
                                                  d.num_features(), scfg);
  ASSERT_TRUE(merged.model().packed_bank().valid);

  const std::string bytes = serialize(merged);
  const util::ParsedFile file = util::parse_sections(bytes.substr(8));
  std::ostringstream stripped(std::ios::binary);
  util::write_scalar<std::uint32_t>(stripped, kModelMagic);
  util::write_scalar<std::uint32_t>(stripped, kModelVersionLatest);
  util::SectionWriter writer(stripped, file.kind);
  bool dropped = false;
  for (const util::Section& s : file.sections) {
    if (s.tag == util::fourcc("PBNK")) {
      dropped = true;
      continue;
    }
    writer.add(s.tag, s.payload);
  }
  writer.finish();
  ASSERT_TRUE(dropped) << "expected the merged checkpoint to carry a PBNK section";

  std::istringstream in(stripped.str(), std::ios::binary);
  const OnlineRegHD restored = load_online_checkpoint(in);
  ASSERT_TRUE(restored.model().packed_bank().valid);
  EXPECT_EQ(serialize(restored), bytes);
}

TEST_F(CheckpointManagerTest, ShardedPipelineModelRoundTripsThroughModelFile) {
  PipelineConfig pcfg;
  pcfg.reghd.dim = 128;
  pcfg.reghd.models = 2;
  pcfg.reghd.max_epochs = 3;
  pcfg.reghd.cluster_mode = ClusterMode::kQuantized;
  RegHDPipeline pipeline(pcfg);
  ShardedTrainConfig scfg;
  scfg.shards = 3;
  scfg.refine_epochs = 1;
  pipeline.fit_sharded(data::make_friedman1(160, 5), scfg);

  std::ostringstream out(std::ios::binary);
  save_pipeline(out, pipeline);
  std::istringstream in(out.str(), std::ios::binary);
  const RegHDPipeline loaded = load_pipeline(in);

  const data::Dataset queries = data::make_friedman1(16, 77);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(loaded.predict(queries.row(i)), pipeline.predict(queries.row(i)));
  }
}

TEST_F(CheckpointManagerTest, PipelineCheckpointsRoundTrip) {
  PipelineConfig pcfg;
  pcfg.reghd.dim = 128;
  pcfg.reghd.models = 2;
  pcfg.reghd.max_epochs = 3;
  pcfg.reghd.threads = 1;
  RegHDPipeline pipeline(pcfg);
  pipeline.fit(data::make_friedman1(120, 5));

  CheckpointManager manager(config());
  manager.save(pipeline, 3);
  const auto recovered = manager.recover_pipeline();
  ASSERT_TRUE(recovered.has_value());
  const data::Dataset queries = data::make_friedman1(16, 77);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(recovered->predict(queries.row(i)), pipeline.predict(queries.row(i)));
  }
  // Pipeline files don't satisfy online recovery and vice versa.
  EXPECT_FALSE(manager.recover().has_value());
}

}  // namespace
}  // namespace reghd::core
