// Property round-trip layer: for EVERY encoder kind × cluster mode ×
// prediction mode, serialize → deserialize must reproduce the model
// exactly — 64 random queries predict bit-identically — in both the v2
// (default) and legacy v1 container.
#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <tuple>

#include "core/model_io.hpp"
#include "core/pipeline.hpp"
#include "data/synthetic.hpp"
#include "util/random.hpp"

namespace reghd::core {
namespace {

using Combo = std::tuple<hdc::EncoderKind, ClusterMode, QueryPrecision, ModelPrecision>;

std::string combo_name(const ::testing::TestParamInfo<Combo>& info) {
  const auto [encoder, cluster, query, model] = info.param;
  std::string name = hdc::to_string(encoder);
  name += "_" + to_string(cluster) + "_" + to_string(query) + "q_" + to_string(model) + "m";
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) {
      c = '_';
    }
  }
  return name;
}

class RoundTripMatrix : public ::testing::TestWithParam<Combo> {
 protected:
  static RegHDPipeline fitted(const Combo& combo) {
    const auto [encoder, cluster, query, model] = combo;
    PipelineConfig cfg;
    cfg.encoder.kind = encoder;
    cfg.reghd.dim = 128;
    cfg.reghd.models = 2;
    cfg.reghd.max_epochs = 3;
    cfg.reghd.cluster_mode = cluster;
    cfg.reghd.query_precision = query;
    cfg.reghd.model_precision = model;
    cfg.reghd.threads = 1;
    cfg.reghd.seed = 77;
    RegHDPipeline pipeline(cfg);
    pipeline.fit(data::make_friedman1(120, 5));
    return pipeline;
  }

  static void expect_identical_predictions(const RegHDPipeline& a, const RegHDPipeline& b) {
    util::Rng rng(321);
    std::vector<double> query(10);
    for (int trial = 0; trial < 64; ++trial) {
      for (double& x : query) {
        x = rng.uniform(-2.0, 2.0);
      }
      const double ya = a.predict(query);
      const double yb = b.predict(query);
      // Bit-identical, not approximately equal: the restored model must BE
      // the saved model.
      EXPECT_EQ(ya, yb) << "trial " << trial;
    }
  }
};

TEST_P(RoundTripMatrix, V2BitIdentical) {
  const RegHDPipeline original = fitted(GetParam());
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  save_pipeline(buffer, original);
  const RegHDPipeline restored = load_pipeline(buffer);
  expect_identical_predictions(original, restored);
}

TEST_P(RoundTripMatrix, V1BitIdentical) {
  const RegHDPipeline original = fitted(GetParam());
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  save_pipeline_v1(buffer, original);
  const RegHDPipeline restored = load_pipeline(buffer);
  expect_identical_predictions(original, restored);
}

TEST_P(RoundTripMatrix, V1AndV2DecodeToTheSameModel) {
  const RegHDPipeline original = fitted(GetParam());
  std::stringstream v1(std::ios::in | std::ios::out | std::ios::binary);
  std::stringstream v2(std::ios::in | std::ios::out | std::ios::binary);
  save_pipeline_v1(v1, original);
  save_pipeline(v2, original);
  expect_identical_predictions(load_pipeline(v1), load_pipeline(v2));
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigurations, RoundTripMatrix,
    ::testing::Combine(::testing::Values(hdc::EncoderKind::kNonlinearFeature,
                                         hdc::EncoderKind::kRffProjection,
                                         hdc::EncoderKind::kIdLevel,
                                         hdc::EncoderKind::kTemporal),
                       ::testing::Values(ClusterMode::kFullPrecision, ClusterMode::kQuantized,
                                         ClusterMode::kNaiveBinary),
                       ::testing::Values(QueryPrecision::kReal, QueryPrecision::kBinary),
                       ::testing::Values(ModelPrecision::kReal, ModelPrecision::kBinary,
                                         ModelPrecision::kTernary)),
    combo_name);

}  // namespace
}  // namespace reghd::core
