// Tests for the Baseline-HD comparator: regression emulated with HD
// classification over discretized output bins (paper ref. [18]).
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/baseline_hd.hpp"
#include "data/synthetic.hpp"
#include "util/metrics.hpp"
#include "util/random.hpp"

namespace reghd::baselines {
namespace {

BaselineHdConfig small_config(std::size_t bins = 16) {
  BaselineHdConfig cfg;
  cfg.dim = 1024;
  cfg.bins = bins;
  cfg.epochs = 10;
  return cfg;
}

TEST(BaselineHdTest, BinMappingCoversTrainingRangeUniformly) {
  data::Dataset d;
  for (int i = 0; i <= 100; ++i) {
    const double f[] = {static_cast<double>(i)};
    d.add_sample(f, static_cast<double>(i));  // targets 0..100
  }
  BaselineHd model(small_config(10));
  model.fit(d);
  EXPECT_EQ(model.bin_of(0.0), 0u);
  EXPECT_EQ(model.bin_of(100.0), 9u);
  EXPECT_EQ(model.bin_of(55.0), 5u);
  // Out-of-range targets clamp.
  EXPECT_EQ(model.bin_of(-10.0), 0u);
  EXPECT_EQ(model.bin_of(1000.0), 9u);
  // Centers are midpoints.
  EXPECT_NEAR(model.bin_center(0), 5.0, 1e-9);
  EXPECT_NEAR(model.bin_center(9), 95.0, 1e-9);
}

TEST(BaselineHdTest, PredictionsAreAlwaysBinCenters) {
  const data::Dataset d = data::make_sine_task(400, 3);
  BaselineHd model(small_config(8));
  model.fit(d);
  for (std::size_t i = 0; i < 20; ++i) {
    const double p = model.predict(d.row(i));
    bool is_center = false;
    for (std::size_t b = 0; b < model.num_bins(); ++b) {
      if (std::abs(p - model.bin_center(b)) < 1e-9) {
        is_center = true;
        break;
      }
    }
    EXPECT_TRUE(is_center) << "prediction " << p << " is not a bin center";
  }
}

TEST(BaselineHdTest, LearnsCoarseStructureOfSine) {
  const data::Dataset d = data::make_sine_task(800, 5, 0.02);
  util::Rng rng(5);
  const data::TrainTestSplit split = data::train_test_split(d, 0.25, rng);
  BaselineHd model(small_config(16));
  model.fit(split.train);
  const std::vector<double> pred = model.predict_batch(split.test);
  const double mse = util::mse(pred, split.test.targets());
  // Target variance ≈ 0.9: Baseline-HD must beat the mean predictor...
  EXPECT_LT(mse, 0.6);
  // ...but cannot beat its own discretization floor (bin width² / 12).
  const double width = (model.bin_center(1) - model.bin_center(0));
  EXPECT_GT(mse, width * width / 12.0 * 0.5);
}

TEST(BaselineHdTest, MoreBinsReduceDiscretizationError) {
  const data::Dataset d = data::make_sine_task(800, 7, 0.02);
  util::Rng rng(7);
  const data::TrainTestSplit split = data::train_test_split(d, 0.25, rng);
  BaselineHd coarse(small_config(4));
  BaselineHd fine(small_config(32));
  coarse.fit(split.train);
  fine.fit(split.train);
  const double mse_coarse =
      util::mse(coarse.predict_batch(split.test), split.test.targets());
  const double mse_fine = util::mse(fine.predict_batch(split.test), split.test.targets());
  EXPECT_LT(mse_fine, mse_coarse);
}

TEST(BaselineHdTest, ConstantTargetHandled) {
  data::Dataset d;
  util::Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    const double f[] = {rng.normal()};
    d.add_sample(f, 42.0);
  }
  BaselineHd model(small_config(8));
  model.fit(d);
  const double x[] = {0.0};
  EXPECT_NEAR(model.predict(x), 42.0, 1.0);
}

TEST(BaselineHdTest, DeterministicForFixedSeed) {
  const data::Dataset d = data::make_sine_task(300, 11);
  BaselineHd m1(small_config());
  BaselineHd m2(small_config());
  m1.fit(d);
  m2.fit(d);
  EXPECT_DOUBLE_EQ(m1.predict(d.row(0)), m2.predict(d.row(0)));
}

TEST(BaselineHdTest, ConfigValidationAndMisuse) {
  BaselineHdConfig cfg;
  cfg.bins = 1;
  EXPECT_THROW(BaselineHd{cfg}, std::invalid_argument);
  cfg = {};
  cfg.dim = 8;
  EXPECT_THROW(BaselineHd{cfg}, std::invalid_argument);

  BaselineHd model(small_config());
  EXPECT_THROW((void)model.predict(std::vector<double>{1.0}), std::invalid_argument);
  EXPECT_THROW((void)model.bin_center(99), std::invalid_argument);
}

TEST(BaselineHdTest, NameIsStable) { EXPECT_EQ(BaselineHd().name(), "Baseline-HD"); }

}  // namespace
}  // namespace reghd::baselines
