// Tests for the standalone HD clusterer.
#include <gtest/gtest.h>

#include <array>
#include <map>
#include <memory>
#include <set>

#include "core/hd_clustering.hpp"
#include "data/scaler.hpp"
#include "data/synthetic.hpp"
#include "hdc/encoding.hpp"
#include "util/random.hpp"

namespace reghd::core {
namespace {

/// Encoded blob dataset with exact ground-truth labels: blob centers are
/// placed on guaranteed-separated lattice points, so the labels are not
/// reconstructed but known by construction.
struct BlobTask {
  EncodedDataset data;
  std::vector<std::size_t> truth;
  std::unique_ptr<hdc::Encoder> encoder;
};

BlobTask make_blobs(std::size_t samples, std::size_t regimes, std::uint64_t seed,
                    std::size_t dim = 1024) {
  constexpr std::size_t kFeatures = 3;
  // Centers on the corners of a cube of side 4 (within-blob σ = 0.5):
  // minimum center distance 4 ⇒ 8σ separation.
  std::vector<std::array<double, kFeatures>> centers;
  for (std::size_t r = 0; r < regimes; ++r) {
    centers.push_back({r & 1 ? 2.0 : -2.0, r & 2 ? 2.0 : -2.0, r & 4 ? 2.0 : -2.0});
  }

  util::Rng rng(seed);
  data::Dataset raw;
  std::vector<std::size_t> truth;
  std::vector<double> x(kFeatures);
  for (std::size_t i = 0; i < samples; ++i) {
    const auto r = static_cast<std::size_t>(rng.uniform_index(regimes));
    for (std::size_t k = 0; k < kFeatures; ++k) {
      x[k] = centers[r][k] + rng.normal(0.0, 0.5);
    }
    raw.add_sample(x, 0.0);  // targets unused for clustering
    truth.push_back(r);
  }
  data::StandardScaler scaler;
  scaler.fit(raw);
  scaler.transform(raw);

  hdc::EncoderConfig cfg;
  cfg.input_dim = kFeatures;
  cfg.dim = dim;
  cfg.seed = seed;
  BlobTask task;
  task.encoder = hdc::make_encoder(cfg);
  task.data = EncodedDataset::from(*task.encoder, raw);
  task.truth = std::move(truth);
  return task;
}

/// Cluster purity: fraction of samples whose cluster's majority truth label
/// matches their own.
double purity(const std::vector<std::size_t>& assignments,
              const std::vector<std::size_t>& truth, std::size_t clusters) {
  std::map<std::size_t, std::map<std::size_t, std::size_t>> counts;
  for (std::size_t i = 0; i < assignments.size(); ++i) {
    ++counts[assignments[i]][truth[i]];
  }
  std::size_t majority_total = 0;
  for (const auto& [cluster, label_counts] : counts) {
    std::size_t best = 0;
    for (const auto& [label, count] : label_counts) {
      best = std::max(best, count);
    }
    majority_total += best;
  }
  (void)clusters;
  return static_cast<double>(majority_total) / static_cast<double>(assignments.size());
}

HdClusteringConfig config_for(std::size_t clusters, std::size_t dim = 1024) {
  HdClusteringConfig cfg;
  cfg.dim = dim;
  cfg.clusters = clusters;
  cfg.seed = 3;
  return cfg;
}

TEST(HdClusteringTest, RecoversWellSeparatedBlobs) {
  const BlobTask task = make_blobs(600, 4, 7);
  HdClustering clustering(config_for(4));
  const HdClusteringReport report = clustering.fit(task.data);
  ASSERT_EQ(report.assignments.size(), 600u);
  EXPECT_GT(purity(report.assignments, task.truth, 4), 0.9);
  EXPECT_GT(report.cohesion, 0.3);
}

TEST(HdClusteringTest, QuantizedModeAlsoRecoversBlobs) {
  const BlobTask task = make_blobs(600, 4, 11);
  auto cfg = config_for(4);
  cfg.mode = ClusterMode::kQuantized;
  HdClustering clustering(cfg);
  const HdClusteringReport report = clustering.fit(task.data);
  EXPECT_GT(purity(report.assignments, task.truth, 4), 0.85);
}

TEST(HdClusteringTest, AssignMatchesFitAssignments) {
  const BlobTask task = make_blobs(300, 3, 13);
  HdClustering clustering(config_for(3));
  const HdClusteringReport report = clustering.fit(task.data);
  for (std::size_t i = 0; i < task.data.size(); ++i) {
    EXPECT_EQ(clustering.assign(task.data.sample(i)), report.assignments[i]);
  }
}

TEST(HdClusteringTest, ConvergesAndReportsEpochs) {
  const BlobTask task = make_blobs(500, 3, 17);
  HdClustering clustering(config_for(3));
  const HdClusteringReport report = clustering.fit(task.data);
  EXPECT_TRUE(report.converged);
  EXPECT_LT(report.epochs_run, config_for(3).max_epochs);
  EXPECT_GE(report.epochs_run, 2u);
}

TEST(HdClusteringTest, MoreClustersIncreaseCohesion) {
  const BlobTask task = make_blobs(600, 6, 19);
  HdClustering few(config_for(2));
  HdClustering many(config_for(6));
  const double cohesion_few = few.fit(task.data).cohesion;
  const double cohesion_many = many.fit(task.data).cohesion;
  EXPECT_GT(cohesion_many, cohesion_few);
}

TEST(HdClusteringTest, SimilaritiesBoundedAndSized) {
  const BlobTask task = make_blobs(200, 3, 23);
  HdClustering clustering(config_for(3));
  clustering.fit(task.data);
  const auto sims = clustering.similarities(task.data.sample(0));
  ASSERT_EQ(sims.size(), 3u);
  for (const double s : sims) {
    EXPECT_GE(s, -1.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(HdClusteringTest, DeterministicForFixedSeed) {
  const BlobTask task = make_blobs(300, 4, 29);
  HdClustering a(config_for(4));
  HdClustering b(config_for(4));
  EXPECT_EQ(a.fit(task.data).assignments, b.fit(task.data).assignments);
}

TEST(HdClusteringTest, ValidatesConfigurationAndInput) {
  auto cfg = config_for(0);
  EXPECT_THROW(HdClustering{cfg}, std::invalid_argument);
  cfg = config_for(2);
  cfg.dim = 8;
  EXPECT_THROW(HdClustering{cfg}, std::invalid_argument);
  cfg = config_for(2);
  cfg.reassignment_tolerance = 1.5;
  EXPECT_THROW(HdClustering{cfg}, std::invalid_argument);

  HdClustering clustering(config_for(2));
  EXPECT_THROW((void)clustering.fit(EncodedDataset{}), std::invalid_argument);
  const BlobTask task = make_blobs(100, 2, 31, 512);
  EXPECT_THROW((void)clustering.fit(task.data), std::invalid_argument);  // dim mismatch
}

}  // namespace
}  // namespace reghd::core
