// Property tests for sharded data-parallel training (core/sharded_training):
// the merge is order-invariant and associative bit for bit, S = 1 degenerates
// to a plain fit() bit-identically (batch and online), thread count never
// changes results, and the merged model actually learned something.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "core/model_io.hpp"
#include "core/reghd.hpp"
#include "data/synthetic.hpp"
#include "util/serialize.hpp"

namespace reghd::core {
namespace {

// --------------------------------------------------------------------------
// fixtures
// --------------------------------------------------------------------------

/// The three precision regimes the merge must be exact in: full-precision
/// accumulators, the paper's quantized clustering with binary models, and the
/// packed ternary scan bank.
enum class Mode { kReal, kQuantizedBinary, kTernaryBank };

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::kReal:
      return "real";
    case Mode::kQuantizedBinary:
      return "quantized_binary";
    case Mode::kTernaryBank:
      return "ternary_bank";
  }
  return "?";
}

RegHDConfig make_config(Mode mode) {
  RegHDConfig cfg;
  cfg.dim = 256;
  cfg.models = 3;
  cfg.max_epochs = 6;
  cfg.patience = 3;
  cfg.seed = 99;
  switch (mode) {
    case Mode::kReal:
      break;
    case Mode::kQuantizedBinary:
      cfg.cluster_mode = ClusterMode::kQuantized;
      cfg.query_precision = QueryPrecision::kBinary;
      cfg.model_precision = ModelPrecision::kBinary;
      break;
    case Mode::kTernaryBank:
      cfg.cluster_mode = ClusterMode::kQuantized;
      cfg.query_precision = QueryPrecision::kBinary;
      cfg.model_precision = ModelPrecision::kTernary;
      break;
  }
  return cfg;
}

struct EncodedTask {
  EncodedDataset train;
  EncodedDataset val;
};

EncodedTask make_encoded_task(std::size_t dim) {
  hdc::EncoderConfig ecfg;
  ecfg.kind = hdc::EncoderKind::kRffProjection;
  ecfg.dim = dim;
  const data::Dataset d = data::make_friedman1(144, 11);
  ecfg.input_dim = d.num_features();
  const auto encoder = hdc::make_encoder(ecfg);
  const EncodedDataset all = EncodedDataset::from(*encoder, d);
  std::vector<std::size_t> train_rows(120);
  std::iota(train_rows.begin(), train_rows.end(), 0);
  std::vector<std::size_t> val_rows(24);
  std::iota(val_rows.begin(), val_rows.end(), 120);
  return EncodedTask{all.subset(train_rows), all.subset(val_rows)};
}

/// Serializes the COMPLETE learned state — accumulators, binary/ternary
/// snapshots, scales, cluster norms, and the packed scan bank — so an
/// EXPECT_EQ on two fingerprints is a bit-identity claim, not an
/// approximate one.
std::string fingerprint(const MultiModelRegressor& reg) {
  std::ostringstream out(std::ios::binary);
  io::write_model_section(out, reg);
  for (std::size_t i = 0; i < reg.num_models(); ++i) {
    const RegressionModel& m = reg.model(i);
    for (const std::uint64_t w : m.binary.words()) {
      util::write_scalar<std::uint64_t>(out, w);
    }
    util::write_scalar<double>(out, m.gamma);
    for (const std::uint64_t w : m.ternary_mask.words()) {
      util::write_scalar<std::uint64_t>(out, w);
    }
    util::write_scalar<double>(out, m.gamma_ternary);
    const ClusterCenter& c = reg.cluster(i);
    for (const std::uint64_t w : c.binary.words()) {
      util::write_scalar<std::uint64_t>(out, w);
    }
    util::write_scalar<double>(out, c.norm2);
  }
  const PackedTernaryBank& bank = reg.packed_bank();
  util::write_scalar<std::uint8_t>(out, bank.valid ? 1 : 0);
  if (bank.valid) {
    util::write_scalar<std::uint64_t>(out, bank.rows);
    util::write_scalar<std::uint64_t>(out, bank.words);
    for (const std::uint64_t w : bank.signs) {
      util::write_scalar<std::uint64_t>(out, w);
    }
    for (const std::uint64_t w : bank.masks) {
      util::write_scalar<std::uint64_t>(out, w);
    }
    for (const double s : bank.scale) {
      util::write_scalar<double>(out, s);
    }
  }
  return out.str();
}

struct TrainedShards {
  std::vector<MultiModelRegressor> replicas;
  std::vector<MultiModelRegressor> bases;
};

/// Trains S independent replicas exactly the way ShardedTrainer does, but
/// hands the pieces back so tests can assemble merge sets in arbitrary
/// orders and groupings.
TrainedShards train_shards(const RegHDConfig& cfg, const EncodedDataset& train,
                           const EncodedDataset& val, std::size_t shards) {
  TrainedShards out;
  const auto parts = ShardedTrainer::partition(train.size(), shards);
  for (std::size_t s = 0; s < shards; ++s) {
    const EncodedDataset shard_data = train.subset(parts[s]);
    MultiModelRegressor replica(cfg);
    replica.fit(shard_data, val);
    MultiModelRegressor base(cfg);
    base.init_clusters(shard_data);
    out.replicas.push_back(std::move(replica));
    out.bases.push_back(std::move(base));
  }
  return out;
}

MultiModelRegressor apply_set(const RegHDConfig& cfg, const EncodedDataset& train,
                              const ShardMergeSet& set) {
  MultiModelRegressor merged(cfg);
  merged.init_clusters(train);
  set.apply_into(merged);
  return merged;
}

// --------------------------------------------------------------------------
// partition properties
// --------------------------------------------------------------------------

TEST(ShardPartitionTest, RoundRobinCoversEveryRowExactlyOnce) {
  const auto parts = ShardedTrainer::partition(17, 4);
  ASSERT_EQ(parts.size(), 4u);
  std::vector<int> hits(17, 0);
  for (std::size_t s = 0; s < parts.size(); ++s) {
    for (const std::size_t r : parts[s]) {
      ASSERT_LT(r, 17u);
      ++hits[r];
      EXPECT_EQ(r % 4, s);  // round-robin assignment
    }
  }
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(), [](int h) { return h == 1; }));
  // Balanced to within one row.
  for (const auto& p : parts) {
    EXPECT_GE(p.size(), 4u);
    EXPECT_LE(p.size(), 5u);
  }
}

TEST(ShardPartitionTest, RejectsMoreShardsThanRows) {
  EXPECT_THROW(ShardedTrainer::partition(3, 4), std::exception);
  EXPECT_THROW(ShardedTrainer::partition(3, 0), std::exception);
}

// --------------------------------------------------------------------------
// merge algebra: order invariance + associativity, per precision mode
// --------------------------------------------------------------------------

TEST(ShardMergeSetTest, MergeIsOrderInvariantAcrossAllPermutations) {
  const EncodedTask task = make_encoded_task(256);
  for (const Mode mode : {Mode::kReal, Mode::kQuantizedBinary, Mode::kTernaryBank}) {
    SCOPED_TRACE(mode_name(mode));
    const RegHDConfig cfg = make_config(mode);
    const TrainedShards shards = train_shards(cfg, task.train, task.val, 3);

    std::vector<std::size_t> perm = {0, 1, 2};
    std::string reference;
    do {
      ShardMergeSet set;
      for (const std::size_t s : perm) {
        set.add(s, shards.replicas[s], shards.bases[s]);
      }
      const std::string fp = fingerprint(apply_set(cfg, task.train, set));
      if (reference.empty()) {
        reference = fp;
      } else {
        EXPECT_EQ(fp, reference) << "insertion order " << perm[0] << perm[1] << perm[2]
                                 << " changed the merged bits";
      }
    } while (std::next_permutation(perm.begin(), perm.end()));
    EXPECT_FALSE(reference.empty());
  }
}

TEST(ShardMergeSetTest, CombineIsAssociativeAndCommutative) {
  const EncodedTask task = make_encoded_task(256);
  for (const Mode mode : {Mode::kReal, Mode::kQuantizedBinary, Mode::kTernaryBank}) {
    SCOPED_TRACE(mode_name(mode));
    const RegHDConfig cfg = make_config(mode);
    const TrainedShards shards = train_shards(cfg, task.train, task.val, 3);

    ShardMergeSet a;
    a.add(0, shards.replicas[0], shards.bases[0]);
    ShardMergeSet b;
    b.add(1, shards.replicas[1], shards.bases[1]);
    ShardMergeSet c;
    c.add(2, shards.replicas[2], shards.bases[2]);

    const std::string left = fingerprint(apply_set(cfg, task.train, a.combine(b).combine(c)));
    const std::string right = fingerprint(apply_set(cfg, task.train, a.combine(b.combine(c))));
    const std::string swapped = fingerprint(apply_set(cfg, task.train, c.combine(b).combine(a)));
    EXPECT_EQ(left, right) << "(a+b)+c != a+(b+c)";
    EXPECT_EQ(left, swapped) << "(c+b)+a != (a+b)+c";
  }
}

TEST(ShardMergeSetTest, DuplicateShardIdsAreRejected) {
  const EncodedTask task = make_encoded_task(256);
  const RegHDConfig cfg = make_config(Mode::kReal);
  const TrainedShards shards = train_shards(cfg, task.train, task.val, 2);

  ShardMergeSet set;
  set.add(0, shards.replicas[0], shards.bases[0]);
  EXPECT_THROW(set.add(0, shards.replicas[1], shards.bases[1]), std::exception);

  ShardMergeSet other;
  other.add(0, shards.replicas[1], shards.bases[1]);
  EXPECT_THROW((void)set.combine(other), std::exception);

  ShardMergeSet empty;
  MultiModelRegressor merged(cfg);
  EXPECT_THROW(empty.apply_into(merged), std::exception);
}

// --------------------------------------------------------------------------
// degenerate case: one shard IS a plain fit
// --------------------------------------------------------------------------

TEST(ShardedTrainerTest, SingleShardMatchesPlainFitBitIdentically) {
  const EncodedTask task = make_encoded_task(256);
  for (const Mode mode : {Mode::kReal, Mode::kQuantizedBinary, Mode::kTernaryBank}) {
    SCOPED_TRACE(mode_name(mode));
    const RegHDConfig cfg = make_config(mode);

    MultiModelRegressor plain(cfg);
    const TrainingReport plain_report = plain.fit(task.train, task.val);

    ShardedTrainer trainer(cfg);
    ShardedTrainConfig scfg;
    scfg.shards = 1;
    const ShardedTrainReport report = trainer.fit(task.train, task.val, scfg);

    ASSERT_EQ(report.shards, 1u);
    ASSERT_EQ(report.shard_reports.size(), 1u);
    EXPECT_EQ(report.shard_reports[0].report.epochs_run, plain_report.epochs_run);
    EXPECT_EQ(fingerprint(trainer.regressor()), fingerprint(plain));
  }
}

TEST(ShardedTrainerTest, ShardCountIsClampedToRows) {
  const EncodedTask task = make_encoded_task(256);
  const RegHDConfig cfg = make_config(Mode::kReal);
  ShardedTrainer trainer(cfg);
  ShardedTrainConfig scfg;
  scfg.shards = 1000;  // far more shards than the 120 training rows
  const ShardedTrainReport report = trainer.fit(task.train, task.val, scfg);
  EXPECT_EQ(report.shards, task.train.size());
}

// --------------------------------------------------------------------------
// thread-count invariance of the full shard-train → merge → refine path
// --------------------------------------------------------------------------

TEST(ShardedTrainerTest, ResultsAreIndependentOfThreadCount) {
  const EncodedTask task = make_encoded_task(256);
  for (const Mode mode : {Mode::kReal, Mode::kTernaryBank}) {
    SCOPED_TRACE(mode_name(mode));
    const RegHDConfig cfg = make_config(mode);
    std::string reference;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      ShardedTrainer trainer(cfg);
      ShardedTrainConfig scfg;
      scfg.shards = 4;
      scfg.refine_epochs = 2;
      scfg.threads = threads;
      trainer.fit(task.train, task.val, scfg);
      const std::string fp = fingerprint(trainer.regressor());
      if (reference.empty()) {
        reference = fp;
      } else {
        EXPECT_EQ(fp, reference) << "threads=" << threads << " changed the bits";
      }
    }
  }
}

// --------------------------------------------------------------------------
// refine: keep-best never ships worse than the merge; history is recorded
// --------------------------------------------------------------------------

TEST(ShardedTrainerTest, RefineKeepsBestAndNeverShipsWorseThanMerge) {
  const EncodedTask task = make_encoded_task(256);
  const RegHDConfig cfg = make_config(Mode::kReal);
  ShardedTrainer trainer(cfg);
  ShardedTrainConfig scfg;
  scfg.shards = 4;
  scfg.refine_epochs = 3;
  const ShardedTrainReport report = trainer.fit(task.train, task.val, scfg);

  EXPECT_EQ(report.refine_history.size(), 3u);
  EXPECT_LE(report.final_val_mse, report.merged_val_mse);
  EXPECT_DOUBLE_EQ(trainer.regressor().evaluate_mse(task.val), report.final_val_mse);
}

TEST(ShardedTrainerTest, MergedModelBeatsMeanPredictor) {
  const EncodedTask task = make_encoded_task(256);
  const RegHDConfig cfg = make_config(Mode::kReal);
  ShardedTrainer trainer(cfg);
  ShardedTrainConfig scfg;
  scfg.shards = 4;
  scfg.refine_epochs = 2;
  const ShardedTrainReport report = trainer.fit(task.train, task.val, scfg);

  double mean = 0.0;
  for (std::size_t i = 0; i < task.val.size(); ++i) {
    mean += task.val.target(i);
  }
  mean /= static_cast<double>(task.val.size());
  double mean_mse = 0.0;
  for (std::size_t i = 0; i < task.val.size(); ++i) {
    const double e = task.val.target(i) - mean;
    mean_mse += e * e;
  }
  mean_mse /= static_cast<double>(task.val.size());
  EXPECT_LT(report.final_val_mse, mean_mse)
      << "merged+refined model no better than predicting the mean";
}

// --------------------------------------------------------------------------
// online stream sharding
// --------------------------------------------------------------------------

OnlineConfig online_config() {
  OnlineConfig cfg;
  cfg.reghd.dim = 128;
  cfg.reghd.models = 2;
  cfg.reghd.cluster_mode = ClusterMode::kQuantized;
  cfg.reghd.query_precision = QueryPrecision::kBinary;
  cfg.reghd.model_precision = ModelPrecision::kTernary;
  cfg.requantize_every = 48;
  return cfg;
}

std::string serialize(const OnlineRegHD& learner) {
  std::ostringstream out(std::ios::binary);
  save_online_checkpoint(out, learner);
  return out.str();
}

TEST(OnlineShardMergeTest, SingleReplicaIsAdoptedVerbatim) {
  // 173 updates is NOT a requantize boundary (173 % 48 != 0): snapshots are
  // stale relative to the accumulators, exactly the state a re-derivation
  // would corrupt. Verbatim adoption must preserve it bit for bit.
  const data::Dataset d = data::make_friedman1(256, 9);
  OnlineRegHD learner(online_config(), d.num_features());
  for (std::size_t i = 0; i < 173; ++i) {
    learner.update(d.row(i), d.target(i));
  }
  const OnlineShardReplica replica{0, &learner};
  const OnlineRegHD merged =
      OnlineRegHD::merge_replicas(std::span<const OnlineShardReplica>(&replica, 1));
  EXPECT_EQ(serialize(merged), serialize(learner));
}

TEST(OnlineShardMergeTest, MergeIsOrderInvariant) {
  const data::Dataset d = data::make_friedman1(240, 9);
  const auto parts = ShardedTrainer::partition(d.size(), 3);
  std::vector<OnlineRegHD> replicas;
  for (std::size_t s = 0; s < 3; ++s) {
    OnlineRegHD learner(online_config(), d.num_features());
    for (const std::size_t r : parts[s]) {
      learner.update(d.row(r), d.target(r));
    }
    replicas.push_back(std::move(learner));
  }

  std::vector<std::size_t> perm = {0, 1, 2};
  std::string reference;
  do {
    std::vector<OnlineShardReplica> span_order;
    for (const std::size_t s : perm) {
      span_order.push_back(OnlineShardReplica{s, &replicas[s]});
    }
    const OnlineRegHD merged = OnlineRegHD::merge_replicas(span_order);
    const std::string bytes = serialize(merged);
    if (reference.empty()) {
      reference = bytes;
    } else {
      EXPECT_EQ(bytes, reference) << "span order " << perm[0] << perm[1] << perm[2]
                                  << " changed the merged stream";
    }
  } while (std::next_permutation(perm.begin(), perm.end()));

  // Accounting: the merge saw every reading and requantized.
  std::vector<OnlineShardReplica> refs;
  for (std::size_t s = 0; s < 3; ++s) {
    refs.push_back(OnlineShardReplica{s, &replicas[s]});
  }
  const OnlineRegHD merged = OnlineRegHD::merge_replicas(refs);
  EXPECT_EQ(merged.samples_seen(), d.size());
  std::size_t since_sum = 0;
  for (const OnlineRegHD& r : replicas) {
    since_sum += r.since_requantize();
  }
  EXPECT_EQ(merged.since_requantize(), since_sum % online_config().requantize_every);
}

TEST(OnlineShardMergeTest, DuplicateShardIdsAreRejected) {
  const data::Dataset d = data::make_friedman1(64, 9);
  OnlineRegHD learner(online_config(), d.num_features());
  for (std::size_t i = 0; i < d.size(); ++i) {
    learner.update(d.row(i), d.target(i));
  }
  const std::vector<OnlineShardReplica> dup = {{0, &learner}, {0, &learner}};
  EXPECT_THROW((void)OnlineRegHD::merge_replicas(dup), std::exception);
  EXPECT_THROW((void)OnlineRegHD::merge_replicas(std::span<const OnlineShardReplica>{}),
               std::exception);
}

TEST(OnlineShardMergeTest, TrainOnlineShardedSingleShardMatchesSequentialStream) {
  const data::Dataset d = data::make_friedman1(200, 9);
  OnlineRegHD sequential(online_config(), d.num_features());
  for (std::size_t i = 0; i < d.size(); ++i) {
    sequential.update(d.row(i), d.target(i));
  }

  ShardedTrainConfig scfg;
  scfg.shards = 1;
  const OnlineRegHD merged = train_online_sharded(
      online_config(), d.features_flat(), d.targets(), d.num_features(), scfg);
  EXPECT_EQ(serialize(merged), serialize(sequential));
}

TEST(OnlineShardMergeTest, TrainOnlineShardedIsThreadCountInvariant) {
  const data::Dataset d = data::make_friedman1(200, 9);
  std::string reference;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ShardedTrainConfig scfg;
    scfg.shards = 4;
    scfg.threads = threads;
    const OnlineRegHD merged = train_online_sharded(
        online_config(), d.features_flat(), d.targets(), d.num_features(), scfg);
    const std::string bytes = serialize(merged);
    if (reference.empty()) {
      reference = bytes;
    } else {
      EXPECT_EQ(bytes, reference) << "threads=" << threads << " changed the stream";
    }
  }
}

// --------------------------------------------------------------------------
// pipeline front end
// --------------------------------------------------------------------------

TEST(PipelineShardedFitTest, SingleShardMatchesPlainFit) {
  PipelineConfig pcfg;
  pcfg.reghd.dim = 128;
  pcfg.reghd.models = 2;
  pcfg.reghd.max_epochs = 4;
  const data::Dataset train = data::make_friedman1(150, 5);
  const data::Dataset queries = data::make_friedman1(20, 77);

  RegHDPipeline plain(pcfg);
  plain.fit(train);

  RegHDPipeline sharded(pcfg);
  ShardedTrainConfig scfg;
  scfg.shards = 1;
  sharded.fit_sharded(train, scfg);

  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(sharded.predict(queries.row(i)), plain.predict(queries.row(i)));
  }
  EXPECT_EQ(sharded.report().epochs_run, plain.report().epochs_run);
  EXPECT_EQ(sharded.sharded_report().shards, 1u);
  EXPECT_THROW((void)plain.sharded_report(), std::exception);
}

TEST(PipelineShardedFitTest, ShardedFitProducesUsableModel) {
  PipelineConfig pcfg;
  pcfg.reghd.dim = 256;
  pcfg.reghd.models = 3;
  pcfg.reghd.max_epochs = 6;
  const data::Dataset train = data::make_friedman1(200, 5);

  RegHDPipeline pipeline(pcfg);
  ShardedTrainConfig scfg;
  scfg.shards = 4;
  scfg.refine_epochs = 2;
  const ShardedTrainReport report = pipeline.fit_sharded(train, scfg);

  ASSERT_EQ(report.shards, 4u);
  ASSERT_EQ(report.shard_reports.size(), 4u);
  std::size_t total_rows = 0;
  for (const ShardReport& sr : report.shard_reports) {
    total_rows += sr.rows;
  }
  // The internal validation split holds out 15%; every remaining row landed
  // in exactly one shard.
  EXPECT_EQ(total_rows, static_cast<std::size_t>(200 - 200 * 0.15));
  EXPECT_TRUE(pipeline.fitted());
  EXPECT_EQ(pipeline.report().stop_reason, "sharded merge");
}

}  // namespace
}  // namespace reghd::core
